"""E8 — Observation 6.8: the Multi_Wave primitive runs in O(n) against
the naive Theta(n log n) of ell+1 consecutive whole-tree waves."""

from conftest import report

from repro.analysis import fit_power_law, format_table
from repro.graphs.generators import random_connected_graph
from repro.mst import run_sync_mst
from repro.partition import run_multi_wave

SIZES = (64, 128, 256, 512, 1024)


def measure():
    rows, pts = [], []
    for n in SIZES:
        g = random_connected_graph(n, 2 * n, seed=14)
        hierarchy = run_sync_mst(g).hierarchy
        res = run_multi_wave(hierarchy)
        rows.append([n, res.levels, res.pipelined_time, res.naive_time,
                     res.naive_time / res.pipelined_time])
        pts.append((n, res.pipelined_time))
    return rows, pts


def test_multiwave(once):
    rows, pts = once(measure)
    fit = fit_power_law([p[0] for p in pts], [p[1] for p in pts])
    table = format_table(
        ["n", "levels", "pipelined time", "naive time", "speedup"], rows)
    body = (table +
            f"\n\npipelined growth exponent: {fit.b:.2f} (paper: 1.0); "
            "the speedup column tracks ell = O(log n)")
    assert 0.8 <= fit.b <= 1.2
    assert rows[-1][4] > rows[0][4]  # speedup grows with log n
    report("E8", "Multi_Wave primitive (Observation 6.8)", body)
