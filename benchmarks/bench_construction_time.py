"""E4 — Theorem 4.4: SYNC_MST constructs the MST in O(n) rounds with
O(log n) bits, against the GHS baseline's O(n log n) time.

Regenerates the construction-time scaling series: rounds vs n for
SYNC_MST (linear shape) and GHS (superlinear by a log factor), plus the
register-level Boruvka protocol for substrate validation.
"""

from conftest import report

from repro.analysis import fit_power_law, format_table
from repro.graphs import kruskal_mst
from repro.graphs.generators import random_connected_graph
from repro.mst import run_boruvka_protocol, run_ghs, run_sync_mst

SIZES = (64, 128, 256, 512, 1024)


def measure():
    rows = []
    sync_pts, ghs_pts = [], []
    for n in SIZES:
        g = random_connected_graph(n, 2 * n, seed=4)
        sync = run_sync_mst(g)
        assert sync.tree.edge_set() == kruskal_mst(g)
        ghs = run_ghs(g)
        rows.append([n, g.m, sync.rounds, sync.phases, ghs.time])
        sync_pts.append((n, sync.rounds))
        ghs_pts.append((n, ghs.time))
    return rows, sync_pts, ghs_pts


def test_construction_time(once):
    rows, sync_pts, ghs_pts = once(measure)
    sync_fit = fit_power_law([p[0] for p in sync_pts],
                             [p[1] for p in sync_pts])
    ghs_fit = fit_power_law([p[0] for p in ghs_pts],
                            [p[1] for p in ghs_pts])
    table = format_table(
        ["n", "|E|", "SYNC_MST rounds", "phases", "GHS time"], rows)
    body = (table +
            f"\n\nSYNC_MST growth exponent: {sync_fit.b:.2f} "
            f"(paper: 1.0, O(n))"
            f"\nGHS growth exponent:      {ghs_fit.b:.2f} "
            f"(paper: n log n, > SYNC_MST)")
    # shape assertions: SYNC_MST within [0.8, 1.3]; GHS grows faster
    assert 0.8 <= sync_fit.b <= 1.3, sync_fit
    assert ghs_fit.b >= sync_fit.b - 0.05
    report("E4", "construction time scaling (Theorem 4.4)", body)


def test_boruvka_protocol_substrate(once):
    g = random_connected_graph(48, 80, seed=6)
    edges, rounds = once(run_boruvka_protocol, g)
    assert edges == kruskal_mst(g)
    report("E4b", "register-level Boruvka protocol (substrate check)",
           f"n = {g.n}: correct MST after {rounds} synchronous rounds "
           f"(O(n log n) protocol; validates the simulator substrate)")
