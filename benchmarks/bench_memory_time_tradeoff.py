"""E6 — the memory/time trade-off (Sections 1.3 and 9).

Three verification schemes on identical workloads:

* the paper's train scheme — O(log n) bits, O(log^2 n) detection;
* the 1-round PLS [54/55]   — O(log^2 n) bits, detection time 1;
* verification by recomputation [15] — O(log n) bits, Theta(n) detection.

Measured memory is the full per-node register footprint; measured
detection time uses the same minimality-lie fault for the train scheme,
one round for the (local) 1-PLS, and the construction time for
recomputation.
"""

from conftest import report

from repro.analysis import format_table
from repro.baselines import recompute_checker_metrics, sqlog_labels
from repro.graphs.generators import random_connected_graph
from repro.labels import registers as R
from repro.sim import Network
from repro.verification import make_network, run_detection, run_marker

SIZES = (32, 64, 128, 256)


from conftest import lie_about_used_piece as lie_about_piece


def measure():
    rows = []
    for n in SIZES:
        g = random_connected_graph(n, 2 * n, seed=12)
        # train scheme: measured detection + measured memory
        res = run_detection(g, lie_about_piece, synchronous=True,
                            max_rounds=60_000, static_every=4, seed=1)
        assert res.detected
        # 1-round PLS: memory measured, detection is 1 by construction
        sq = Network(g)
        sq.install(sqlog_labels(g))
        sq_bits = sq.max_memory_bits()
        # recomputation: detection = construction rounds
        rec = recompute_checker_metrics(g)
        rows.append([n,
                     res.max_memory_bits, res.rounds_to_detection,
                     sq_bits, 1,
                     rec["memory_bits"], rec["detection_rounds"]])
    return rows


def test_memory_time_tradeoff(once):
    rows = once(measure)
    table = format_table(
        ["n", "KKM bits", "KKM rounds", "1-PLS bits", "1-PLS rounds",
         "recompute bits", "recompute rounds"], rows)
    body = (table +
            "\n\npaper shape: the KKM scheme sits between the baselines — "
            "near-1-PLS memory at near-constant (polylog) detection time; "
            "Section 9 shows the polylog penalty is unavoidable at "
            "O(log n) bits")
    first, last = rows[0], rows[-1]
    # memory: KKM grows slower than the 1-PLS piece table
    assert last[1] / first[1] < last[3] / first[3]
    # time: KKM detection grows much slower than recomputation
    assert last[2] / max(1, first[2]) < last[6] / first[6]
    report("E6", "memory x detection-time trade-off", body)
