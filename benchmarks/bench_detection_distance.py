"""E3 — Theorem 8.5: detection distance O(f log n).

With f faulty nodes, every fault must have an alarming node within its
O(f log n) locality.  We corrupt f random nodes (full register scramble)
and measure the worst fault-to-alarm distance.
"""

import math

from conftest import report

from repro.analysis import format_table
from repro.graphs.generators import random_connected_graph
from repro.verification import run_detection

N = 192
FAULTS = (1, 2, 4, 8)


def measure():
    rows = []
    g = random_connected_graph(N, int(1.6 * N), seed=10)
    bound_unit = math.ceil(math.log2(N))
    for f in FAULTS:
        worst = 0
        detected = 0
        for trial in range(3):
            def inject(net, inj, f=f):
                inj.corrupt_random_nodes(f, fraction=0.6)

            res = run_detection(g, inject, synchronous=True,
                                max_rounds=40_000, static_every=2,
                                seed=100 * f + trial)
            if res.detected and res.detection_distance is not None:
                worst = max(worst, res.detection_distance)
                detected += 1
        rows.append([f, detected, worst, f * bound_unit])
    return rows


def test_detection_distance(once):
    rows = once(measure)
    table = format_table(
        ["f (faults)", "detected runs", "worst distance",
         "f * ceil(log2 n) bound"], rows)
    body = (f"n = {N}; 3 trials per f\n" + table +
            "\n\npaper shape: detection within the O(f log n) locality "
            "of each fault")
    for f, detected, worst, bound in rows:
        assert detected >= 1
        assert worst <= 2 * bound + 4, (f, worst, bound)
    report("E3", "detection distance (Theorem 8.5)", body)
