"""E3 — Theorem 8.5: detection distance O(f log n).

With f faulty nodes, every fault must have an alarming node within its
O(f log n) locality.  We corrupt f random nodes and measure the worst
fault-to-alarm distance, as a ``detection_distance_campaign`` (f x
trials scenarios from one seed).
"""

import math

from conftest import report

from repro.analysis import format_table
from repro.engine import CampaignRunner, detection_distance_campaign

N = 192
FAULTS = (1, 2, 4, 8)
TRIALS = 3


def measure():
    specs = detection_distance_campaign(N, FAULTS, trials=TRIALS, seed=10,
                                        static_every=2, max_rounds=40_000)
    campaign = CampaignRunner().run(specs)
    bound_unit = math.ceil(math.log2(N))
    rows = []
    for f in FAULTS:
        group = [r for r in campaign
                 if r.spec.fault.get("count") == f]
        assert len(group) == TRIALS
        # ok implies detected for injection faults (a miss would be a
        # soundness violation), so every trial contributes a distance
        assert all(r.ok for r in group), [r.violation for r in group]
        worst = max((r.detection_distance for r in group
                     if r.detection_distance is not None), default=0)
        rows.append([f, worst, f * bound_unit])
    return rows


def test_detection_distance(once):
    rows = once(measure)
    table = format_table(
        ["f (faults)", "worst distance over trials",
         "f * ceil(log2 n) bound"], rows)
    body = (f"n = {N}; {TRIALS} trials per f, all detected\n" + table +
            "\n\npaper shape: detection within the O(f log n) locality "
            "of each fault")
    for f, worst, bound in rows:
        assert worst <= 2 * bound + 4, (f, worst, bound)
    report("E3", "detection distance (Theorem 8.5)", body)
