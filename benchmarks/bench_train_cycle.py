"""E7 — Theorem 7.1: a train rotation takes O(log n) synchronous rounds
(O(log^2 n) asynchronous).

We run the verifier on correct instances and measure the observed gap
between rotation boundaries at every node, taking the worst node.
"""

from conftest import report

from repro.analysis import format_table, is_sublinear
from repro.graphs.generators import random_connected_graph
from repro.sim import Network, PermutationDaemon, SynchronousScheduler
from repro.sim.schedulers import AsynchronousScheduler
from repro.trains.train import piece_key, valid_piece
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol

SIZES = (32, 64, 128, 256)


def worst_rotation_gap(g, synchronous, rounds):
    network = make_network(g)
    protocol = MstVerifierProtocol(synchronous=synchronous, static_every=8)
    if synchronous:
        sched = SynchronousScheduler(network, protocol)
    else:
        sched = AsynchronousScheduler(network, protocol,
                                      PermutationDaemon(seed=4))
    boundaries = {v: [] for v in g.nodes()}
    last_key = {v: None for v in g.nodes()}
    sched.initialize()
    for r in range(rounds):
        sched.run(1)
        for v in g.nodes():
            buf = network.registers[v].get("tt_bbuf")
            if isinstance(buf, tuple) and len(buf) == 2 and \
                    valid_piece(buf[0]):
                key = piece_key(buf[0])
                if last_key[v] is not None and key <= last_key[v] and \
                        key != last_key[v]:
                    boundaries[v].append(r)
                if key != last_key[v]:
                    last_key[v] = key
    assert not network.alarms()
    worst = 0
    for v, marks in boundaries.items():
        gaps = [b - a for a, b in zip(marks, marks[1:])]
        if gaps:
            worst = max(worst, max(gaps))
    return worst


def measure():
    rows, sync_pts = [], []
    for n in SIZES:
        g = random_connected_graph(n, 2 * n, seed=13)
        sync_gap = worst_rotation_gap(g, True, rounds=420)
        rows.append([n, sync_gap])
        sync_pts.append((n, max(1, sync_gap)))
    g_async = random_connected_graph(48, 96, seed=13)
    async_gap = worst_rotation_gap(g_async, False, rounds=1400)
    return rows, sync_pts, async_gap


def test_train_cycle_time(once):
    rows, pts, async_gap = once(measure)
    table = format_table(["n", "worst sync rotation gap (rounds)"], rows)
    body = (table +
            f"\n\nasync rotation gap at n=48: {async_gap} rounds "
            "(Theorem 7.1: O(log n) sync / O(log^2 n) async)")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    assert is_sublinear(xs, ys, tolerance=0.8), (xs, ys)
    report("E7", "train rotation time (Theorem 7.1)", body)
