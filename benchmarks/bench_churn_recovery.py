"""E15 — re-stabilization under sustained churn (ROADMAP 4(b)).

Every other experiment freezes the topology after construction; this
one makes the topology itself the fault axis.  Per cell of
:func:`repro.engine.churn_recovery_campaign` the engine settles an
honest instance, then drives the deterministic seed-derived churn
script — ``crash`` (never a cut vertex, at most one node down at a
time), ``rejoin`` (exact original ports back, working registers
wiped), ``reweight`` (a non-MST edge bumped to a fresh larger weight,
so the unique MST is preserved) — giving every event a fixed
re-stabilization window.  Sweeping the event count at a fixed window
sweeps the *event rate*, on all three label formats (train verifier /
hybrid / sqlog baseline).

What the records measure, per event:

* ``rounds_to_redetect`` — rounds until the verifier re-raises an
  alarm after the event.  Crash events must re-detect (a survivor's
  port went dark mid-proof); reweight events must **not** — the MST
  did not change, so an alarm there would be a false positive, and the
  benchmark asserts none happens;
* ``rounds_to_quiesce`` — rounds until the settle predicate holds
  alarm-free again (the verifier family must re-quiesce inside the
  window; sqlog has no settle predicate, so its column is empty);
* ``alarms_per_event`` and the run's ``availability`` (alarm-free
  fraction of churned rounds).

The differ-facing scalars (``worst_redetect`` / ``worst_quiesce`` /
``unavailability``) ride on every record, so
``python -m repro.engine diff`` gates re-stabilization regressions
across commits exactly like detection-time regressions —
``benchmarks/baselines/e15_churn_quick.jsonl`` is the committed CI
baseline for the ``--quick`` cells.

``--quick`` shrinks the cells for CI smoke; ``--out`` dumps JSONL.
"""

from conftest import report

from repro.analysis import format_table
from repro.engine import CampaignRunner, churn_recovery_campaign

#: CI smoke cells ``(n, events)``: same shape, toy sizes.  The window
#: must cover a full re-rotation — a rejoined node restarts its
#: rotation counter from zero, so re-quiescing after a crash takes the
#: same order of rounds as the initial settle.
QUICK_CELLS = ((24, 3), (24, 6))
QUICK_WINDOW = 600


def run_churn_recovery(quick=False, seed=0, workers=1, out=None):
    if quick:
        specs = churn_recovery_campaign(cells=QUICK_CELLS,
                                        window=QUICK_WINDOW, seed=seed)
    else:
        specs = churn_recovery_campaign(seed=seed)
    result = CampaignRunner(workers=workers).run(specs)
    rows = []
    for spec, res in zip(specs, result):
        redetect = [r for r in res.rounds_to_redetect if r is not None]
        quiesce = [q for q in res.rounds_to_quiesce if q is not None]
        rows.append([
            spec.topology.get("n"), spec.fault.get("events"),
            spec.protocol.kind, res.churn_events,
            "-" if not redetect else max(redetect),
            "-" if not quiesce else max(quiesce),
            "-" if res.availability is None
            else f"{res.availability:.3f}",
            "ok" if res.ok else str(res.violation),
        ])
    table = format_table(
        ["n", "events", "protocol", "ran", "worst redetect",
         "worst quiesce", "availability", "verdict"], rows)
    if out:
        written = result.dump_jsonl(out)
        table += f"\nwrote {written} scenario record(s) to {out}"
    return result, rows, table


def _check(result, specs_table):
    """The experiment's invariants (shared by the pytest entry and the
    CLI): no violations, no false alarms on reweight events, and the
    verifier family re-quiesces after every crash."""
    problems = []
    if result.violations():
        problems.append(result.summary())
    for res in result:
        spec = res.spec
        kinds = [k for _, k, *_ in _event_kinds(res)]
        for (kind, redet) in zip(kinds, res.rounds_to_redetect):
            if kind == "reweight" and redet is not None:
                problems.append(
                    f"{spec.key}: false alarm on a benign reweight")
        if spec.protocol.kind != "sqlog" and res.rounds_to_quiesce and \
                res.rounds_to_quiesce[-1] is None:
            problems.append(f"{spec.key}: never re-quiesced after the "
                            f"final event")
        if res.availability is not None and \
                not 0.0 <= res.availability <= 1.0:
            problems.append(f"{spec.key}: availability out of range")
    return problems


def _event_kinds(res):
    """Reconstruct the executed script's event kinds from the spec (the
    script derives deterministically from the instance + fault seed)."""
    from repro.engine.scenarios import graph_for
    from repro.sim import ChurnScript
    spec = res.spec
    fp = dict(spec.fault.param_dict())
    script = ChurnScript.generate(
        graph_for(spec), spec.derived_seed("fault"),
        events=int(fp.get("events", 6)),
        crash=bool(fp.get("crash", True)),
        reweight=bool(fp.get("reweight", True)))
    return [e.key() for e in script]


def test_churn_recovery(once):
    result, rows, table = once(run_churn_recovery)
    problems = _check(result, rows)
    assert not problems, problems
    body = (table + "\n\ncrash events re-detect and re-quiesce inside "
            "the window on both verifier formats; reweight events stay "
            "silent (the unique MST is preserved, so alarming would be "
            "unsound); availability degrades smoothly with the event "
            "rate instead of collapsing — the sustained-churn half of "
            "ROADMAP item 4(b).")
    report("E15", "re-stabilization under sustained churn "
           "(crash/rejoin/reweight, all label formats)", body)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="toy cells (CI smoke, gated against "
                             "benchmarks/baselines/e15_churn_quick"
                             ".jsonl)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="dump the sweep as JSONL (joinable by "
                             "`python -m repro.engine diff`)")
    args = parser.parse_args(argv)
    result, rows, table = run_churn_recovery(quick=args.quick,
                                             seed=args.seed,
                                             workers=args.workers,
                                             out=args.out)
    print(table)
    problems = _check(result, rows)
    if problems:
        print("\n".join(str(p) for p in problems))
        return 1
    print("\nno false alarms on reweights; verifier formats "
          "re-quiesced after every event window")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
