"""E6b — Theorem 8.5 memory: O(log n) bits per node, end to end.

Measures the maximum per-node register footprint (labels + verifier
working state) across n, against the O(log^2 n) growth of the 1-PLS
baseline's piece tables.
"""

import math

from conftest import report

from repro.analysis import format_table
from repro.baselines import sqlog_labels
from repro.graphs.generators import random_connected_graph
from repro.sim import Network
from repro.verification import run_completeness

SIZES = (16, 64, 256, 1024)


def measure():
    rows = []
    for n in SIZES:
        g = random_connected_graph(n, 2 * n, seed=18)
        res = run_completeness(g, rounds=4, synchronous=True,
                               static_every=4)
        sq = Network(g)
        sq.install(sqlog_labels(g))
        lg = math.ceil(math.log2(n))
        rows.append([n, lg, res.max_memory_bits,
                     round(res.max_memory_bits / lg, 1),
                     sq.max_memory_bits(),
                     round(sq.max_memory_bits() / (lg * lg), 1)])
    return rows


def test_memory_scaling(once):
    rows = once(measure)
    table = format_table(
        ["n", "log2 n", "KKM bits", "KKM bits/log n",
         "1-PLS bits", "1-PLS bits/log^2 n"], rows)
    body = (table +
            "\n\npaper shape: KKM bits/log n stays bounded (O(log n) "
            "memory) while the 1-PLS needs Theta(log^2 n)")
    ratios = [r[3] for r in rows]
    assert max(ratios) / min(ratios) < 3.0, ratios
    report("E6b", "memory per node (Theorem 8.5)", body)
