"""E6b — Theorem 8.5 memory: O(log n) bits per node, end to end.

Measures the maximum per-node register footprint (labels + verifier
working state) across n, against the O(log^2 n) growth of the 1-PLS
baseline's piece tables — one ``memory_campaign`` spec per (n,
protocol) cell.
"""

import math

from conftest import report

from repro.analysis import format_table
from repro.engine import CampaignRunner, axis, memory_campaign

SIZES = (16, 64, 256, 1024)


def measure():
    specs = memory_campaign(
        SIZES,
        protocols=(axis("verifier", static_every=4), axis("sqlog")),
        seed=18, rounds=4)
    campaign = CampaignRunner().run(specs)
    bits = {}
    for r in campaign:
        assert r.ok, (r.spec.key, r.violation)
        bits[(r.n, r.spec.protocol.kind)] = r.max_memory_bits
    rows = []
    for n in SIZES:
        lg = math.ceil(math.log2(n))
        kkm = bits[(n, "verifier")]
        sq = bits[(n, "sqlog")]
        rows.append([n, lg, kkm, round(kkm / lg, 1),
                     sq, round(sq / (lg * lg), 1)])
    return rows


def test_memory_scaling(once):
    rows = once(measure)
    table = format_table(
        ["n", "log2 n", "KKM bits", "KKM bits/log n",
         "1-PLS bits", "1-PLS bits/log^2 n"], rows)
    body = (table +
            "\n\npaper shape: KKM bits/log n stays bounded (O(log n) "
            "memory) while the 1-PLS needs Theta(log^2 n)")
    ratios = [r[3] for r in rows]
    assert max(ratios) / min(ratios) < 3.0, ratios
    report("E6b", "memory per node (Theorem 8.5)", body)
