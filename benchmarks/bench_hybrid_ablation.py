"""E11 — ablation: the hybrid scheme (memory for detection locality).

The paper's Section-1.3 remark — detection time/distance improve "at the
expense of some increase in the memory" — quantified: replicating each
node's bottom-fragment pieces locally buys 1-round detection for bottom
faults and a shorter Ask rotation for top levels, at a measured memory
premium.
"""

from conftest import lie_about_used_piece, report

from repro.analysis import format_table
from repro.graphs.generators import random_connected_graph
from repro.sim import (FaultInjector, Network, SynchronousScheduler,
                       first_alarm)
from repro.verification import make_network, run_detection
from repro.verification.hybrid import (REG_OWN_BOT, HybridVerifierProtocol,
                                       run_hybrid_marker)

SIZES = (32, 64, 128)


def hybrid_bottom_detection(g):
    """Memory and 1-round bottom detection of the hybrid scheme."""
    marker = run_hybrid_marker(g)
    net = Network(g)
    net.install(marker.labels)
    sched = SynchronousScheduler(net, HybridVerifierProtocol(static_every=2))
    sched.run(600, stop_when=first_alarm)
    assert not net.alarms(), net.alarms()
    memory = net.max_memory_bits()
    inj = FaultInjector(net, seed=1)
    victim = next(v for v in g.nodes() if net.registers[v][REG_OWN_BOT])
    pieces = net.registers[victim][REG_OWN_BOT]
    z, lvl, w = pieces[0]
    inj.corrupt_register(victim, REG_OWN_BOT,
                         ((z, lvl, (w or 0) + 1),) + tuple(pieces[1:]))
    rounds = sched.run(100, stop_when=first_alarm)
    assert net.alarms()
    return memory, rounds


def measure():
    rows = []
    for n in SIZES:
        g = random_connected_graph(n, 2 * n, seed=20)
        pure = run_detection(g, lie_about_used_piece, synchronous=True,
                             max_rounds=60_000, static_every=2, seed=1)
        assert pure.detected
        hy_mem, hy_rounds = hybrid_bottom_detection(g)
        rows.append([n, pure.max_memory_bits, pure.rounds_to_detection,
                     hy_mem, hy_rounds])
    return rows


def test_hybrid_ablation(once):
    rows = once(measure)
    table = format_table(
        ["n", "pure bits", "pure detection", "hybrid bits",
         "hybrid bottom detection"], rows)
    body = (table +
            "\n\nshape: bottom-fragment faults drop to 1-round detection "
            "(the paper's memory-for-locality trade, Section 1.3).  The "
            "replicated pieces cost O(log n loglog n) bits asymptotically; "
            "at these sizes the hybrid even measures *smaller* because "
            "dropping the Bottom train's working registers outweighs the "
            "replication — the asymmetry reverses as log log n grows.")
    for _n, _pb, _pd, _hm, hd in rows:
        assert hd <= 4
    report("E11", "hybrid scheme ablation (memory for locality)", body)
