"""T1/E9 — Table 1: self-stabilizing MST construction algorithms.

Measured rows (this repository):

* **Current paper (KKM)** — the transformer with SYNC_MST + the train
  verifier: measured stabilization rounds and measured memory;
* **[48]/[18]-style cycle rule** — the low-memory baseline engine:
  measured repair rounds (Theta(n |E|) shape);
* **1-PLS + transformer** — O(log^2 n) bits, detection 1.

Historical rows ([52]+[3]+[9], [47], [17], ...) are evaluated from their
asymptotic space/time models at the same (n, |E|), as reported in the
paper's Table 1.
"""

from conftest import report

from repro.analysis import format_table
from repro.baselines import evaluate_rows, run_low_memory_mst, sqlog_labels
from repro.graphs.generators import random_connected_graph
from repro.selfstab import run_self_stabilizing_mst
from repro.sim import Network

N, EXTRA = 96, 160


def measure():
    g = random_connected_graph(N, EXTRA, seed=15)
    m = g.m

    kkm = run_self_stabilizing_mst(g, synchronous=True, static_every=4)
    assert kkm.correct
    low = run_low_memory_mst(g)
    sq = Network(g)
    sq.install(sqlog_labels(g))

    measured = [
        ["Current paper (KKM) [measured]", kkm.max_memory_bits,
         kkm.trace.total_rounds, "yes", "O(log n) bits, O(n) time"],
        ["[48]/[18]-style cycle rule [measured]", low.memory_bits,
         low.rounds, "yes", f"{low.swaps} swaps, Theta(n|E|) shape"],
        ["1-PLS [54] + transformer [measured]", sq.max_memory_bits(),
         kkm.trace.construction_rounds, "yes",
         "O(log^2 n) bits, detection 1"],
    ]
    model = [
        [r["name"] + " [model]", round(r["space_bits"]),
         round(r["time_rounds"]), "yes" if r["asynchronous"] else "no",
         r["comment"]]
        for r in evaluate_rows(N, m)
        if "Current paper" not in r["name"]
    ]
    return measured, model, m, kkm, low


def test_table1(once):
    measured, model, m, kkm, low = once(measure)
    rows = measured + model
    table = format_table(
        ["algorithm", "space (bits/node)", "time (rounds)", "async",
         "comment"], rows)
    # memory growth check: the KKM footprint grows like log n while the
    # 1-PLS piece table grows like log^2 n (constants favour the 1-PLS
    # at small n; the asymptotic ordering is what Table 1 reports).
    from repro.baselines import sqlog_labels as _sq
    from repro.verification import run_completeness as _rc
    growth = {}
    for nn in (32, 256):
        gg = random_connected_graph(nn, 2 * nn, seed=19)
        kkm_bits = _rc(gg, rounds=4, synchronous=True,
                       static_every=4).max_memory_bits
        sq2 = Network(gg)
        sq2.install(_sq(gg))
        growth[nn] = (kkm_bits, sq2.max_memory_bits())
    kkm_growth = growth[256][0] / growth[32][0]
    sq_growth = growth[256][1] / growth[32][1]

    body = (f"workload: n = {N}, |E| = {m}\n" + table +
            f"\n\nmemory growth n=32 -> n=256: KKM x{kkm_growth:.2f}, "
            f"1-PLS x{sq_growth:.2f} (log vs log^2 shape)"
            "\npaper shape: the current paper is the only row with "
            "both O(log n) space and O(n) time")
    # who-wins assertions: KKM beats the equal-memory cycle rule on time
    assert kkm.trace.total_rounds < low.rounds
    # and its memory grows strictly slower than the 1-PLS piece table
    assert kkm_growth < sq_growth
    report("T1", "Table 1 — self-stabilizing MST algorithms", body)
