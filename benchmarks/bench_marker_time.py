"""E5 — Corollary 6.11: the marker assigns all labels in O(n) time.

The charged construction rounds (SYNC_MST + SP/NumK waves + the
Multi_Wave partition stages + DFS train initialization) must grow
linearly with n.
"""

from conftest import report

from repro.analysis import fit_power_law, format_table
from repro.graphs.generators import random_connected_graph
from repro.verification import run_marker

SIZES = (64, 128, 256, 512)


def measure():
    rows, pts = [], []
    for n in SIZES:
        g = random_connected_graph(n, 2 * n, seed=11)
        marker = run_marker(g)
        bits = max(
            sum_bits(regs) for regs in marker.labels.values())
        rows.append([n, marker.construction_rounds,
                     len(marker.layout.top_parts),
                     len(marker.layout.bottom_parts), bits])
        pts.append((n, marker.construction_rounds))
    return rows, pts


def sum_bits(regs):
    from repro.sim.registers import register_bits
    return register_bits(regs)


def test_marker_time(once):
    rows, pts = once(measure)
    fit = fit_power_law([p[0] for p in pts], [p[1] for p in pts])
    table = format_table(
        ["n", "marker rounds", "Top parts", "Bottom parts",
         "max label bits"], rows)
    body = (table +
            f"\n\nmarker-round growth exponent: {fit.b:.2f} "
            "(paper: 1.0, O(n) — Corollary 6.11)")
    assert 0.8 <= fit.b <= 1.3, fit
    report("E5", "marker construction time (Corollary 6.11)", body)
