"""E1 — Theorem 8.5 (synchronous): detection time O(log^2 n).

After the verifier settles on a correct instance, a stored piece is
corrupted (a minimality lie — only the train comparisons can catch it,
the hardest fault class).  The rounds until the first alarm must grow
polylogarithmically with n, far below the Theta(n) of the
verification-by-recomputation baseline.

Expressed as a campaign: one ``detection_time_campaign`` spec per n,
executed by the engine (in parallel where the hardware allows).
"""

from conftest import report

from repro.analysis import fit_power_law, format_table, is_sublinear
from repro.baselines import recompute_checker_metrics
from repro.engine import CampaignRunner, detection_time_campaign, graph_for

SIZES = (32, 64, 128, 256)


def measure():
    specs = detection_time_campaign(SIZES, synchronous=True, seed=1,
                                    static_every=4, max_rounds=60_000)
    campaign = CampaignRunner().run(specs)
    rows = []
    pts = []
    for spec, res in zip(specs, campaign):
        assert res.ok and res.detected, (spec.key, res.violation)
        recompute = recompute_checker_metrics(
            graph_for(spec))["detection_rounds"]
        rows.append([res.n, res.rounds_to_detection, recompute,
                     res.max_memory_bits])
        pts.append((res.n, res.rounds_to_detection))
    return rows, pts


def test_detection_time_sync(once):
    rows, pts = once(measure)
    xs = [p[0] for p in pts]
    ys = [max(1, p[1]) for p in pts]
    fit = fit_power_law(xs, ys)
    table = format_table(
        ["n", "KKM detection rounds", "recompute rounds (Theta(n))",
         "memory bits/node"], rows)
    body = (table +
            f"\n\nKKM detection growth exponent in n: {fit.b:.2f} "
            "(paper: polylog, i.e. exponent -> 0; recompute: 1.0)")
    assert is_sublinear(xs, ys, tolerance=0.7), (xs, ys)
    report("E1", "synchronous detection time (Theorem 8.5)", body)
