"""E1 — Theorem 8.5 (synchronous): detection time O(log^2 n).

After the verifier settles on a correct instance, a stored piece is
corrupted (a minimality lie — only the train comparisons can catch it,
the hardest fault class).  The rounds until the first alarm must grow
polylogarithmically with n, far below the Theta(n) of the
verification-by-recomputation baseline.
"""

from conftest import report

from repro.analysis import fit_power_law, format_table, is_sublinear
from repro.baselines import recompute_checker_metrics
from repro.graphs.generators import random_connected_graph
from repro.labels import registers as R
from repro.verification import run_detection

SIZES = (32, 64, 128, 256)


from conftest import lie_about_used_piece as lie_about_piece


def measure():
    rows = []
    pts = []
    for n in SIZES:
        g = random_connected_graph(n, 2 * n, seed=7)
        res = run_detection(g, lie_about_piece, synchronous=True,
                            max_rounds=60_000, static_every=4, seed=1)
        assert res.detected
        recompute = recompute_checker_metrics(g)["detection_rounds"]
        rows.append([n, res.rounds_to_detection, recompute,
                     res.max_memory_bits])
        pts.append((n, res.rounds_to_detection))
    return rows, pts


def test_detection_time_sync(once):
    rows, pts = once(measure)
    xs = [p[0] for p in pts]
    ys = [max(1, p[1]) for p in pts]
    fit = fit_power_law(xs, ys)
    table = format_table(
        ["n", "KKM detection rounds", "recompute rounds (Theta(n))",
         "memory bits/node"], rows)
    body = (table +
            f"\n\nKKM detection growth exponent in n: {fit.b:.2f} "
            "(paper: polylog, i.e. exponent -> 0; recompute: 1.0)")
    assert is_sublinear(xs, ys, tolerance=0.7), (xs, ys)
    report("E1", "synchronous detection time (Theorem 8.5)", body)
