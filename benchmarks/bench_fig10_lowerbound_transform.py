"""F10/F11 + Section 9 — the lower-bound transformation and reduction.

Regenerates: (a) the Figure-10/11 subdivision on concrete instances with
the MST-preservation check; (b) the Lemma 9.1 arithmetic — the minimum
verification time tau consistent with the Omega(log^2 n) 1-round label
bound, at O(log n) vs O(log^2 n) memory.
"""

import math

from conftest import report

from repro.analysis import format_table
from repro.graphs import kruskal_mst
from repro.graphs.generators import random_connected_graph
from repro.lowerbound import (minimum_tau_for_memory, subdivide,
                              transformation_preserves_mst)
from repro.verification import swap_one_mst_edge


def measure():
    sub_rows = []
    for n, tau in ((8, 1), (12, 2), (16, 3)):
        g = random_connected_graph(n, n, seed=17)
        mst = kruskal_mst(g)
        wrong = swap_one_mst_edge(g, mst)
        sub = subdivide(g, tau, tree_edges=mst)
        ok_mst = transformation_preserves_mst(g, tau, mst)
        ok_wrong = (wrong is None or
                    transformation_preserves_mst(g, tau, wrong))
        sub_rows.append([n, g.m, tau, sub.graph.n, sub.graph.m,
                         "yes" if ok_mst and ok_wrong else "NO"])

    tau_rows = []
    for k in (8, 12, 16, 20):
        n = 2 ** k
        lg = math.ceil(math.log2(n))
        tau_rows.append([n, lg, minimum_tau_for_memory(n, lg),
                         lg * lg, minimum_tau_for_memory(n, lg * lg)])
    return sub_rows, tau_rows


def test_lowerbound_transform(once):
    sub_rows, tau_rows = once(measure)
    t1 = format_table(
        ["n", "|E|", "tau", "n'", "|E'|", "MST preserved iff"], sub_rows)
    t2 = format_table(
        ["n", "log n bits -> ", "min tau", "log^2 n bits ->", "min tau"],
        tau_rows)
    body = ("Figure 10/11 subdivision (weight on the excluded middle link "
            "for non-tree paths; see EXPERIMENTS.md note):\n" + t1 +
            "\n\nLemma 9.1 packing bound:\n" + t2 +
            "\n\npaper shape: at O(log n) bits tau grows with log n "
            "(the Omega(log n) time bound); at O(log^2 n) bits tau stays "
            "constant (the 1-round scheme exists)")
    assert all(r[5] == "yes" for r in sub_rows)
    taus_logn = [r[2] for r in tau_rows]
    assert taus_logn == sorted(taus_logn) and taus_logn[-1] > taus_logn[0]
    assert all(r[4] <= 2 for r in tau_rows)
    report("F10_F11", "lower-bound transformation and Lemma 9.1", body)
