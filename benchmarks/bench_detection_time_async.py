"""E2 — Theorem 8.5 (asynchronous): detection time O(Delta log^3 n).

Two series: (a) asynchronous detection rounds vs n at bounded degree;
(b) the Delta-scaling at fixed n — the Want mechanism serves neighbours
sequentially, so detection grows with the degree.

Expressed as one campaign over both series: bounded-degree topologies x
the stored-piece minimality lie x the permutation daemon.
"""

from conftest import report

from repro.analysis import format_table, is_sublinear
from repro.engine import CampaignRunner, ScenarioSpec, axis, derive_seed

SIZES = (16, 32, 64)
DEGREES = (3, 6, 12)
FIXED_N = 48
SEED = 2


def _spec(n, degree, max_rounds, salt):
    return ScenarioSpec(
        topology=axis("bounded_degree", n=n, degree=degree),
        fault=axis("piece_lie"),
        schedule=axis("permutation"),
        protocol=axis("verifier", static_every=4),
        seed=derive_seed(SEED, salt, n, degree),
        max_rounds=max_rounds,
    )


def measure():
    n_specs = [_spec(n, 4, 150_000, "n_series") for n in SIZES]
    d_specs = [_spec(FIXED_N, d, 200_000, "degree_series")
               for d in DEGREES]
    campaign = CampaignRunner().run(n_specs + d_specs)
    rows_n, pts, rows_d = [], [], []
    for spec, res in zip(n_specs + d_specs, campaign):
        assert res.ok and res.detected, (spec.key, res.violation)
        degree = spec.topology.get("degree")
        row = [res.n, degree, res.rounds_to_detection]
        if spec in n_specs:
            rows_n.append(row)
            pts.append((res.n, max(1, res.rounds_to_detection)))
        else:
            rows_d.append(row)
    return rows_n, pts, rows_d


def test_detection_time_async(once):
    rows_n, pts, rows_d = once(measure)
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    table_n = format_table(["n", "degree cap", "async detection rounds"],
                           rows_n)
    table_d = format_table(["n", "degree cap", "async detection rounds"],
                           rows_d)
    body = ("scaling with n (bounded degree):\n" + table_n +
            "\n\nscaling with Delta (fixed n = %d):\n" % FIXED_N + table_d +
            "\n\npaper shape: O(Delta log^3 n) — sublinear in n, "
            "increasing with Delta")
    assert is_sublinear(xs, ys, tolerance=0.9), (xs, ys)
    report("E2", "asynchronous detection time (Theorem 8.5)", body)
