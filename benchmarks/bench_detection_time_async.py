"""E2 — Theorem 8.5 (asynchronous): detection time O(Delta log^3 n).

Two series: (a) asynchronous detection rounds vs n at bounded degree;
(b) the Delta-scaling at fixed n — the Want mechanism serves neighbours
sequentially, so detection grows with the degree.
"""

from conftest import report

from repro.analysis import format_table, is_sublinear
from repro.graphs.generators import bounded_degree_graph
from repro.labels import registers as R
from repro.sim import PermutationDaemon
from repro.verification import run_detection

SIZES = (16, 32, 64)
DEGREES = (3, 6, 12)
FIXED_N = 48


from conftest import lie_about_used_piece as lie_about_piece


def measure_n_series():
    rows, pts = [], []
    for n in SIZES:
        g = bounded_degree_graph(n, 4, seed=8)
        res = run_detection(g, lie_about_piece, synchronous=False,
                            daemon=PermutationDaemon(seed=2),
                            max_rounds=150_000, static_every=4, seed=1)
        assert res.detected
        rows.append([n, g.max_degree(), res.rounds_to_detection])
        pts.append((n, max(1, res.rounds_to_detection)))
    return rows, pts


def measure_degree_series():
    rows = []
    for d in DEGREES:
        g = bounded_degree_graph(FIXED_N, d, seed=9)
        res = run_detection(g, lie_about_piece, synchronous=False,
                            daemon=PermutationDaemon(seed=3),
                            max_rounds=200_000, static_every=4, seed=1)
        assert res.detected
        rows.append([FIXED_N, g.max_degree(), res.rounds_to_detection])
    return rows


def test_detection_time_async(once):
    (rows_n, pts), rows_d = once(lambda: (measure_n_series(),
                                          measure_degree_series()))
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    table_n = format_table(["n", "Delta", "async detection rounds"], rows_n)
    table_d = format_table(["n", "Delta", "async detection rounds"], rows_d)
    body = ("scaling with n (bounded degree):\n" + table_n +
            "\n\nscaling with Delta (fixed n = %d):\n" % FIXED_N + table_d +
            "\n\npaper shape: O(Delta log^3 n) — sublinear in n, "
            "increasing with Delta")
    assert is_sublinear(xs, ys, tolerance=0.9), (xs, ys)
    report("E2", "asynchronous detection time (Theorem 8.5)", body)
