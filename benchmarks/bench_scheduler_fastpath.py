"""E13 — scheduler fast paths and the typed register file.

Three dimensions on verifier workloads:

* **quiescent** (fast path) — the 1-round PLS verifier accepts a correct
  instance and stops writing; the naive scheduler still re-checks all
  nodes every round, while the fast path steps each node once, detects
  global quiescence, and fast-forwards.  Must be >= 2x faster (it is
  orders of magnitude); ``tests/test_scheduler_equivalence.py`` proves
  the traces identical.
* **patrolling** (fast path) — the full train verifier's registers churn
  every round *by design* (the trains rotate pieces forever: that is how
  the paper buys O(log n) memory), so the quiescence skip never fires;
  the ratio documents that the fast path's bookkeeping is free.
* **register file** — the same patrolling train-verifier campaign
  workload run with the protocol's declared register schema
  (array-backed slots, write-time nat/decode caches, stable-version
  label caches) versus the legacy dict store.  The trains can never
  quiesce, so this is a pure *per-step* comparison — the acceptance bar
  is >= 2x, proven bit-for-bit equivalent by
  ``tests/test_storage_differential.py``.

Standalone smoke mode for CI (keeps the perf paths executing on every
PR without gating on timings): ``python benchmarks/bench_scheduler_fastpath.py --quick``.
"""

import time

from conftest import report

from repro.analysis import format_table
from repro.baselines.pls_sqlog import SqLogPlsProtocol, sqlog_labels
from repro.graphs.generators import random_connected_graph
from repro.sim import Network, SynchronousScheduler
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol

N = 500
QUIESCENT_ROUNDS = 160
PATROL_ROUNDS = 24


def _timed(network, protocol, rounds, fast=True, use_schema=True,
           warmup=0):
    sched = SynchronousScheduler(network, protocol, fast_path=fast,
                                 use_schema=use_schema)
    if warmup:
        sched.run(warmup)
    start = time.perf_counter()
    executed = sched.run(rounds)
    elapsed = time.perf_counter() - start
    assert executed == rounds
    assert not network.alarms()
    return elapsed


def measure(n=N, quiescent_rounds=QUIESCENT_ROUNDS,
            patrol_rounds=PATROL_ROUNDS, repeats=2):
    g = random_connected_graph(n, int(1.8 * n), seed=21)
    labels = sqlog_labels(g)
    quiescent = {}
    for fast in (False, True):
        net = Network(g)
        net.install(labels)
        quiescent[fast] = _timed(net, SqLogPlsProtocol(), quiescent_rounds,
                                 fast=fast, use_schema=False)
    patrolling = {}
    for fast in (False, True):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=True, static_every=4)
        patrolling[fast] = _timed(net, proto, patrol_rounds, fast=fast,
                                  use_schema=False)
    # register-file dimension: same train-verifier campaign workload,
    # schema-backed slots vs legacy dicts (best of `repeats` to shave
    # scheduler-noise off the paired per-step comparison)
    storage = {}
    for use_schema in (False, True):
        best = None
        for _ in range(repeats):
            net = make_network(g)
            proto = MstVerifierProtocol(synchronous=True, static_every=4)
            t = _timed(net, proto, patrol_rounds, use_schema=use_schema,
                       warmup=2)
            best = t if best is None else min(best, t)
        storage[use_schema] = best
    return quiescent, patrolling, storage


def render(n, quiescent, patrolling, storage, quiescent_rounds,
           patrol_rounds):
    q_speedup = quiescent[False] / quiescent[True]
    p_speedup = patrolling[False] / patrolling[True]
    s_speedup = storage[False] / storage[True]
    rows = [
        ["quiescent (1-round PLS accept)", quiescent_rounds,
         f"{quiescent[False]:.3f}", f"{quiescent[True]:.3f}",
         f"{q_speedup:.1f}x"],
        ["patrolling (train verifier, fast path)", patrol_rounds,
         f"{patrolling[False]:.3f}", f"{patrolling[True]:.3f}",
         f"{p_speedup:.2f}x"],
        ["register file (train verifier, dict vs schema)", patrol_rounds,
         f"{storage[False]:.3f}", f"{storage[True]:.3f}",
         f"{s_speedup:.2f}x"],
    ]
    table = format_table(
        ["workload (n = %d)" % n, "rounds", "baseline s", "optimized s",
         "speedup"], rows)
    per_step = 1e6 * storage[True] / (patrol_rounds * n)
    body = (table +
            "\n\nquiescent runs fast-forward (the >= 2x bar is cleared by"
            " orders of magnitude); the patrolling train verifier rewrites"
            " registers every round by design, so the fast path can only"
            " match the naive loop there (~1x documents its bookkeeping is"
            " free).  The register-file row is the per-step storage win on"
            " the workload that can never quiesce: slot-indexed state,"
            " write-time nat/decode caching, and stable-version label"
            f" caches ({per_step:.1f}us per node-step schema-backed).")
    return q_speedup, p_speedup, s_speedup, body


def test_scheduler_fastpath(once):
    quiescent, patrolling, storage = once(measure)
    q_speedup, p_speedup, s_speedup, body = render(
        N, quiescent, patrolling, storage, QUIESCENT_ROUNDS, PATROL_ROUNDS)
    assert q_speedup >= 2.0, (quiescent, "fast path must win >= 2x on a "
                              "quiescent 500-node verifier run")
    assert p_speedup >= 0.8, (patrolling, "fast path must not regress "
                              "the always-churning workload")
    assert s_speedup >= 2.0, (storage, "the typed register file must win "
                              ">= 2x per step on the train verifier")
    report("E13", "fast-path scheduler + typed register file", body)


def main(argv=None):
    """Standalone CI smoke: tiny instance, no timing assertions."""
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="small instance, no perf gating (CI smoke)")
    args = parser.parse_args(argv)
    if args.quick:
        quiescent, patrolling, storage = measure(
            n=120, quiescent_rounds=40, patrol_rounds=8, repeats=1)
        _, _, _, body = render(120, quiescent, patrolling, storage, 40, 8)
        print(body)
        return 0
    quiescent, patrolling, storage = measure()
    _, _, _, body = render(N, quiescent, patrolling, storage,
                           QUIESCENT_ROUNDS, PATROL_ROUNDS)
    print(body)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
