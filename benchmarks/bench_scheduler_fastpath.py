"""E13 — the fast-path synchronous scheduler (dirty-set snapshot +
quiescence skip) vs the naive lock-step loop.

Two 500-node verifier workloads:

* **quiescent** — the 1-round PLS verifier accepts a correct instance
  and stops writing; the naive scheduler still re-checks all 500 nodes
  every round, while the fast path steps each node once, detects global
  quiescence, and fast-forwards.  This must be >= 2x faster (it is
  orders of magnitude faster); the differential test
  (tests/test_scheduler_equivalence.py) proves the traces identical.
* **patrolling** — the full train verifier's registers churn every
  round *by design* (the trains rotate pieces forever: that is how the
  paper buys O(log n) memory), so the quiescence skip can never fire
  and only the snapshot bookkeeping differs.  We report the measured
  ratio to document that the fast path costs nothing on the workload
  it cannot accelerate.
"""

import time

from conftest import report

from repro.analysis import format_table
from repro.baselines.pls_sqlog import SqLogPlsProtocol, sqlog_labels
from repro.graphs.generators import random_connected_graph
from repro.sim import Network, SynchronousScheduler
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol

N = 500
QUIESCENT_ROUNDS = 160
PATROL_ROUNDS = 24


def _timed(network, protocol, fast, rounds):
    sched = SynchronousScheduler(network, protocol, fast_path=fast)
    start = time.perf_counter()
    executed = sched.run(rounds)
    elapsed = time.perf_counter() - start
    assert executed == rounds
    assert not network.alarms()
    return elapsed


def measure():
    g = random_connected_graph(N, int(1.8 * N), seed=21)
    labels = sqlog_labels(g)
    quiescent = {}
    for fast in (False, True):
        net = Network(g)
        net.install(labels)
        quiescent[fast] = _timed(net, SqLogPlsProtocol(), fast,
                                 QUIESCENT_ROUNDS)
    patrolling = {}
    for fast in (False, True):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=True, static_every=4)
        patrolling[fast] = _timed(net, proto, fast, PATROL_ROUNDS)
    return quiescent, patrolling


def test_scheduler_fastpath(once):
    quiescent, patrolling = once(measure)
    q_speedup = quiescent[False] / quiescent[True]
    p_speedup = patrolling[False] / patrolling[True]
    rows = [
        ["quiescent (1-round PLS accept)", QUIESCENT_ROUNDS,
         f"{quiescent[False]:.3f}", f"{quiescent[True]:.3f}",
         f"{q_speedup:.1f}x"],
        ["patrolling (train verifier)", PATROL_ROUNDS,
         f"{patrolling[False]:.3f}", f"{patrolling[True]:.3f}",
         f"{p_speedup:.2f}x"],
    ]
    table = format_table(
        ["workload (n = %d)" % N, "rounds", "naive s", "fast s",
         "speedup"], rows)
    body = (table +
            "\n\nquiescent runs fast-forward (the >= 2x bar is cleared "
            "by orders of magnitude); the patrolling train verifier "
            "rewrites registers every round by design, so the fast path "
            "can only match the naive loop there (ratio ~1x documents "
            "that its bookkeeping is free).")
    assert q_speedup >= 2.0, (quiescent, "fast path must win >= 2x on a "
                              "quiescent 500-node verifier run")
    assert p_speedup >= 0.8, (patrolling, "fast path must not regress "
                              "the always-churning workload")
    report("E13", "fast-path synchronous scheduler", body)
