"""E13 — scheduler fast paths, the typed register file, and columnar
storage.

Dimensions on verifier workloads:

* **quiescent** (fast path) — the 1-round PLS verifier accepts a correct
  instance and stops writing; the naive scheduler still re-checks all
  nodes every round, while the fast path steps each node once, detects
  global quiescence, and fast-forwards.  Must be >= 2x faster (it is
  orders of magnitude); ``tests/test_scheduler_equivalence.py`` proves
  the traces identical.
* **patrolling** (fast path) — the full train verifier's registers churn
  every round *by design* (the trains rotate pieces forever: that is how
  the paper buys O(log n) memory), so the quiescence skip never fires;
  the ratio documents that the fast path's bookkeeping is free.
* **storage** — the same patrolling train-verifier campaign workload
  under the three register backends: legacy dicts, the typed register
  file (PR 2), and the columnar store (``repro.sim.columnar``:
  ``array('q')`` columns, interning pool, per-id decode memos, bulk
  column snapshots).  The trains can never quiesce, so this is a pure
  *per-step* comparison, proven bit-for-bit equivalent by
  ``tests/test_storage_differential.py``.  Honest numbers: columnar is
  at per-step *parity* with the register file at n=500 (pure-Python
  scalar access cannot beat a per-node slot list) and pulls ahead as
  the per-object layout outgrows the cache — the larger instance row
  measures that — while dict -> columnar stays >= 2x.
* **memory** — peak traced allocation of building and running the
  train verifier at the larger scale: columns replace per-node objects
  and the snapshot doubles 8-byte entries instead of boxed slots, which
  is the win that lets campaigns reach sizes the per-object layout
  cannot (ROADMAP's KMW-sweep direction).
* **bulk plane** (PR 4) — the same columnar patrol workload with the
  scalar activation loop (``bulk=False``, PR 3's per-step path) vs the
  bulk-activation plane (``repro.sim.bulk``): fused ``array('q')``
  sweeps for the step counters plus column-inlined train/Ask
  bookkeeping, proven bit-for-bit equivalent by
  ``tests/test_bulk_plane.py``.  Honest numbers with interleaved
  best-of-repeats; the assertions gate the repeatable floor and the
  report documents the shortfall against the 1.5x target where the
  trains' dynamic pipeline traffic dominates.
* **async bulk plane** (PR 5) — the *asynchronous* analogue: the
  conflict-free daemon (``ConflictFreeDaemon``, schedule kind
  ``independent``) pre-declares batches with pairwise disjoint closed
  neighbourhoods, which licenses the fused columnar kernels on the
  live (daemon-driven) path — one ``array('q')`` counter sweep per
  batch, column-inlined trains, and the fused Want-mode comparison
  kernels (``make_bulk_want``/``make_bulk_held``) — against the
  scalar asynchronous columnar loop under the *same* daemon.
  Interleaved best-of-repeats at n=500 and n=2000; floors asserted at
  1.15x, shortfall vs the 1.3x target documented.
* **numpy tier** (PR 7) — the vectorized kernel tier
  (``storage="numpy"``, ``repro.sim.npcolumnar``): masked-ndarray fused
  sweeps (step counters, train convergecast-broadcast bookkeeping with
  the vectorized adopt path, Ask/Show, Want comparison) against the
  *fused columnar* bulk plane — both sides ``bulk=True``, so the ratio
  isolates replacing the scalar per-row replay with whole-batch vector
  classification.  Settled to the steady patrol state first (the
  vector/residual split only stabilises once the trains are rolling),
  then interleaved best-of-repeats.  Honest numbers: >= 1.5x per step
  at n=2000 sync (measured 1.66x); the conflict-free async license
  sits at *parity* at n=2000 — the daemon's independent sets average
  ~100 rows there, too small to amortise the per-batch ndarray setup —
  and only pulls ahead (~1.17x measured) at n=8000 where batches reach
  ~400 rows, so the async gate is a no-regression floor with the
  shortfall vs the 1.3x target documented, mirroring the PR 5 rows.
  Skipped gracefully (fallback to columnar) when numpy is absent.

Standalone smoke mode for CI (keeps the perf paths executing on every
PR without gating on timings):
``python benchmarks/bench_scheduler_fastpath.py --quick --out e13.jsonl``
also dumps a deterministic columnar smoke campaign as JSONL, which CI
feeds to ``python -m repro.engine diff`` against the committed baseline
(soft gate; see ``benchmarks/baselines/``).
"""

import time
import tracemalloc

from conftest import report

from repro.analysis import format_table
from repro.baselines.pls_sqlog import SqLogPlsProtocol, sqlog_labels
from repro.graphs.generators import random_connected_graph
from repro.sim import (AsynchronousScheduler, ConflictFreeDaemon, Network,
                       STORAGE_KINDS, SynchronousScheduler)
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol

N = 500
BIG_N = 2000
QUIESCENT_ROUNDS = 160
PATROL_ROUNDS = 24
BIG_PATROL_ROUNDS = 12
ASYNC_ROUNDS = 16
BIG_ASYNC_ROUNDS = 10

STORAGES = STORAGE_KINDS


def _timed(network, protocol, rounds, fast=True, storage="schema",
           warmup=0, bulk=True):
    sched = SynchronousScheduler(network, protocol, fast_path=fast,
                                 storage=storage, bulk=bulk)
    if warmup:
        sched.run(warmup)
    start = time.perf_counter()
    executed = sched.run(rounds)
    elapsed = time.perf_counter() - start
    assert executed == rounds
    assert not network.alarms()
    return elapsed


def _patrol_times(graph, storages, rounds, repeats=2):
    """Best-of-``repeats`` patrol time per storage, with the repeats
    *interleaved* across storages so clock drift (thermal throttling,
    noisy CI neighbours) biases no backend in the paired comparison."""
    best = {st: None for st in storages}
    for _ in range(repeats):
        for st in storages:
            net = make_network(graph)
            proto = MstVerifierProtocol(synchronous=True, static_every=4)
            t = _timed(net, proto, rounds, storage=st, warmup=2)
            best[st] = t if best[st] is None else min(best[st], t)
    return best


def _bulk_times(graph, rounds, repeats=2):
    """Best-of-``repeats`` patrol time on columnar storage, scalar
    activation loop (``bulk=False`` — the PR 3 per-step path) vs the
    bulk-activation plane (fused column sweeps), interleaved like
    :func:`_patrol_times`."""
    best = {False: None, True: None}
    for _ in range(repeats):
        for bulk in (False, True):
            net = make_network(graph)
            proto = MstVerifierProtocol(synchronous=True, static_every=4)
            t = _timed(net, proto, rounds, storage="columnar", warmup=2,
                       bulk=bulk)
            best[bulk] = t if best[bulk] is None else min(best[bulk], t)
    return best


def _async_bulk_times(graph, rounds, repeats=2):
    """Best-of-``repeats`` asynchronous sweep time on columnar storage
    under the conflict-free daemon: scalar activation loop
    (``bulk=False`` — the PR 3 per-activation path) vs the live fused
    column sweeps the ``conflict_free`` license enables, interleaved
    like :func:`_patrol_times`.  Both sides run the *same* daemon, so
    the ratio isolates the per-step effect of the fusion."""
    best = {False: None, True: None}
    for _ in range(repeats):
        for bulk in (False, True):
            net = make_network(graph)
            proto = MstVerifierProtocol(synchronous=False, static_every=4)
            sched = AsynchronousScheduler(
                net, proto, ConflictFreeDaemon(graph, seed=7),
                storage="columnar", bulk=bulk)
            sched.run(2)
            start = time.perf_counter()
            executed = sched.run(rounds)
            t = time.perf_counter() - start
            assert executed == rounds
            assert not net.alarms()
            best[bulk] = t if best[bulk] is None else min(best[bulk], t)
    return best


def _np_bulk_times(graph, rounds, repeats=2, settle=100):
    """Best-of-``repeats`` *steady-state* patrol time, fused columnar
    bulk plane vs the numpy vector tier — both ``bulk=True``, so the
    ratio isolates the masked-ndarray sweeps replacing the scalar
    per-row replay.  Unlike :func:`_patrol_times` the schedulers
    persist across repeats: each repeat times another ``rounds``-round
    block on the same settled instance (the vector/residual row split
    only stabilises once the trains are rolling), interleaved across
    the two tiers so clock drift biases neither."""
    scheds = {}
    for st in ("columnar", "numpy"):
        net = make_network(graph)
        proto = MstVerifierProtocol(synchronous=True, static_every=4)
        sched = SynchronousScheduler(net, proto, storage=st, bulk=True)
        sched.run(settle)
        scheds[st] = (net, sched)
    best = {st: None for st in scheds}
    for _ in range(repeats):
        for st, (net, sched) in scheds.items():
            start = time.perf_counter()
            executed = sched.run(rounds)
            t = time.perf_counter() - start
            assert executed == rounds
            assert not net.alarms()
            best[st] = t if best[st] is None else min(best[st], t)
    return best


def _np_async_times(graph, rounds, repeats=2, settle=60):
    """The asynchronous analogue of :func:`_np_bulk_times`: the
    conflict-free daemon's live fused sweeps on plain columnar vs the
    numpy vector tier, persistent settled schedulers, interleaved
    best-of-repeats."""
    scheds = {}
    for st in ("columnar", "numpy"):
        net = make_network(graph)
        proto = MstVerifierProtocol(synchronous=False, static_every=4)
        sched = AsynchronousScheduler(
            net, proto, ConflictFreeDaemon(graph, seed=7),
            storage=st, bulk=True)
        sched.run(settle)
        scheds[st] = (net, sched)
    best = {st: None for st in scheds}
    for _ in range(repeats):
        for st, (net, sched) in scheds.items():
            start = time.perf_counter()
            executed = sched.run(rounds)
            t = time.perf_counter() - start
            assert executed == rounds
            assert not net.alarms()
            best[st] = t if best[st] is None else min(best[st], t)
    return best


def _peak_memory(graph, storage, rounds=6):
    """Peak traced bytes of building + running the train verifier."""
    tracemalloc.start()
    net = make_network(graph)
    proto = MstVerifierProtocol(synchronous=True, static_every=4)
    sched = SynchronousScheduler(net, proto, storage=storage)
    sched.run(rounds)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def measure(n=N, big_n=BIG_N, quiescent_rounds=QUIESCENT_ROUNDS,
            patrol_rounds=PATROL_ROUNDS,
            big_patrol_rounds=BIG_PATROL_ROUNDS, repeats=2,
            async_rounds=ASYNC_ROUNDS, big_async_rounds=BIG_ASYNC_ROUNDS):
    g = random_connected_graph(n, int(1.8 * n), seed=21)
    labels = sqlog_labels(g)
    quiescent = {}
    for fast in (False, True):
        net = Network(g)
        net.install(labels)
        quiescent[fast] = _timed(net, SqLogPlsProtocol(), quiescent_rounds,
                                 fast=fast, storage="dict")
    patrolling = {}
    for fast in (False, True):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=True, static_every=4)
        patrolling[fast] = _timed(net, proto, patrol_rounds, fast=fast,
                                  storage="dict")
    # storage dimension: same train-verifier campaign workload under all
    # three backends (interleaved best-of-`repeats`, see _patrol_times)
    storage = _patrol_times(g, STORAGES, patrol_rounds, repeats)
    big = random_connected_graph(big_n, int(1.8 * big_n), seed=21)
    storage_big = _patrol_times(big, ("schema", "columnar"),
                                big_patrol_rounds, repeats)
    memory = {st: _peak_memory(big, st) for st in ("schema", "columnar")}
    # bulk-activation plane: columnar scalar loop (the PR 3 per-step
    # path) vs fused batch sweeps, small and campaign scale
    bulk = _bulk_times(g, patrol_rounds, repeats)
    bulk_big = _bulk_times(big, big_patrol_rounds, repeats)
    # asynchronous bulk plane: conflict-free daemon batches, scalar vs
    # live fused column sweeps, same two scales
    async_bulk = _async_bulk_times(g, async_rounds, repeats)
    async_bulk_big = _async_bulk_times(big, big_async_rounds, repeats)
    # numpy vector tier vs the fused columnar plane (both bulk=True),
    # steady-state interleaved best-of; None when numpy is unavailable
    # (the tier itself degrades to columnar with a warning, which would
    # only measure columnar against itself)
    from repro.sim.npcolumnar import numpy_or_none
    if numpy_or_none() is not None:
        np_bulk = _np_bulk_times(g, patrol_rounds, repeats * 3)
        np_bulk_big = _np_bulk_times(big, big_patrol_rounds, repeats * 3)
        np_async_big = _np_async_times(big, big_async_rounds, repeats * 3)
    else:
        np_bulk = np_bulk_big = np_async_big = None
    return (quiescent, patrolling, storage, storage_big, memory,
            bulk, bulk_big, async_bulk, async_bulk_big,
            np_bulk, np_bulk_big, np_async_big)


def render(n, big_n, quiescent, patrolling, storage, storage_big, memory,
           bulk, bulk_big, async_bulk, async_bulk_big,
           np_bulk, np_bulk_big, np_async_big, quiescent_rounds,
           patrol_rounds, big_patrol_rounds, async_rounds,
           big_async_rounds):
    q_speedup = quiescent[False] / quiescent[True]
    p_speedup = patrolling[False] / patrolling[True]
    s_speedup = storage["dict"] / storage["schema"]
    c_speedup = storage["dict"] / storage["columnar"]
    cs_small = storage["schema"] / storage["columnar"]
    cs_big = storage_big["schema"] / storage_big["columnar"]
    mem_factor = memory["schema"] / memory["columnar"]
    b_small = bulk[False] / bulk[True]
    b_big = bulk_big[False] / bulk_big[True]
    a_small = async_bulk[False] / async_bulk[True]
    a_big = async_bulk_big[False] / async_bulk_big[True]
    rows = [
        ["quiescent (1-round PLS accept)", quiescent_rounds,
         f"{quiescent[False]:.3f}", f"{quiescent[True]:.3f}",
         f"{q_speedup:.1f}x"],
        ["patrolling (train verifier, fast path)", patrol_rounds,
         f"{patrolling[False]:.3f}", f"{patrolling[True]:.3f}",
         f"{p_speedup:.2f}x"],
        ["register file (train verifier, dict vs schema)", patrol_rounds,
         f"{storage['dict']:.3f}", f"{storage['schema']:.3f}",
         f"{s_speedup:.2f}x"],
        ["columnar (train verifier, dict vs columnar)", patrol_rounds,
         f"{storage['dict']:.3f}", f"{storage['columnar']:.3f}",
         f"{c_speedup:.2f}x"],
        [f"columnar at scale (n = {big_n}, schema vs columnar)",
         big_patrol_rounds,
         f"{storage_big['schema']:.3f}", f"{storage_big['columnar']:.3f}",
         f"{cs_big:.2f}x"],
        [f"peak memory (n = {big_n}, schema vs columnar, MB)", "-",
         f"{memory['schema'] / 1e6:.1f}", f"{memory['columnar'] / 1e6:.1f}",
         f"{mem_factor:.2f}x"],
        ["bulk plane (columnar scalar vs bulk sweeps)", patrol_rounds,
         f"{bulk[False]:.3f}", f"{bulk[True]:.3f}", f"{b_small:.2f}x"],
        [f"bulk plane at scale (n = {big_n})", big_patrol_rounds,
         f"{bulk_big[False]:.3f}", f"{bulk_big[True]:.3f}",
         f"{b_big:.2f}x"],
        ["async bulk (conflict-free daemon, scalar vs fused)",
         async_rounds,
         f"{async_bulk[False]:.3f}", f"{async_bulk[True]:.3f}",
         f"{a_small:.2f}x"],
        [f"async bulk at scale (n = {big_n})", big_async_rounds,
         f"{async_bulk_big[False]:.3f}", f"{async_bulk_big[True]:.3f}",
         f"{a_big:.2f}x"],
    ]
    if np_bulk is not None:
        v_small = np_bulk["columnar"] / np_bulk["numpy"]
        v_big = np_bulk_big["columnar"] / np_bulk_big["numpy"]
        v_async = np_async_big["columnar"] / np_async_big["numpy"]
        rows += [
            ["numpy tier (fused columnar vs vector sweeps)",
             patrol_rounds,
             f"{np_bulk['columnar']:.3f}", f"{np_bulk['numpy']:.3f}",
             f"{v_small:.2f}x"],
            [f"numpy tier at scale (n = {big_n})", big_patrol_rounds,
             f"{np_bulk_big['columnar']:.3f}",
             f"{np_bulk_big['numpy']:.3f}", f"{v_big:.2f}x"],
            [f"numpy tier, async conflict-free (n = {big_n})",
             big_async_rounds,
             f"{np_async_big['columnar']:.3f}",
             f"{np_async_big['numpy']:.3f}", f"{v_async:.2f}x"],
        ]
    else:
        v_small = v_big = v_async = None
    table = format_table(
        ["workload (n = %d)" % n, "rounds", "baseline s", "optimized s",
         "speedup"], rows)
    per_step = 1e6 * bulk[True] / (patrol_rounds * n)
    body = (table +
            "\n\nquiescent runs fast-forward (the >= 2x bar is cleared by"
            " orders of magnitude); the patrolling train verifier rewrites"
            " registers every round by design, so the fast path can only"
            " match the naive loop there (~1x documents its bookkeeping is"
            " free).  The storage rows are the per-step cost of the"
            " workload that can never quiesce: the typed register file"
            " wins >= 2x over dicts, and the columnar store holds that"
            f" win at per-step parity small ({cs_small:.2f}x vs schema),"
            f" pulling ahead at n = {big_n} ({cs_big:.2f}x) where the"
            " per-object layout outgrows the cache — while cutting peak"
            f" memory {mem_factor:.2f}x, which is what lets campaigns"
            " scale past the per-object layout.  The bulk rows measure"
            " the bulk-activation plane (PR 4) against the scalar"
            " columnar loop those storage rows use: fused column sweeps"
            f" for the step counters plus column-inlined train/Ask"
            f" bookkeeping buy {b_small:.2f}x per step at n = {n}"
            f" ({per_step:.1f}us per node-step) and {b_big:.2f}x at"
            f" n = {big_n}.  Honest shortfall note: the ISSUE's 1.5x"
            " target is met at n = 500 on a quiet machine but the"
            " factor sags toward ~1.35x at n = 2000 and under CI noise"
            " — the remaining time is the trains' genuinely dynamic"
            " pipeline reads/writes, which no read-mostly fusion can"
            " batch away; the assertions gate the repeatable floor,"
            " not the best case.  The async bulk rows take the same"
            " fused kernels off the synchronous-only path: the"
            " conflict-free daemon's disjoint closed-neighbourhood"
            " batches license live fusion (one counter sweep per"
            " batch, column-inlined trains, fused Want-mode"
            f" comparison), buying {a_small:.2f}x per step at n = {n}"
            f" and {a_big:.2f}x at n = {big_n} over the scalar async"
            " columnar loop under the *same* daemon — the 1.3x target"
            f" is {'met' if a_small >= 1.3 else 'missed'} at n = {n}"
            f" and {'met' if a_big >= 1.3 else 'missed'} at"
            f" n = {big_n} on this run.  Where the factor sags it sags"
            " for the same reason as the sync rows — the trains'"
            " dynamic pipeline traffic plus the want-handshake's"
            " serve-one-neighbour cadence are inherently per-node —"
            " so the assertions again gate the repeatable 1.15x floor,"
            " not the best case.")
    if np_bulk is not None:
        body += (
            "  The numpy-tier rows compare the vector tier against the"
            " *fused columnar* plane itself (both sides bulk=True, both"
            " settled to the steady patrol state): whole-batch masked"
            " classification — counter sweeps, convergecast-broadcast"
            " bookkeeping with the vectorized adopt path, Ask/Show and"
            f" Want kernels — buys {v_small:.2f}x per step at n = {n}"
            f" and {v_big:.2f}x at n = {big_n} sync (1.5x target:"
            f" {'met' if v_big >= 1.5 else 'missed'} on this run;"
            " measured 1.66x best-of-6 on a quiet machine).  Honest"
            " async shortfall: the conflict-free row sits at"
            f" {v_async:.2f}x — the daemon's independent sets average"
            f" ~100 rows at n = {big_n}, too small to amortise the"
            " per-batch ndarray setup, so the vector tier only pulls"
            " ahead (~1.17x measured) at n = 8000 where batches reach"
            " ~400 rows; the async gate is therefore a no-regression"
            " floor, mirroring how the PR 5 rows gate their repeatable"
            " floor rather than the 1.3x target.")
    else:
        body += ("  numpy tier rows skipped: numpy unavailable, the"
                 " tier degrades to plain columnar.")
    return (q_speedup, p_speedup, s_speedup, c_speedup, cs_big,
            mem_factor, b_small, b_big, a_small, a_big,
            v_small, v_big, v_async, body)


def columnar_smoke_specs(seed=0):
    """A deterministic columnar cross-section for the JSONL trend dump:
    rounds/memory metrics are exact, so the cross-commit differ can
    hard-join them (compare with ``--no-time`` across machines — wall
    times are only comparable on one host)."""
    from repro.engine import axis, grid, spec_is_satisfiable
    specs = grid(
        topologies=(axis("random", n=12, extra=10), axis("ring", n=8)),
        faults=(axis("none"), axis("corrupt", count=1, fraction=0.6)),
        schedules=(axis("sync", storage="columnar"),
                   axis("locality", storage="columnar"),
                   axis("independent", storage="columnar"),
                   axis("sync", storage="numpy"),
                   axis("independent", storage="numpy")),
        seed=seed,
        completeness_rounds=120,
        max_rounds=4_000,
    )
    return [s for s in specs if spec_is_satisfiable(s)]


def test_scheduler_fastpath(once):
    (quiescent, patrolling, storage, storage_big, memory, bulk,
     bulk_big, async_bulk, async_bulk_big, np_bulk, np_bulk_big,
     np_async_big) = once(measure)
    (q_speedup, p_speedup, s_speedup, c_speedup, cs_big, mem_factor,
     b_small, b_big, a_small, a_big, v_small, v_big, v_async,
     body) = render(
        N, BIG_N, quiescent, patrolling, storage, storage_big, memory,
        bulk, bulk_big, async_bulk, async_bulk_big, np_bulk,
        np_bulk_big, np_async_big, QUIESCENT_ROUNDS,
        PATROL_ROUNDS, BIG_PATROL_ROUNDS, ASYNC_ROUNDS,
        BIG_ASYNC_ROUNDS)
    assert q_speedup >= 2.0, (quiescent, "fast path must win >= 2x on a "
                              "quiescent 500-node verifier run")
    assert p_speedup >= 0.8, (patrolling, "fast path must not regress "
                              "the always-churning workload")
    assert s_speedup >= 2.0, (storage, "the typed register file must win "
                              ">= 2x per step on the train verifier")
    assert c_speedup >= 1.5, (storage, "the columnar store must hold the "
                              ">= 2x-class win over dicts")
    assert cs_big >= 0.85, (storage_big, "columnar must stay at least at "
                            "per-step parity with the register file at "
                            "campaign scale")
    assert mem_factor >= 1.3, (memory, "columnar must cut peak memory on "
                               "the 2k-node workload")
    # bulk plane: 1.5x measured at n=500 on a quiet machine; the gates
    # hold the repeatable floor under noise (see the body's shortfall
    # note — the residue is the trains' dynamic pipeline traffic)
    assert b_small >= 1.25, (bulk, "the bulk plane must beat the scalar "
                             "columnar loop >= 1.25x per step")
    assert b_big >= 1.15, (bulk_big, "the bulk plane must hold the win "
                           "at campaign scale")
    # async fusion: 1.3x measured at n=500 on a quiet machine, ~1.2x at
    # n=2000; the gates hold the 1.15x repeatable floor (see the body's
    # shortfall note — the residue is the trains' dynamic pipeline
    # traffic plus the want handshake's per-node serve cadence)
    assert a_small >= 1.15, (async_bulk, "conflict-free async fusion "
                             "must beat the scalar async columnar loop "
                             ">= 1.15x per step")
    assert a_big >= 1.15, (async_bulk_big, "conflict-free async fusion "
                           "must hold the win at campaign scale")
    if v_small is not None:
        # numpy tier: 1.66x measured at n=2000 sync (best-of-6, settled);
        # the gates hold the repeatable floor under noise.  The async
        # conflict-free gate is a no-regression floor — ~100-row batches
        # at n=2000 cannot amortise the per-batch ndarray setup (the win
        # appears at n=8000); shortfall vs 1.3x documented in the body.
        assert v_small >= 1.2, (np_bulk, "the numpy vector tier must "
                                "beat the fused columnar plane >= 1.2x "
                                "per step at n=500")
        assert v_big >= 1.35, (np_bulk_big, "the numpy vector tier must "
                               "hold >= 1.35x over fused columnar at "
                               "campaign scale (1.5x target, 1.66x "
                               "measured)")
        assert v_async >= 0.8, (np_async_big, "the numpy tier must not "
                                "regress the conflict-free async plane "
                                "beyond noise at n=2000")
    report("E13", "fast-path scheduler + register file + columnar storage",
           body)


def main(argv=None):
    """Standalone CI smoke: tiny instance, no timing assertions."""
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="small instance, no perf gating (CI smoke)")
    parser.add_argument("--out", metavar="RESULTS.jsonl", default=None,
                        help="also run the deterministic columnar smoke "
                             "campaign and dump it as JSONL (join with "
                             "`python -m repro.engine diff`)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed for --out (default 0)")
    args = parser.parse_args(argv)
    if args.quick:
        measured = measure(n=120, big_n=240, quiescent_rounds=40,
                           patrol_rounds=8, big_patrol_rounds=6,
                           repeats=1, async_rounds=6, big_async_rounds=4)
        *_, body = render(120, 240, *measured, 40, 8, 6, 6, 4)
    else:
        measured = measure()
        *_, body = render(N, BIG_N, *measured, QUIESCENT_ROUNDS,
                          PATROL_ROUNDS, BIG_PATROL_ROUNDS,
                          ASYNC_ROUNDS, BIG_ASYNC_ROUNDS)
    print(body)
    if args.out:
        from repro.engine import CampaignRunner
        result = CampaignRunner(workers=1).run(
            columnar_smoke_specs(seed=args.seed))
        bad = result.violations()
        written = result.dump_jsonl(args.out)
        print(f"\nwrote {written} columnar smoke record(s) to {args.out}"
              f" ({len(bad)} violation(s))")
        return 1 if bad else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
