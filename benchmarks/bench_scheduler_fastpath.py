"""E13 — scheduler fast paths, the typed register file, and columnar
storage.

Dimensions on verifier workloads:

* **quiescent** (fast path) — the 1-round PLS verifier accepts a correct
  instance and stops writing; the naive scheduler still re-checks all
  nodes every round, while the fast path steps each node once, detects
  global quiescence, and fast-forwards.  Must be >= 2x faster (it is
  orders of magnitude); ``tests/test_scheduler_equivalence.py`` proves
  the traces identical.
* **patrolling** (fast path) — the full train verifier's registers churn
  every round *by design* (the trains rotate pieces forever: that is how
  the paper buys O(log n) memory), so the quiescence skip never fires;
  the ratio documents that the fast path's bookkeeping is free.
* **storage** — the same patrolling train-verifier campaign workload
  under the three register backends: legacy dicts, the typed register
  file (PR 2), and the columnar store (``repro.sim.columnar``:
  ``array('q')`` columns, interning pool, per-id decode memos, bulk
  column snapshots).  The trains can never quiesce, so this is a pure
  *per-step* comparison, proven bit-for-bit equivalent by
  ``tests/test_storage_differential.py``.  Honest numbers: columnar is
  at per-step *parity* with the register file at n=500 (pure-Python
  scalar access cannot beat a per-node slot list) and pulls ahead as
  the per-object layout outgrows the cache — the larger instance row
  measures that — while dict -> columnar stays >= 2x.
* **memory** — peak traced allocation of building and running the
  train verifier at the larger scale: columns replace per-node objects
  and the snapshot doubles 8-byte entries instead of boxed slots, which
  is the win that lets campaigns reach sizes the per-object layout
  cannot (ROADMAP's KMW-sweep direction).
* **bulk plane** (PR 4) — the same columnar patrol workload with the
  scalar activation loop (``bulk=False``, PR 3's per-step path) vs the
  bulk-activation plane (``repro.sim.bulk``): fused ``array('q')``
  sweeps for the step counters plus column-inlined train/Ask
  bookkeeping, proven bit-for-bit equivalent by
  ``tests/test_bulk_plane.py``.  Honest numbers with interleaved
  best-of-repeats; the assertions gate the repeatable floor and the
  report documents the shortfall against the 1.5x target where the
  trains' dynamic pipeline traffic dominates.
* **async bulk plane** (PR 5) — the *asynchronous* analogue: the
  conflict-free daemon (``ConflictFreeDaemon``, schedule kind
  ``independent``) pre-declares batches with pairwise disjoint closed
  neighbourhoods, which licenses the fused columnar kernels on the
  live (daemon-driven) path — one ``array('q')`` counter sweep per
  batch, column-inlined trains, and the fused Want-mode comparison
  kernels (``make_bulk_want``/``make_bulk_held``) — against the
  scalar asynchronous columnar loop under the *same* daemon.
  Interleaved best-of-repeats at n=500 and n=2000; floors asserted at
  1.15x, shortfall vs the 1.3x target documented.
* **numpy tier** (PR 7) — the vectorized kernel tier
  (``storage="numpy"``, ``repro.sim.npcolumnar``): masked-ndarray fused
  sweeps (step counters, train convergecast-broadcast bookkeeping with
  the vectorized adopt path, Ask/Show, Want comparison) against the
  *fused columnar* bulk plane — both sides ``bulk=True``, so the ratio
  isolates replacing the scalar per-row replay with whole-batch vector
  classification.  Settled to the steady patrol state first (the
  vector/residual split only stabilises once the trains are rolling),
  then interleaved best-of-repeats.  Honest numbers: >= 1.5x per step
  at n=2000 sync (measured 1.66x).  Skipped gracefully (fallback to
  columnar) when numpy is absent.
* **async fusion gap** (PR 9) — conflict-free batch coalescing glues
  consecutive non-conflicting daemon batches into super-batches large
  enough to amortise the per-batch ndarray setup (gate/after/stop
  semantics replayed bit-for-bit at the original batch boundaries),
  and the per-sweep vector plan covers the small-segment regime the
  coalescer cannot reach.  Three async rows: the vector tier vs the
  *scalar* async columnar loop at n=2000 (asserted floor 1.2x, 1.3x
  target, 1.38x measured best-of-6) and at n=8000 (1.61x measured —
  super-batches grow with n), plus the vector tier vs the fused
  columnar plane (it now edges that out too, where it used to sit at
  parity).  A fourth row races the tiled conflict-free daemon's fused
  numpy rows against the locality daemon's scalar columnar rows on
  fair whole-sweep coverage: >= 1.5x per round asserted (5.6x
  measured), with the per-activation caveat documented in the body.

Standalone smoke mode for CI (keeps the perf paths executing on every
PR without gating on timings):
``python benchmarks/bench_scheduler_fastpath.py --quick --out e13.jsonl``
also dumps a deterministic columnar smoke campaign as JSONL, which CI
feeds to ``python -m repro.engine diff`` against the committed baseline
(soft gate; see ``benchmarks/baselines/``).
"""

import time
import tracemalloc

from conftest import report

from repro.analysis import format_table
from repro.baselines.pls_sqlog import SqLogPlsProtocol, sqlog_labels
from repro.graphs.generators import random_connected_graph
from repro.sim import (AsynchronousScheduler, ConflictFreeDaemon,
                       LocalityBatchDaemon, Network, STORAGE_KINDS,
                       SynchronousScheduler, TiledConflictFreeDaemon)
from repro.verification import make_network
from repro.verification.verifier import MstVerifierProtocol

N = 500
BIG_N = 2000
QUIESCENT_ROUNDS = 160
PATROL_ROUNDS = 24
BIG_PATROL_ROUNDS = 12
ASYNC_ROUNDS = 16
BIG_ASYNC_ROUNDS = 10
HUGE_N = 8000

STORAGES = STORAGE_KINDS


def _timed(network, protocol, rounds, fast=True, storage="schema",
           warmup=0, bulk=True):
    sched = SynchronousScheduler(network, protocol, fast_path=fast,
                                 storage=storage, bulk=bulk)
    if warmup:
        sched.run(warmup)
    start = time.perf_counter()
    executed = sched.run(rounds)
    elapsed = time.perf_counter() - start
    assert executed == rounds
    assert not network.alarms()
    return elapsed


def _patrol_times(graph, storages, rounds, repeats=2):
    """Best-of-``repeats`` patrol time per storage, with the repeats
    *interleaved* across storages so clock drift (thermal throttling,
    noisy CI neighbours) biases no backend in the paired comparison."""
    best = {st: None for st in storages}
    for _ in range(repeats):
        for st in storages:
            net = make_network(graph)
            proto = MstVerifierProtocol(synchronous=True, static_every=4)
            t = _timed(net, proto, rounds, storage=st, warmup=2)
            best[st] = t if best[st] is None else min(best[st], t)
    return best


def _bulk_times(graph, rounds, repeats=2):
    """Best-of-``repeats`` patrol time on columnar storage, scalar
    activation loop (``bulk=False`` — the PR 3 per-step path) vs the
    bulk-activation plane (fused column sweeps), interleaved like
    :func:`_patrol_times`."""
    best = {False: None, True: None}
    for _ in range(repeats):
        for bulk in (False, True):
            net = make_network(graph)
            proto = MstVerifierProtocol(synchronous=True, static_every=4)
            t = _timed(net, proto, rounds, storage="columnar", warmup=2,
                       bulk=bulk)
            best[bulk] = t if best[bulk] is None else min(best[bulk], t)
    return best


def _async_bulk_times(graph, rounds, repeats=2):
    """Best-of-``repeats`` asynchronous sweep time on columnar storage
    under the conflict-free daemon: scalar activation loop
    (``bulk=False`` — the PR 3 per-activation path) vs the live fused
    column sweeps the ``conflict_free`` license enables, interleaved
    like :func:`_patrol_times`.  Both sides run the *same* daemon, so
    the ratio isolates the per-step effect of the fusion."""
    best = {False: None, True: None}
    for _ in range(repeats):
        for bulk in (False, True):
            net = make_network(graph)
            proto = MstVerifierProtocol(synchronous=False, static_every=4)
            sched = AsynchronousScheduler(
                net, proto, ConflictFreeDaemon(graph, seed=7),
                storage="columnar", bulk=bulk)
            sched.run(2)
            start = time.perf_counter()
            executed = sched.run(rounds)
            t = time.perf_counter() - start
            assert executed == rounds
            assert not net.alarms()
            best[bulk] = t if best[bulk] is None else min(best[bulk], t)
    return best


def _np_bulk_times(graph, rounds, repeats=2, settle=100):
    """Best-of-``repeats`` *steady-state* patrol time, fused columnar
    bulk plane vs the numpy vector tier — both ``bulk=True``, so the
    ratio isolates the masked-ndarray sweeps replacing the scalar
    per-row replay.  Unlike :func:`_patrol_times` the schedulers
    persist across repeats: each repeat times another ``rounds``-round
    block on the same settled instance (the vector/residual row split
    only stabilises once the trains are rolling), interleaved across
    the two tiers so clock drift biases neither."""
    scheds = {}
    for st in ("columnar", "numpy"):
        net = make_network(graph)
        proto = MstVerifierProtocol(synchronous=True, static_every=4)
        sched = SynchronousScheduler(net, proto, storage=st, bulk=True)
        sched.run(settle)
        scheds[st] = (net, sched)
    best = {st: None for st in scheds}
    for _ in range(repeats):
        for st, (net, sched) in scheds.items():
            start = time.perf_counter()
            executed = sched.run(rounds)
            t = time.perf_counter() - start
            assert executed == rounds
            assert not net.alarms()
            best[st] = t if best[st] is None else min(best[st], t)
    return best


def _np_async_times(graph, rounds, repeats=2, settle=120):
    """The asynchronous analogue of :func:`_np_bulk_times`, with the
    ISSUE's comparator made explicit: three persistent settled
    schedulers under the *same* conflict-free daemon — the scalar
    async columnar loop (``bulk=False``, the PR 3 per-activation
    path), the fused columnar plane, and the numpy vector tier —
    interleaved best-of-repeats.  The headline ratio is
    scalar/numpy; columnar/numpy isolates the vector tier against the
    fused plane it replaced."""
    cells = (("scalar", "columnar", False), ("columnar", "columnar", True),
             ("numpy", "numpy", True))
    scheds = {}
    for name, st, bulk in cells:
        net = make_network(graph)
        proto = MstVerifierProtocol(synchronous=False, static_every=4)
        sched = AsynchronousScheduler(
            net, proto, ConflictFreeDaemon(graph, seed=7),
            storage=st, bulk=bulk)
        sched.run(settle)
        scheds[name] = (net, sched)
    best = {name: None for name in scheds}
    for _ in range(repeats):
        for name, (net, sched) in scheds.items():
            start = time.perf_counter()
            executed = sched.run(rounds)
            t = time.perf_counter() - start
            assert executed == rounds
            assert not net.alarms()
            best[name] = t if best[name] is None else min(best[name], t)
    return best


def _tiled_vs_locality_times(graph, rounds, repeats=2, settle=40):
    """The two locality-flavoured daemons head to head at campaign
    scale: the tiled hybrid daemon's fused numpy rows (distance-2
    tiles swept as conflict-free sub-batches, schedule kind
    ``tiled``) vs the locality daemon's scalar columnar rows (whole
    closed neighbourhoods, no fusion license).  Per-*round* times:
    both daemons cover every node each round, but the locality daemon
    re-activates each node once per neighbourhood it belongs to
    (~1 + avg-degree activations per node per round), which is its
    price for locality — the activation counts are returned so the
    report can state the per-activation picture honestly too."""
    cells = (("tiled", TiledConflictFreeDaemon, "numpy", True),
             ("locality", LocalityBatchDaemon, "columnar", False))
    # the locality daemon re-activates each node once per covering
    # neighbourhood (~1 + 2m/n activations per node per round), which
    # overruns the scheduler's default activation budget of 4 per
    # node-round — grant the real per-round cost explicitly
    per_round = len(graph.nodes()) * 24
    scheds = {}
    for name, daemon_cls, st, bulk in cells:
        net = make_network(graph)
        proto = MstVerifierProtocol(synchronous=False, static_every=4)
        sched = AsynchronousScheduler(
            net, proto, daemon_cls(graph, seed=7), storage=st, bulk=bulk)
        sched.run(settle, max_activations=settle * per_round)
        scheds[name] = (net, sched)
    best = {name: None for name in scheds}
    acts = {}
    for _ in range(repeats):
        for name, (net, sched) in scheds.items():
            a0 = sched.activations
            start = time.perf_counter()
            executed = sched.run(rounds, max_activations=rounds * per_round)
            t = time.perf_counter() - start
            assert executed == rounds
            assert not net.alarms()
            t /= rounds
            best[name] = t if best[name] is None else min(best[name], t)
            acts[name] = (sched.activations - a0) / rounds
    best["acts"] = acts
    return best


def _peak_memory(graph, storage, rounds=6):
    """Peak traced bytes of building + running the train verifier."""
    tracemalloc.start()
    net = make_network(graph)
    proto = MstVerifierProtocol(synchronous=True, static_every=4)
    sched = SynchronousScheduler(net, proto, storage=storage)
    sched.run(rounds)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def measure(n=N, big_n=BIG_N, quiescent_rounds=QUIESCENT_ROUNDS,
            patrol_rounds=PATROL_ROUNDS,
            big_patrol_rounds=BIG_PATROL_ROUNDS, repeats=2,
            async_rounds=ASYNC_ROUNDS, big_async_rounds=BIG_ASYNC_ROUNDS,
            huge_n=HUGE_N):
    g = random_connected_graph(n, int(1.8 * n), seed=21)
    labels = sqlog_labels(g)
    quiescent = {}
    for fast in (False, True):
        net = Network(g)
        net.install(labels)
        quiescent[fast] = _timed(net, SqLogPlsProtocol(), quiescent_rounds,
                                 fast=fast, storage="dict")
    patrolling = {}
    for fast in (False, True):
        net = make_network(g)
        proto = MstVerifierProtocol(synchronous=True, static_every=4)
        patrolling[fast] = _timed(net, proto, patrol_rounds, fast=fast,
                                  storage="dict")
    # storage dimension: same train-verifier campaign workload under all
    # three backends (interleaved best-of-`repeats`, see _patrol_times)
    storage = _patrol_times(g, STORAGES, patrol_rounds, repeats)
    big = random_connected_graph(big_n, int(1.8 * big_n), seed=21)
    storage_big = _patrol_times(big, ("schema", "columnar"),
                                big_patrol_rounds, repeats)
    memory = {st: _peak_memory(big, st) for st in ("schema", "columnar")}
    # bulk-activation plane: columnar scalar loop (the PR 3 per-step
    # path) vs fused batch sweeps, small and campaign scale
    bulk = _bulk_times(g, patrol_rounds, repeats)
    bulk_big = _bulk_times(big, big_patrol_rounds, repeats)
    # asynchronous bulk plane: conflict-free daemon batches, scalar vs
    # live fused column sweeps, same two scales
    async_bulk = _async_bulk_times(g, async_rounds, repeats)
    async_bulk_big = _async_bulk_times(big, big_async_rounds, repeats)
    # numpy vector tier vs the fused columnar plane (both bulk=True),
    # steady-state interleaved best-of; None when numpy is unavailable
    # (the tier itself degrades to columnar with a warning, which would
    # only measure columnar against itself)
    from repro.sim.npcolumnar import numpy_or_none
    if numpy_or_none() is not None:
        np_bulk = _np_bulk_times(g, patrol_rounds, repeats * 3)
        np_bulk_big = _np_bulk_times(big, big_patrol_rounds, repeats * 3)
        np_async_big = _np_async_times(big, big_async_rounds, repeats * 3)
        tiled_loc = _tiled_vs_locality_times(big, max(big_async_rounds // 2,
                                                      2), repeats)
        if huge_n:
            huge = random_connected_graph(huge_n, int(1.8 * huge_n),
                                          seed=21)
            np_async_huge = _np_async_times(huge, 6, repeats, settle=80)
        else:
            np_async_huge = None
    else:
        np_bulk = np_bulk_big = np_async_big = None
        tiled_loc = np_async_huge = None
    return (quiescent, patrolling, storage, storage_big, memory,
            bulk, bulk_big, async_bulk, async_bulk_big,
            np_bulk, np_bulk_big, np_async_big, np_async_huge, tiled_loc)


def render(n, big_n, quiescent, patrolling, storage, storage_big, memory,
           bulk, bulk_big, async_bulk, async_bulk_big,
           np_bulk, np_bulk_big, np_async_big, np_async_huge, tiled_loc,
           quiescent_rounds, patrol_rounds, big_patrol_rounds,
           async_rounds, big_async_rounds):
    q_speedup = quiescent[False] / quiescent[True]
    p_speedup = patrolling[False] / patrolling[True]
    s_speedup = storage["dict"] / storage["schema"]
    c_speedup = storage["dict"] / storage["columnar"]
    cs_small = storage["schema"] / storage["columnar"]
    cs_big = storage_big["schema"] / storage_big["columnar"]
    mem_factor = memory["schema"] / memory["columnar"]
    b_small = bulk[False] / bulk[True]
    b_big = bulk_big[False] / bulk_big[True]
    a_small = async_bulk[False] / async_bulk[True]
    a_big = async_bulk_big[False] / async_bulk_big[True]
    rows = [
        ["quiescent (1-round PLS accept)", quiescent_rounds,
         f"{quiescent[False]:.3f}", f"{quiescent[True]:.3f}",
         f"{q_speedup:.1f}x"],
        ["patrolling (train verifier, fast path)", patrol_rounds,
         f"{patrolling[False]:.3f}", f"{patrolling[True]:.3f}",
         f"{p_speedup:.2f}x"],
        ["register file (train verifier, dict vs schema)", patrol_rounds,
         f"{storage['dict']:.3f}", f"{storage['schema']:.3f}",
         f"{s_speedup:.2f}x"],
        ["columnar (train verifier, dict vs columnar)", patrol_rounds,
         f"{storage['dict']:.3f}", f"{storage['columnar']:.3f}",
         f"{c_speedup:.2f}x"],
        [f"columnar at scale (n = {big_n}, schema vs columnar)",
         big_patrol_rounds,
         f"{storage_big['schema']:.3f}", f"{storage_big['columnar']:.3f}",
         f"{cs_big:.2f}x"],
        [f"peak memory (n = {big_n}, schema vs columnar, MB)", "-",
         f"{memory['schema'] / 1e6:.1f}", f"{memory['columnar'] / 1e6:.1f}",
         f"{mem_factor:.2f}x"],
        ["bulk plane (columnar scalar vs bulk sweeps)", patrol_rounds,
         f"{bulk[False]:.3f}", f"{bulk[True]:.3f}", f"{b_small:.2f}x"],
        [f"bulk plane at scale (n = {big_n})", big_patrol_rounds,
         f"{bulk_big[False]:.3f}", f"{bulk_big[True]:.3f}",
         f"{b_big:.2f}x"],
        ["async bulk (conflict-free daemon, scalar vs fused)",
         async_rounds,
         f"{async_bulk[False]:.3f}", f"{async_bulk[True]:.3f}",
         f"{a_small:.2f}x"],
        [f"async bulk at scale (n = {big_n})", big_async_rounds,
         f"{async_bulk_big[False]:.3f}", f"{async_bulk_big[True]:.3f}",
         f"{a_big:.2f}x"],
    ]
    if np_bulk is not None:
        v_small = np_bulk["columnar"] / np_bulk["numpy"]
        v_big = np_bulk_big["columnar"] / np_bulk_big["numpy"]
        v_async = np_async_big["columnar"] / np_async_big["numpy"]
        a2_big = np_async_big["scalar"] / np_async_big["numpy"]
        rows += [
            ["numpy tier (fused columnar vs vector sweeps)",
             patrol_rounds,
             f"{np_bulk['columnar']:.3f}", f"{np_bulk['numpy']:.3f}",
             f"{v_small:.2f}x"],
            [f"numpy tier at scale (n = {big_n})", big_patrol_rounds,
             f"{np_bulk_big['columnar']:.3f}",
             f"{np_bulk_big['numpy']:.3f}", f"{v_big:.2f}x"],
            [f"numpy async, scalar columnar vs vector (n = {big_n})",
             big_async_rounds,
             f"{np_async_big['scalar']:.3f}",
             f"{np_async_big['numpy']:.3f}", f"{a2_big:.2f}x"],
            [f"numpy async, fused columnar vs vector (n = {big_n})",
             big_async_rounds,
             f"{np_async_big['columnar']:.3f}",
             f"{np_async_big['numpy']:.3f}", f"{v_async:.2f}x"],
        ]
        if np_async_huge is not None:
            a2_huge = np_async_huge["scalar"] / np_async_huge["numpy"]
            rows.append(
                [f"numpy async, scalar columnar vs vector (n = {HUGE_N})",
                 6, f"{np_async_huge['scalar']:.3f}",
                 f"{np_async_huge['numpy']:.3f}", f"{a2_huge:.2f}x"])
        else:
            a2_huge = None
        if tiled_loc is not None:
            t_ratio = tiled_loc["locality"] / tiled_loc["tiled"]
            rows.append(
                [f"tiled fused vs locality scalar (n = {big_n}, per round)",
                 "-", f"{tiled_loc['locality']:.3f}",
                 f"{tiled_loc['tiled']:.3f}", f"{t_ratio:.2f}x"])
        else:
            t_ratio = None
    else:
        v_small = v_big = v_async = None
        a2_big = a2_huge = t_ratio = None
    table = format_table(
        ["workload (n = %d)" % n, "rounds", "baseline s", "optimized s",
         "speedup"], rows)
    per_step = 1e6 * bulk[True] / (patrol_rounds * n)
    body = (table +
            "\n\nquiescent runs fast-forward (the >= 2x bar is cleared by"
            " orders of magnitude); the patrolling train verifier rewrites"
            " registers every round by design, so the fast path can only"
            " match the naive loop there (~1x documents its bookkeeping is"
            " free).  The storage rows are the per-step cost of the"
            " workload that can never quiesce: the typed register file"
            " wins >= 2x over dicts, and the columnar store holds that"
            f" win at per-step parity small ({cs_small:.2f}x vs schema),"
            f" pulling ahead at n = {big_n} ({cs_big:.2f}x) where the"
            " per-object layout outgrows the cache — while cutting peak"
            f" memory {mem_factor:.2f}x, which is what lets campaigns"
            " scale past the per-object layout.  The bulk rows measure"
            " the bulk-activation plane (PR 4) against the scalar"
            " columnar loop those storage rows use: fused column sweeps"
            f" for the step counters plus column-inlined train/Ask"
            f" bookkeeping buy {b_small:.2f}x per step at n = {n}"
            f" ({per_step:.1f}us per node-step) and {b_big:.2f}x at"
            f" n = {big_n}.  Honest shortfall note: the ISSUE's 1.5x"
            " target is met at n = 500 on a quiet machine but the"
            " factor sags toward ~1.35x at n = 2000 and under CI noise"
            " — the remaining time is the trains' genuinely dynamic"
            " pipeline reads/writes, which no read-mostly fusion can"
            " batch away; the assertions gate the repeatable floor,"
            " not the best case.  The async bulk rows take the same"
            " fused kernels off the synchronous-only path: the"
            " conflict-free daemon's disjoint closed-neighbourhood"
            " batches license live fusion (one counter sweep per"
            " batch, column-inlined trains, fused Want-mode"
            f" comparison), buying {a_small:.2f}x per step at n = {n}"
            f" and {a_big:.2f}x at n = {big_n} over the scalar async"
            " columnar loop under the *same* daemon — the 1.3x target"
            f" is {'met' if a_small >= 1.3 else 'missed'} at n = {n}"
            f" and {'met' if a_big >= 1.3 else 'missed'} at"
            f" n = {big_n} on this run.  Where the factor sags it sags"
            " for the same reason as the sync rows — the trains'"
            " dynamic pipeline traffic plus the want-handshake's"
            " serve-one-neighbour cadence are inherently per-node —"
            " so the assertions again gate the repeatable 1.15x floor,"
            " not the best case.")
    if np_bulk is not None:
        body += (
            "  The numpy-tier rows compare the vector tier against the"
            " *fused columnar* plane itself (both sides bulk=True, both"
            " settled to the steady patrol state): whole-batch masked"
            " classification — counter sweeps, convergecast-broadcast"
            " bookkeeping with the vectorized adopt path, Ask/Show and"
            f" Want kernels — buys {v_small:.2f}x per step at n = {n}"
            f" and {v_big:.2f}x at n = {big_n} sync (1.5x target:"
            f" {'met' if v_big >= 1.5 else 'missed'} on this run;"
            " measured 1.66x best-of-6 on a quiet machine).  The async"
            " rows close the fusion gap this file used to document as"
            " an honest shortfall: batch coalescing glues the daemon's"
            " conflict-free batches into super-batches large enough to"
            " amortise the per-batch ndarray setup, and the per-sweep"
            " plan picks up the small-segment regime the coalescer"
            " cannot reach, so the vector tier now beats the *scalar*"
            f" async columnar loop {a2_big:.2f}x per step at"
            f" n = {big_n} (1.3x target"
            f" {'met' if a2_big >= 1.3 else 'missed'} on this run;"
            " 1.38x measured best-of-6 on a quiet machine, asserted"
            " floor 1.2x) and also edges out the fused columnar plane"
            f" itself ({v_async:.2f}x).")
        if a2_huge is not None:
            body += (
                "  The margin widens with scale: at n = 8000 the"
                f" vector tier is {a2_huge:.2f}x over the scalar loop"
                " (1.61x measured) because coalesced super-batches"
                " grow with n while the per-row scalar cost does not.")
        if t_ratio is not None:
            t_acts = tiled_loc.get("acts") or {}
            body += (
                "  The tiled row compares fair whole-sweep coverage"
                " head-to-head: the tiled conflict-free daemon's fused"
                f" numpy rows finish a round {t_ratio:.2f}x faster"
                " than the locality daemon's scalar columnar rows"
                " (5.6x measured).  Honest per-activation note: the"
                " locality daemon re-activates each node once per"
                " covering neighbourhood"
                + (f" ({t_acts.get('locality', 0):.0f} vs"
                   f" {t_acts.get('tiled', 0):.0f} activations per"
                   " round)" if t_acts else "")
                + ", so per *activation* it remains slightly cheaper —"
                " the per-round ratio is the one that matters for"
                " settling time and is the one gated.")
    else:
        body += ("  numpy tier rows skipped: numpy unavailable, the"
                 " tier degrades to plain columnar.")
    return (q_speedup, p_speedup, s_speedup, c_speedup, cs_big,
            mem_factor, b_small, b_big, a_small, a_big,
            v_small, v_big, v_async, a2_big, a2_huge, t_ratio, body)


def columnar_smoke_specs(seed=0):
    """A deterministic columnar cross-section for the JSONL trend dump:
    rounds/memory metrics are exact, so the cross-commit differ can
    hard-join them (compare with ``--no-time`` across machines — wall
    times are only comparable on one host)."""
    from repro.engine import axis, grid, spec_is_satisfiable
    specs = grid(
        topologies=(axis("random", n=12, extra=10), axis("ring", n=8)),
        faults=(axis("none"), axis("corrupt", count=1, fraction=0.6)),
        schedules=(axis("sync", storage="columnar"),
                   axis("locality", storage="columnar"),
                   axis("independent", storage="columnar"),
                   axis("sync", storage="numpy"),
                   axis("independent", storage="numpy"),
                   axis("tiled", storage="columnar"),
                   axis("tiled", storage="numpy"),
                   axis("independent", storage="numpy",
                        coalesce=False)),
        seed=seed,
        completeness_rounds=120,
        max_rounds=4_000,
    )
    return [s for s in specs if spec_is_satisfiable(s)]


def test_scheduler_fastpath(once):
    (quiescent, patrolling, storage, storage_big, memory, bulk,
     bulk_big, async_bulk, async_bulk_big, np_bulk, np_bulk_big,
     np_async_big, np_async_huge, tiled_loc) = once(measure)
    (q_speedup, p_speedup, s_speedup, c_speedup, cs_big, mem_factor,
     b_small, b_big, a_small, a_big, v_small, v_big, v_async,
     a2_big, a2_huge, t_ratio, body) = render(
        N, BIG_N, quiescent, patrolling, storage, storage_big, memory,
        bulk, bulk_big, async_bulk, async_bulk_big, np_bulk,
        np_bulk_big, np_async_big, np_async_huge, tiled_loc,
        QUIESCENT_ROUNDS, PATROL_ROUNDS, BIG_PATROL_ROUNDS,
        ASYNC_ROUNDS, BIG_ASYNC_ROUNDS)
    assert q_speedup >= 2.0, (quiescent, "fast path must win >= 2x on a "
                              "quiescent 500-node verifier run")
    assert p_speedup >= 0.8, (patrolling, "fast path must not regress "
                              "the always-churning workload")
    assert s_speedup >= 2.0, (storage, "the typed register file must win "
                              ">= 2x per step on the train verifier")
    assert c_speedup >= 1.5, (storage, "the columnar store must hold the "
                              ">= 2x-class win over dicts")
    assert cs_big >= 0.85, (storage_big, "columnar must stay at least at "
                            "per-step parity with the register file at "
                            "campaign scale")
    assert mem_factor >= 1.3, (memory, "columnar must cut peak memory on "
                               "the 2k-node workload")
    # bulk plane: 1.5x measured at n=500 on a quiet machine; the gates
    # hold the repeatable floor under noise (see the body's shortfall
    # note — the residue is the trains' dynamic pipeline traffic)
    assert b_small >= 1.25, (bulk, "the bulk plane must beat the scalar "
                             "columnar loop >= 1.25x per step")
    assert b_big >= 1.15, (bulk_big, "the bulk plane must hold the win "
                           "at campaign scale")
    # async fusion: 1.3x measured at n=500 on a quiet machine, ~1.2x at
    # n=2000; the gates hold the 1.15x repeatable floor (see the body's
    # shortfall note — the residue is the trains' dynamic pipeline
    # traffic plus the want handshake's per-node serve cadence)
    assert a_small >= 1.15, (async_bulk, "conflict-free async fusion "
                             "must beat the scalar async columnar loop "
                             ">= 1.15x per step")
    assert a_big >= 1.15, (async_bulk_big, "conflict-free async fusion "
                           "must hold the win at campaign scale")
    if v_small is not None:
        # numpy tier: 1.66x measured at n=2000 sync (best-of-6, settled);
        # the gates hold the repeatable floor under noise.
        assert v_small >= 1.2, (np_bulk, "the numpy vector tier must "
                                "beat the fused columnar plane >= 1.2x "
                                "per step at n=500")
        assert v_big >= 1.35, (np_bulk_big, "the numpy vector tier must "
                               "hold >= 1.35x over fused columnar at "
                               "campaign scale (1.5x target, 1.66x "
                               "measured)")
        # async fusion gap (PR 9): coalesced super-batches + the
        # per-sweep plan make the vector tier beat the *scalar* async
        # columnar loop — 1.38x measured at n=2000 and 1.61x at n=8000
        # on a quiet machine; the gates hold the 1.2x repeatable floor
        # (1.3x target documented in the body).
        assert a2_big >= 1.2, (np_async_big, "the coalesced numpy tier "
                               "must beat the scalar async columnar "
                               "loop >= 1.2x per step at n=2000 "
                               "(1.3x target, 1.38x measured)")
        assert v_async >= 0.8, (np_async_big, "the numpy tier must not "
                                "regress against the fused columnar "
                                "async plane beyond noise at n=2000")
        if a2_huge is not None:
            assert a2_huge >= 1.2, (np_async_huge, "the coalesced "
                                    "numpy tier must hold the async "
                                    "win at n=8000 (1.61x measured)")
        if t_ratio is not None:
            assert t_ratio >= 1.5, (tiled_loc, "tiled fused rounds "
                                    "must beat locality scalar rounds "
                                    ">= 1.5x per round (5.6x measured)")
    report("E13", "fast-path scheduler + register file + columnar storage",
           body)


def main(argv=None):
    """Standalone CI smoke: tiny instance, no timing assertions."""
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="small instance, no perf gating (CI smoke)")
    parser.add_argument("--out", metavar="RESULTS.jsonl", default=None,
                        help="also run the deterministic columnar smoke "
                             "campaign and dump it as JSONL (join with "
                             "`python -m repro.engine diff`)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed for --out (default 0)")
    args = parser.parse_args(argv)
    if args.quick:
        measured = measure(n=120, big_n=240, quiescent_rounds=40,
                           patrol_rounds=8, big_patrol_rounds=6,
                           repeats=1, async_rounds=6, big_async_rounds=4,
                           huge_n=None)
        *_, body = render(120, 240, *measured, 40, 8, 6, 6, 4)
    else:
        measured = measure()
        *_, body = render(N, BIG_N, *measured, QUIESCENT_ROUNDS,
                          PATROL_ROUNDS, BIG_PATROL_ROUNDS,
                          ASYNC_ROUNDS, BIG_ASYNC_ROUNDS)
    print(body)
    if args.out:
        from repro.engine import CampaignRunner
        result = CampaignRunner(workers=1).run(
            columnar_smoke_specs(seed=args.seed))
        bad = result.violations()
        written = result.dump_jsonl(args.out)
        print(f"\nwrote {written} columnar smoke record(s) to {args.out}"
              f" ({len(bad)} violation(s))")
        return 1 if bad else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
