"""E14 — KMW-style lower-bound sweep at 10k+ nodes (columnar backend).

The Section-9 reduction builds the instances behind the Omega(log n)
detection-time bound — every base edge subdivided into a ``2 tau + 2``
path ("A Breezing Proof of the KMW Bound" treats exactly this kind of
local-model sweep as one bulk round; see PAPERS.md).  PR 3's columnar
store made the 10k+-node scale memory-feasible and PR 4's
bulk-activation plane makes the per-node static-check sweep a batched
column pass; this benchmark wires the sweep into the campaign engine
(:func:`repro.engine.kmw_sweep_campaign`) so it emits JSONL joinable by
``python -m repro.engine diff`` across commits.

Per subdivided instance (growing tau, largest cell > 10k nodes):

* **completeness** — honest labels, quiet rounds, per-node memory-bit
  accounting (the O(log n)-bits story must survive the blow-up);
* **detection** — two scrambled nodes, settle-free: the 1-round static
  checks must land the alarm within a couple of rounds regardless of
  the instance size (detection time is local even on lower-bound
  instances; only the *comparison* bound stretches with tau).

``--quick`` shrinks the cells for CI smoke (< 20 s); ``--out`` dumps
the records as JSONL.
"""

from conftest import report

from repro.analysis import format_table
from repro.engine import CampaignRunner, graph_for, kmw_sweep_campaign

#: CI smoke cells: same shape, toy sizes.
QUICK_CELLS = ((16, 24, 1), (24, 38, 2))


def run_sweep(cells=None, seed=0, workers=1, out=None):
    specs = kmw_sweep_campaign(seed=seed) if cells is None else \
        kmw_sweep_campaign(cells=cells, seed=seed)
    result = CampaignRunner(workers=workers).run(specs)
    rows = []
    for spec, res in zip(specs, result):
        graph = graph_for(spec)
        tau = spec.topology.get("tau")
        rows.append([
            spec.topology.get("base_n"), tau, graph.n,
            spec.fault.kind,
            "-" if res.rounds_to_detection is None
            else res.rounds_to_detection,
            res.max_memory_bits, res.total_memory_bits,
            "ok" if res.ok else str(res.violation),
        ])
    table = format_table(
        ["base n", "tau", "n'", "fault", "detect rounds",
         "max bits/node", "total bits", "verdict"], rows)
    if out:
        written = result.dump_jsonl(out)
        table += f"\nwrote {written} scenario record(s) to {out}"
    return result, rows, table


def test_kmw_sweep(once):
    result, rows, table = once(run_sweep)
    assert not result.violations(), result.summary()
    biggest = max(r[2] for r in rows)
    assert biggest >= 10_000, (biggest, "the sweep must reach the "
                               "10k+-node scale the columnar backend "
                               "unlocked")
    detections = [r[4] for r in rows if r[3] == "scramble"]
    assert all(isinstance(d, int) and d <= 4 for d in detections), \
        (detections, "scrambled labels must trip the static checks "
         "within a few rounds at every scale")
    body = (table + "\n\ndetection stays O(1) rounds across the tau "
            "sweep (the static checks are 1-round-local even on "
            "lower-bound instances) while per-node memory stays in the "
            "O(log n) regime — the scale itself, >= 10k nodes on the "
            "columnar backend, is what PR 3/PR 4 bought.")
    report("E14", "KMW-style lower-bound sweep (subdivided instances, "
           "columnar)", body)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="toy cells, < 20s (CI smoke)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="dump the sweep as JSONL (joinable by "
                             "`python -m repro.engine diff`)")
    args = parser.parse_args(argv)
    cells = QUICK_CELLS if args.quick else None
    result, rows, table = run_sweep(cells=cells, seed=args.seed,
                                    workers=args.workers, out=args.out)
    print(table)
    bad = result.violations()
    if bad:
        print(f"{len(bad)} violation(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
