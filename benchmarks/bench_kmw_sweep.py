"""E14 — KMW-style lower-bound sweep at 10k+ nodes (columnar backend).

The Section-9 reduction builds the instances behind the Omega(log n)
detection-time bound — every base edge subdivided into a ``2 tau + 2``
path ("A Breezing Proof of the KMW Bound" treats exactly this kind of
local-model sweep as one bulk round; see PAPERS.md).  PR 3's columnar
store made the 10k+-node scale memory-feasible and PR 4's
bulk-activation plane makes the per-node static-check sweep a batched
column pass; this benchmark wires the sweep into the campaign engine
(:func:`repro.engine.kmw_sweep_campaign`) so it emits JSONL joinable by
``python -m repro.engine diff`` across commits.

Per subdivided instance (growing tau, largest cell > 10k nodes):

* **completeness** — honest labels, quiet rounds, per-node memory-bit
  accounting (the O(log n)-bits story must survive the blow-up);
* **detection** — two scrambled nodes, settle-free: the 1-round static
  checks must land the alarm within a couple of rounds regardless of
  the instance size (detection time is local even on lower-bound
  instances; only the *comparison* bound stretches with tau).

``--quick`` shrinks the cells for CI smoke (< 20 s); ``--out`` dumps
the records as JSONL.

``--tau-trend`` runs the *comparison-phase* detection-time experiment
the scramble cells cannot see (``kmw_tau_trend_campaign``): a
``piece_lie`` fault — a lie on a stored piece's claimed minimum
weight, invisible to every 1-round static check — injected after
settling on the same subdivided family at growing tau.  Detection
must wait for the trains to rotate the lying piece past an Ask
comparison, so ``rounds_to_detection`` records the Omega(log n)-style
stretch vs tau (the trend the ROADMAP asked for).  The mode is quick
by construction (small bases, the blow-up comes from tau); combine
with ``--out`` for the JSONL trend series.
"""

from conftest import report

from repro.analysis import format_table
from repro.engine import (CampaignRunner, graph_for, kmw_sweep_campaign,
                          kmw_tau_trend_campaign)

#: CI smoke cells: same shape, toy sizes.
QUICK_CELLS = ((16, 24, 1), (24, 38, 2))


def run_sweep(cells=None, seed=0, workers=1, out=None):
    specs = kmw_sweep_campaign(seed=seed) if cells is None else \
        kmw_sweep_campaign(cells=cells, seed=seed)
    result = CampaignRunner(workers=workers).run(specs)
    rows = []
    for spec, res in zip(specs, result):
        graph = graph_for(spec)
        tau = spec.topology.get("tau")
        rows.append([
            spec.topology.get("base_n"), tau, graph.n,
            spec.fault.kind,
            "-" if res.rounds_to_detection is None
            else res.rounds_to_detection,
            res.max_memory_bits, res.total_memory_bits,
            "ok" if res.ok else str(res.violation),
        ])
    table = format_table(
        ["base n", "tau", "n'", "fault", "detect rounds",
         "max bits/node", "total bits", "verdict"], rows)
    if out:
        written = result.dump_jsonl(out)
        table += f"\nwrote {written} scenario record(s) to {out}"
    return result, rows, table


def run_tau_trend(seed=0, workers=1, out=None):
    """The piece-lie detection-time trend vs tau (quick mode)."""
    specs = kmw_tau_trend_campaign(seed=seed)
    result = CampaignRunner(workers=workers).run(specs)
    rows = []
    for spec, res in zip(specs, result):
        graph = graph_for(spec)
        rows.append([
            spec.topology.get("base_n"), spec.topology.get("tau"),
            graph.n, res.settle_rounds,
            "-" if res.rounds_to_detection is None
            else res.rounds_to_detection,
            "ok" if res.ok else str(res.violation),
        ])
    table = format_table(
        ["base n", "tau", "n'", "settle rounds", "detect rounds",
         "verdict"], rows)
    if out:
        written = result.dump_jsonl(out)
        table += f"\nwrote {written} scenario record(s) to {out}"
    return result, rows, table


def test_kmw_sweep(once):
    result, rows, table = once(run_sweep)
    assert not result.violations(), result.summary()
    biggest = max(r[2] for r in rows)
    assert biggest >= 10_000, (biggest, "the sweep must reach the "
                               "10k+-node scale the columnar backend "
                               "unlocked")
    detections = [r[4] for r in rows if r[3] == "scramble"]
    assert all(isinstance(d, int) and d <= 4 for d in detections), \
        (detections, "scrambled labels must trip the static checks "
         "within a few rounds at every scale")
    body = (table + "\n\ndetection stays O(1) rounds across the tau "
            "sweep (the static checks are 1-round-local even on "
            "lower-bound instances) while per-node memory stays in the "
            "O(log n) regime — the scale itself, >= 10k nodes on the "
            "columnar backend, is what PR 3/PR 4 bought.")
    report("E14", "KMW-style lower-bound sweep (subdivided instances, "
           "columnar)", body)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="toy cells, < 20s (CI smoke)")
    parser.add_argument("--tau-trend", action="store_true",
                        help="piece-lie detection-time trend vs tau "
                             "(comparison-phase faults; quick by "
                             "construction, so it replaces the sweep "
                             "and cannot be combined with --quick)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="dump the sweep as JSONL (joinable by "
                             "`python -m repro.engine diff`)")
    args = parser.parse_args(argv)
    if args.tau_trend and args.quick:
        parser.error("--tau-trend is quick by construction and replaces "
                     "the sweep; drop --quick")
    if args.tau_trend:
        result, rows, table = run_tau_trend(seed=args.seed,
                                            workers=args.workers,
                                            out=args.out)
        print(table)
        detections = [r[4] for r in rows]
        if all(isinstance(d, int) for d in detections):
            print("\npiece-lie detection waits for the trains "
                  f"(rounds per tau: {detections}) — compare the "
                  "scramble cells' O(1) static-check detection.")
    else:
        cells = QUICK_CELLS if args.quick else None
        result, rows, table = run_sweep(cells=cells, seed=args.seed,
                                        workers=args.workers,
                                        out=args.out)
        print(table)
    bad = result.violations()
    if bad:
        print(f"{len(bad)} violation(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
