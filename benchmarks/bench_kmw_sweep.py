"""E14 — KMW-style lower-bound sweep at 10k+ nodes (columnar backend).

The Section-9 reduction builds the instances behind the Omega(log n)
detection-time bound — every base edge subdivided into a ``2 tau + 2``
path ("A Breezing Proof of the KMW Bound" treats exactly this kind of
local-model sweep as one bulk round; see PAPERS.md).  PR 3's columnar
store made the 10k+-node scale memory-feasible and PR 4's
bulk-activation plane makes the per-node static-check sweep a batched
column pass; this benchmark wires the sweep into the campaign engine
(:func:`repro.engine.kmw_sweep_campaign`) so it emits JSONL joinable by
``python -m repro.engine diff`` across commits.

Per subdivided instance (growing tau, largest cell > 10k nodes):

* **completeness** — honest labels, quiet rounds, per-node memory-bit
  accounting (the O(log n)-bits story must survive the blow-up);
* **detection** — two scrambled nodes, settle-free: the 1-round static
  checks must land the alarm within a couple of rounds regardless of
  the instance size (detection time is local even on lower-bound
  instances; only the *comparison* bound stretches with tau).

``--quick`` shrinks the cells for CI smoke (< 20 s); ``--out`` dumps
the records as JSONL.

``--xl`` (manual only, ~30-40 min of wall time — dominated by building
and labelling the instances, not by the rounds — never CI) pushes the
same sweep to ~50k and 100k+ nodes on ``storage="numpy"`` — the scale
the PR 7 vector tier unlocks: whole-instance masked-ndarray sweeps
keep the per-round cost sane where the scalar per-row replay would
crawl.
Per-cell peak-RSS rows ride along (``ru_maxrss``; tracemalloc is too
slow to leave on at 100k), and ``--out`` appends one ``xl-meta`` JSONL
line per cell with the RSS/wall samples after the scenario records.

``--tau-trend`` runs the *comparison-phase* detection-time experiment
the scramble cells cannot see (``kmw_tau_trend_campaign``): a
``piece_lie`` fault — a lie on a stored piece's claimed minimum
weight, invisible to every 1-round static check — injected after
settling on the same subdivided family at growing tau.  Detection
must wait for the trains to rotate the lying piece past an Ask
comparison, so ``rounds_to_detection`` records the Omega(log n)-style
stretch vs tau (the trend the ROADMAP asked for).  The mode is quick
by construction (small bases, the blow-up comes from tau); combine
with ``--out`` for the JSONL trend series, ``--quick`` for the CI
subset of cells.

``--tau-trend --warm-cache DIR`` exercises the settle-state cache on
its headline workload: a populate-only cold pass (every cell pays the
full settle) followed by a warm pass restoring each cell's settled
network from DIR.  The run asserts the warm pass actually hit from the
second cell on, that both passes agree on every deterministic field,
and that the cold pass executed >= 3x the settle rounds of the warm
one — the honest measure, computed from the per-scenario
``settle_rounds - settle_rounds_saved`` recorded in the JSONL.
"""

from conftest import report

from repro.analysis import format_table
from repro.engine import (CampaignRunner, WarmCache, graph_for,
                          kmw_sweep_campaign, kmw_tau_trend_campaign)
from repro.engine.campaigns import KMW_TAU_TREND_CELLS

#: CI smoke cells: same shape, toy sizes.
QUICK_CELLS = ((16, 24, 1), (24, 38, 2))

#: XL cells for ``--xl`` (manual only, never CI): the subdivided
#: family pushed to the scale the numpy vector tier unlocks — the
#: second cell crosses 100k nodes (1600 base nodes, 4999 base edges,
#: tau=10 -> 2 tau = 20 subdivision nodes per edge -> 101,580 nodes).
XL_CELLS = ((800, 1600, 10), (1600, 3400, 10))


def run_sweep(cells=None, seed=0, workers=1, out=None, manifest=None,
              resume=False):
    specs = kmw_sweep_campaign(seed=seed) if cells is None else \
        kmw_sweep_campaign(cells=cells, seed=seed)
    result = CampaignRunner(workers=workers, manifest=manifest,
                            resume=resume).run(specs)
    rows = []
    for spec, res in zip(specs, result):
        graph = graph_for(spec)
        tau = spec.topology.get("tau")
        rows.append([
            spec.topology.get("base_n"), tau, graph.n,
            spec.fault.kind,
            "-" if res.rounds_to_detection is None
            else res.rounds_to_detection,
            res.max_memory_bits, res.total_memory_bits,
            "ok" if res.ok else str(res.violation),
        ])
    table = format_table(
        ["base n", "tau", "n'", "fault", "detect rounds",
         "max bits/node", "total bits", "verdict"], rows)
    if out:
        written = result.dump_jsonl(out)
        table += f"\nwrote {written} scenario record(s) to {out}"
    return result, rows, table


def run_tau_trend(seed=0, workers=1, out=None, warm_cache=None,
                  quick=False):
    """The piece-lie detection-time trend vs tau.

    With ``warm_cache`` the trend runs twice over the same cache
    directory — a populate-only cold pass, then a warm pass — and
    asserts the cache's contract: hits from the second cell on,
    deterministic fields identical across passes, and >= 3x fewer
    settle rounds executed warm than cold."""
    cells = KMW_TAU_TREND_CELLS[:2] if quick else KMW_TAU_TREND_CELLS
    specs = kmw_tau_trend_campaign(cells=cells, seed=seed)
    warm_line = None
    if warm_cache is None:
        result = CampaignRunner(workers=workers).run(specs)
    else:
        cold = CampaignRunner(
            workers=workers,
            warm_cache=WarmCache(warm_cache, restore=False)).run(specs)
        result = CampaignRunner(workers=workers,
                                warm_cache=warm_cache).run(specs)
        executed = lambda r: r.settle_rounds - r.settle_rounds_saved
        cold_rounds = sum(executed(r) for r in cold)
        warm_rounds = sum(executed(r) for r in result)
        hits = sum(1 for r in result if r.cache_hit)
        assert all(r.cache_hit is True for r in result[1:]), \
            "every cell from the second on must restore from the cache"
        for a, b in zip(cold, result):
            assert (a.detected, a.settle_rounds, a.rounds_to_detection,
                    a.max_memory_bits, a.total_memory_bits,
                    a.activations) == \
                (b.detected, b.settle_rounds, b.rounds_to_detection,
                 b.max_memory_bits, b.total_memory_bits,
                 b.activations), \
                (a.spec.key, "warm pass diverged from cold pass")
        assert cold_rounds >= 3 * max(warm_rounds, 1), \
            (cold_rounds, warm_rounds,
             "warm start must save >= 3x settle rounds")
        warm_line = (f"warm start: {hits}/{len(result)} cache hit(s); "
                     f"settle rounds executed cold={cold_rounds} "
                     f"warm={warm_rounds} "
                     f"({cold_rounds / max(warm_rounds, 1):.0f}x saved)")
    rows = []
    for spec, res in zip(specs, result):
        graph = graph_for(spec)
        rows.append([
            spec.topology.get("base_n"), spec.topology.get("tau"),
            graph.n, res.settle_rounds,
            "-" if res.rounds_to_detection is None
            else res.rounds_to_detection,
            "ok" if res.ok else str(res.violation),
        ])
    table = format_table(
        ["base n", "tau", "n'", "settle rounds", "detect rounds",
         "verdict"], rows)
    if warm_line:
        table += "\n" + warm_line
    if out:
        written = result.dump_jsonl(out)
        table += f"\nwrote {written} scenario record(s) to {out}"
    return result, rows, table


def run_xl(seed=0, out=None):
    """The ``--xl`` sweep: the subdivided family at 50k and 100k+
    nodes on ``storage="numpy"`` — the scale target of the vector
    tier.  Each cell runs inline (one spec at a time) so the
    peak-memory rows are per-cell: process peak RSS sampled after each
    scenario (``ru_maxrss`` — cheap enough to leave on at 100k, unlike
    tracemalloc), plus the protocol's own per-node bit accounting from
    the scenario records.  ``--out`` dumps the scenario JSONL followed
    by one ``xl-meta`` line per cell carrying the RSS samples (the
    differ never joins XL dumps; the meta lines are artifact-only)."""
    import json
    import resource
    import time

    specs = kmw_sweep_campaign(cells=XL_CELLS, seed=seed,
                               storage="numpy", rounds=3,
                               max_rounds=40)
    rows, results, meta = [], [], []
    for spec in specs:
        start = time.perf_counter()
        result = CampaignRunner(workers=1).run([spec])
        wall = time.perf_counter() - start
        res = result.results[0]
        results.append(res)
        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        graph = graph_for(spec)
        rows.append([
            spec.topology.get("base_n"), spec.topology.get("tau"),
            graph.n, spec.fault.kind,
            "-" if res.rounds_to_detection is None
            else res.rounds_to_detection,
            res.max_memory_bits, f"{peak_kb / 1024:.0f}",
            f"{wall:.1f}", "ok" if res.ok else str(res.violation),
        ])
        meta.append({"key": "xl-meta/" + spec.key, "n": graph.n,
                     "peak_rss_kb": peak_kb, "wall_time": wall})
    table = format_table(
        ["base n", "tau", "n'", "fault", "detect rounds",
         "max bits/node", "peak RSS MB", "wall s", "verdict"], rows)
    if out:
        from repro.engine.runner import dump_jsonl
        written = dump_jsonl(results, out)
        with open(out, "a") as fh:
            for m in meta:
                fh.write(json.dumps(m, sort_keys=True) + "\n")
        table += (f"\nwrote {written} scenario record(s) + "
                  f"{len(meta)} xl-meta line(s) to {out}")
    bad = [r for r in results if not r.ok]
    return bad, rows, table


def test_kmw_sweep(once):
    result, rows, table = once(run_sweep)
    assert not result.violations(), result.summary()
    biggest = max(r[2] for r in rows)
    assert biggest >= 10_000, (biggest, "the sweep must reach the "
                               "10k+-node scale the columnar backend "
                               "unlocked")
    detections = [r[4] for r in rows if r[3] == "scramble"]
    assert all(isinstance(d, int) and d <= 4 for d in detections), \
        (detections, "scrambled labels must trip the static checks "
         "within a few rounds at every scale")
    body = (table + "\n\ndetection stays O(1) rounds across the tau "
            "sweep (the static checks are 1-round-local even on "
            "lower-bound instances) while per-node memory stays in the "
            "O(log n) regime — the scale itself, >= 10k nodes on the "
            "columnar backend, is what PR 3/PR 4 bought.")
    report("E14", "KMW-style lower-bound sweep (subdivided instances, "
           "columnar)", body)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="toy cells, < 20s (CI smoke); with "
                             "--tau-trend: the first two trend cells")
    parser.add_argument("--tau-trend", action="store_true",
                        help="piece-lie detection-time trend vs tau "
                             "(comparison-phase faults; replaces the "
                             "sweep)")
    parser.add_argument("--xl", action="store_true",
                        help="50k/100k-node subdivided cells on the "
                             "numpy vector tier, with per-cell peak-RSS "
                             "rows (manual only — ~30-40 min of wall "
                             "time, never part of CI)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="dump the sweep as JSONL (joinable by "
                             "`python -m repro.engine diff`)")
    parser.add_argument("--warm-cache", metavar="DIR", default=None,
                        help="with --tau-trend: run a populate-only "
                             "cold pass then a warm-started pass over "
                             "this settle-snapshot cache directory, and "
                             "assert the >= 3x settle-round saving")
    parser.add_argument("--manifest", metavar="DIR", default=None,
                        help="sweep mode: stream results to a resumable "
                             "manifest so a killed multi-hour sweep "
                             "reruns only its missing cells")
    parser.add_argument("--resume", action="store_true",
                        help="with --manifest: rerun only the cells "
                             "missing from the manifest index")
    args = parser.parse_args(argv)
    if args.warm_cache and not args.tau_trend:
        parser.error("--warm-cache applies to --tau-trend (the sweep's "
                     "detection cells are settle-free)")
    if args.resume and not args.manifest:
        parser.error("--resume requires --manifest")
    if args.manifest and (args.tau_trend or args.xl):
        parser.error("--manifest applies to the sweep mode (tau-trend "
                     "and xl run cell-by-cell already)")
    if args.xl and (args.quick or args.tau_trend):
        parser.error("--xl is a standalone manual mode")
    if args.xl:
        bad, rows, table = run_xl(seed=args.seed, out=args.out)
        print(table)
        biggest = max(r[2] for r in rows)
        print(f"\nlargest instance: {biggest} nodes on the numpy "
              "vector tier")
        if bad:
            print(f"{len(bad)} violation(s)")
        return 1 if bad else 0
    if args.tau_trend:
        result, rows, table = run_tau_trend(seed=args.seed,
                                            workers=args.workers,
                                            out=args.out,
                                            warm_cache=args.warm_cache,
                                            quick=args.quick)
        print(table)
        detections = [r[4] for r in rows]
        if all(isinstance(d, int) for d in detections):
            print("\npiece-lie detection waits for the trains "
                  f"(rounds per tau: {detections}) — compare the "
                  "scramble cells' O(1) static-check detection.")
    else:
        cells = QUICK_CELLS if args.quick else None
        result, rows, table = run_sweep(cells=cells, seed=args.seed,
                                        workers=args.workers,
                                        out=args.out,
                                        manifest=args.manifest,
                                        resume=args.resume)
        print(table)
    bad = result.violations()
    if bad:
        print(f"{len(bad)} violation(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
