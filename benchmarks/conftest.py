"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md), prints it, and writes it under
``benchmarks/out/`` so EXPERIMENTS.md can quote the artifacts.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def report(experiment_id: str, title: str, body: str) -> str:
    """Print and persist one benchmark report; returns the text."""
    os.makedirs(OUT_DIR, exist_ok=True)
    text = f"== {experiment_id}: {title} ==\n{body.rstrip()}\n"
    path = os.path.join(OUT_DIR, f"{experiment_id}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print("\n" + text)
    return text


# the canonical recipe lives next to the other adversaries; benches
# import it from here for historical reasons
from repro.verification.adversary import lie_about_used_piece  # noqa: F401,E402


@pytest.fixture
def once(benchmark):
    """Benchmark a callable exactly once (simulations are long-running
    and deterministic; statistical repetition adds nothing)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
