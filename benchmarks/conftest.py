"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md), prints it, and writes it under
``benchmarks/out/`` so EXPERIMENTS.md can quote the artifacts.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def report(experiment_id: str, title: str, body: str) -> str:
    """Print and persist one benchmark report; returns the text."""
    os.makedirs(OUT_DIR, exist_ok=True)
    text = f"== {experiment_id}: {title} ==\n{body.rstrip()}\n"
    path = os.path.join(OUT_DIR, f"{experiment_id}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    print("\n" + text)
    return text


def lie_about_used_piece(net, inj):
    """Increase the claimed minimum-outgoing weight of a stored piece
    whose fragment is guaranteed to be observed.

    Bottom-partition pieces describe fragments contained in the storing
    part, so their members rotate past the lie every cycle; a corrupted
    *top* piece can be dead data when its fragment does not intersect the
    storing part (the parts store whole ancestor chains — see
    Section 6.3.7), which would be correctly accepted.
    """
    for reg in ("pc_bot", "pc_top"):
        for v in net.graph.nodes():
            pieces = net.registers[v].get(reg) or ()
            if pieces:
                z, lvl, w = pieces[0]
                inj.corrupt_register(
                    v, reg, ((z, lvl, (w or 0) + 1),) + tuple(pieces[1:]))
                return
    raise AssertionError("no stored piece found")


@pytest.fixture
def once(benchmark):
    """Benchmark a callable exactly once (simulations are long-running
    and deterministic; statistical repetition adds nothing)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
