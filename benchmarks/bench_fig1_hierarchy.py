"""F1 — Figure 1: the fragment hierarchy of the 18-node paper example.

Regenerates the hierarchy drawing data: every active fragment per level,
its root, and its candidate (selected outgoing) edge.

Engine-shaped since PR 4: the instance comes from
:func:`repro.engine.paper_example_campaign` and the hierarchy is
derived from the exact same graph via ``graph_for``; ``--out`` emits
the scenario records as JSONL joinable by
``python -m repro.engine diff`` across commits.
"""

from conftest import report

from repro.engine import CampaignRunner, graph_for, paper_example_campaign
from repro.graphs.paper_example import ID_TO_NAME
from repro.mst import run_sync_mst


def render_hierarchy(graph) -> str:
    result = run_sync_mst(graph)
    lines = []
    for level in range(result.hierarchy.height, -1, -1):
        frags = sorted(result.hierarchy.by_level(level),
                       key=lambda f: ID_TO_NAME[f.root])
        cells = []
        for f in frags:
            names = "".join(sorted(ID_TO_NAME[v] for v in f.nodes))
            if f.candidate_edge is None:
                cells.append("{%s}" % names)
            else:
                u, x = f.candidate_edge
                cells.append("{%s} --%s--> %s" % (
                    names, f.candidate_weight, ID_TO_NAME[x]))
        lines.append(f"level {level}: " + "   ".join(cells))
    lines.append("")
    lines.append(f"hierarchy height ell = {result.hierarchy.height} "
                 f"(paper: 4); construction rounds = {result.rounds}")
    return "\n".join(lines)


def run_campaign(seed=0, workers=1, out=None):
    specs = paper_example_campaign(seed=seed)
    result = CampaignRunner(workers=workers).run(specs)
    body = render_hierarchy(graph_for(specs[0]))
    lines = [body, ""]
    for spec, res in zip(specs, result):
        lines.append(f"engine scenario {spec.key}: "
                     f"{'ok' if res.ok else res.violation}")
    if out:
        written = result.dump_jsonl(out)
        lines.append(f"wrote {written} scenario record(s) to {out}")
    return result, "\n".join(lines)


def test_fig1_hierarchy(once):
    result, body = once(run_campaign)
    assert not result.violations(), result.summary()
    assert "level 4: {abcdefghijklmnopqr}" in body
    assert "ell = 4" in body
    report("F1", "Figure 1 — hierarchy of the example tree", body)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="dump the engine sweep as JSONL (joinable "
                             "by `python -m repro.engine diff`)")
    args = parser.parse_args(argv)
    result, body = run_campaign(seed=args.seed, workers=args.workers,
                                out=args.out)
    print(body)
    return 1 if result.violations() else 0


if __name__ == "__main__":
    raise SystemExit(main())
