"""F1 — Figure 1: the fragment hierarchy of the 18-node paper example.

Regenerates the hierarchy drawing data: every active fragment per level,
its root, and its candidate (selected outgoing) edge.
"""

from conftest import report

from repro.graphs.paper_example import ID_TO_NAME, build_paper_graph
from repro.mst import run_sync_mst


def render_hierarchy() -> str:
    result = run_sync_mst(build_paper_graph())
    lines = []
    for level in range(result.hierarchy.height, -1, -1):
        frags = sorted(result.hierarchy.by_level(level),
                       key=lambda f: ID_TO_NAME[f.root])
        cells = []
        for f in frags:
            names = "".join(sorted(ID_TO_NAME[v] for v in f.nodes))
            if f.candidate_edge is None:
                cells.append("{%s}" % names)
            else:
                u, x = f.candidate_edge
                cells.append("{%s} --%s--> %s" % (
                    names, f.candidate_weight, ID_TO_NAME[x]))
        lines.append(f"level {level}: " + "   ".join(cells))
    lines.append("")
    lines.append(f"hierarchy height ell = {result.hierarchy.height} "
                 f"(paper: 4); construction rounds = {result.rounds}")
    return "\n".join(lines)


def test_fig1_hierarchy(once):
    body = once(render_hierarchy)
    assert "level 4: {abcdefghijklmnopqr}" in body
    assert "ell = 4" in body
    report("F1", "Figure 1 — hierarchy of the example tree", body)
