"""F2/F3 — Figures 2 and 3: fragment classification and the partitions.

Regenerates, for the paper example and engine-driven instances: the top
fragments (T_Top), the red/blue/large/green classification, partition
P'' and partition Top (Lemma 6.4), and partition Bottom (Lemma 6.5).

Engine-shaped since PR 3: the sweep instances come from
:func:`repro.engine.partition_census_campaign` and run through
``run_scenario`` (honest labels, a few quiet rounds, memory accounting),
so ``--out partitions.jsonl`` emits records joinable by
``python -m repro.engine diff`` across commits; the partition tables are
derived from the exact same graph instances via ``graph_for``.
"""

from conftest import report

from repro.analysis import format_table
from repro.engine import (CampaignRunner, graph_for,
                          partition_census_campaign)
from repro.graphs.paper_example import ID_TO_NAME, build_paper_graph
from repro.mst import run_sync_mst
from repro.partition import build_partitions, classify_fragments

def _names(nodes, id_to_name=None):
    if id_to_name:
        return "".join(sorted(id_to_name[v] for v in nodes))
    return "{%d nodes}" % len(nodes)


def render(graph, id_to_name=None) -> str:
    hierarchy = run_sync_mst(graph).hierarchy
    layout = build_partitions(hierarchy)
    classes = layout.classes
    lines = [f"n = {graph.n}, log-threshold = {classes.threshold}"]
    for kind, frags in (("red", classes.red), ("large", classes.large),
                        ("blue", classes.blue), ("green", classes.green)):
        cells = sorted(
            f"{_names(f.nodes, id_to_name)}@L{f.level}" for f in frags)
        lines.append(f"{kind:>6}: " + (" ".join(cells) if cells else "-"))
    rows = []
    for part in layout.top_parts:
        rows.append(["Top", part.root, part.size, part.height,
                     len(part.pieces)])
    for part in layout.bottom_parts:
        rows.append(["Bottom", part.root, part.size, part.height,
                     len(part.pieces)])
    lines.append("")
    lines.append(format_table(
        ["partition", "part root", "size", "height", "pieces"], rows))
    lines.append("")
    lines.append(
        "Lemma 6.4: every Top part has size >= log n and height O(log n); "
        "Lemma 6.5: every Bottom part has < log n nodes and <= 2|P| pieces")
    return "\n".join(lines)


def run_campaign(sizes=(32, 96), seed=0, workers=1, out=None):
    """The engine sweep plus per-instance partition renderings."""
    specs = partition_census_campaign(sizes=sizes, seed=seed)
    result = CampaignRunner(workers=workers).run(specs)
    sections = []
    for spec, res in zip(specs, result):
        graph = graph_for(spec)
        sections.append(
            f"engine instance {spec.key} (n = {graph.n}, "
            f"max memory {res.max_memory_bits} bits, "
            f"{'ok' if res.ok else res.violation}):\n" + render(graph))
    if out:
        written = result.dump_jsonl(out)
        sections.append(f"wrote {written} scenario record(s) to {out}")
    return result, "\n\n".join(sections)


def test_fig2_fig3_partitions(once):
    paper = render(build_paper_graph(), ID_TO_NAME)
    result, engine_body = once(run_campaign)
    assert not result.violations(), "partition census must run clean"
    body = "paper example (Figures 2/3 topology):\n" + paper + \
        "\n\n" + engine_body
    assert "red" in body and "Top" in body
    report("F2_F3", "Figures 2-3 — fragment classes and partitions", body)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--sizes", type=int, nargs="+", default=[32, 96])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="dump the engine sweep as JSONL (joinable "
                             "by `python -m repro.engine diff`)")
    args = parser.parse_args(argv)
    result, body = run_campaign(sizes=tuple(args.sizes), seed=args.seed,
                                workers=args.workers, out=args.out)
    print("paper example (Figures 2/3 topology):\n"
          + render(build_paper_graph(), ID_TO_NAME) + "\n\n" + body)
    return 1 if result.violations() else 0


if __name__ == "__main__":
    raise SystemExit(main())
