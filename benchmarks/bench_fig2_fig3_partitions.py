"""F2/F3 — Figures 2 and 3: fragment classification and the partitions.

Regenerates, for the paper example and a larger instance: the top
fragments (T_Top), the red/blue/large/green classification, partition
P'' and partition Top (Lemma 6.4), and partition Bottom (Lemma 6.5).
"""

from conftest import report

from repro.analysis import format_table
from repro.graphs.generators import random_connected_graph
from repro.graphs.paper_example import ID_TO_NAME, build_paper_graph
from repro.mst import run_sync_mst
from repro.partition import build_partitions, classify_fragments

def _names(nodes, id_to_name=None):
    if id_to_name:
        return "".join(sorted(id_to_name[v] for v in nodes))
    return "{%d nodes}" % len(nodes)


def render(graph, id_to_name=None) -> str:
    hierarchy = run_sync_mst(graph).hierarchy
    layout = build_partitions(hierarchy)
    classes = layout.classes
    lines = [f"n = {graph.n}, log-threshold = {classes.threshold}"]
    for kind, frags in (("red", classes.red), ("large", classes.large),
                        ("blue", classes.blue), ("green", classes.green)):
        cells = sorted(
            f"{_names(f.nodes, id_to_name)}@L{f.level}" for f in frags)
        lines.append(f"{kind:>6}: " + (" ".join(cells) if cells else "-"))
    rows = []
    for part in layout.top_parts:
        rows.append(["Top", part.root, part.size, part.height,
                     len(part.pieces)])
    for part in layout.bottom_parts:
        rows.append(["Bottom", part.root, part.size, part.height,
                     len(part.pieces)])
    lines.append("")
    lines.append(format_table(
        ["partition", "part root", "size", "height", "pieces"], rows))
    lines.append("")
    lines.append(
        "Lemma 6.4: every Top part has size >= log n and height O(log n); "
        "Lemma 6.5: every Bottom part has < log n nodes and <= 2|P| pieces")
    return "\n".join(lines)


def test_fig2_fig3_partitions(once):
    paper = render(build_paper_graph(), ID_TO_NAME)
    big = once(render, random_connected_graph(96, 170, seed=5))
    body = "paper example (Figures 2/3 topology):\n" + paper + \
        "\n\nlarger instance (n = 96):\n" + big
    assert "red" in body and "Top" in body
    report("F2_F3", "Figures 2-3 — fragment classes and partitions", body)
