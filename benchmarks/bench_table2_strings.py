"""T2 — Table 2: Roots / EndP / Parents / Or-EndP strings of Figure 1.

Regenerates the exact table from the paper; every entry is asserted
against the hard-coded original.

Engine-shaped since PR 4: the instance comes from
:func:`repro.engine.paper_example_campaign` (the paper example as
completeness scenarios under all three label formats) and the strings
are derived from the exact same graph via ``graph_for``, so
``--out table2.jsonl`` emits records joinable by
``python -m repro.engine diff`` across commits — the label-table
artifact rides the same trend series as every other campaign.
"""

from conftest import report

from repro.engine import CampaignRunner, graph_for, paper_example_campaign
from repro.graphs.paper_example import (ID_TO_NAME, NAME_TO_ID, NODE_NAMES,
                                        TABLE2_ENDP, TABLE2_OR_ENDP,
                                        TABLE2_PARENTS, TABLE2_ROOTS)
from repro.labels.strings import compute_node_strings, format_table2
from repro.mst import run_sync_mst


def run_campaign(seed=0, workers=1, out=None):
    """The engine sweep plus the Table-2 derivation on its instance."""
    specs = paper_example_campaign(seed=seed)
    result = CampaignRunner(workers=workers).run(specs)
    graph = graph_for(specs[0])
    strings = compute_node_strings(run_sync_mst(graph).hierarchy)
    table = format_table2(strings, names=ID_TO_NAME)
    lines = [table, ""]
    for spec, res in zip(specs, result):
        lines.append(
            f"engine scenario {spec.key}: "
            f"{'ok' if res.ok else res.violation}, "
            f"max memory {res.max_memory_bits} bits")
    if out:
        written = result.dump_jsonl(out)
        lines.append(f"wrote {written} scenario record(s) to {out}")
    return result, strings, "\n".join(lines)


def test_table2_strings(once):
    result, strings, body = once(run_campaign)
    assert not result.violations(), result.summary()
    mismatches = []
    for name in NODE_NAMES:
        s = strings[NAME_TO_ID[name]]
        if s.roots != TABLE2_ROOTS[name]:
            mismatches.append((name, "Roots"))
        if s.endp_display() != TABLE2_ENDP[name]:
            mismatches.append((name, "EndP"))
        if s.parents != TABLE2_PARENTS[name]:
            mismatches.append((name, "Parents"))
        if s.orendp_display() != TABLE2_OR_ENDP[name]:
            mismatches.append((name, "Or-EndP"))
    assert not mismatches, mismatches
    footer = ("\nall 18 x 4 strings match Table 2 of the paper exactly "
              "(72/72 rows); the same instance runs clean through the "
              "engine under all three label formats")
    report("T2", "Table 2 — label strings of the example", body + footer)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="dump the engine sweep as JSONL (joinable "
                             "by `python -m repro.engine diff`)")
    args = parser.parse_args(argv)
    result, _strings, body = run_campaign(seed=args.seed,
                                          workers=args.workers,
                                          out=args.out)
    print(body)
    return 1 if result.violations() else 0


if __name__ == "__main__":
    raise SystemExit(main())
