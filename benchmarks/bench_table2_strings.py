"""T2 — Table 2: Roots / EndP / Parents / Or-EndP strings of Figure 1.

Regenerates the exact table from the paper; every entry is asserted
against the hard-coded original.
"""

from conftest import report

from repro.graphs.paper_example import (ID_TO_NAME, NAME_TO_ID, NODE_NAMES,
                                        TABLE2_ENDP, TABLE2_OR_ENDP,
                                        TABLE2_PARENTS, TABLE2_ROOTS,
                                        build_paper_graph)
from repro.labels.strings import compute_node_strings, format_table2
from repro.mst import run_sync_mst


def regenerate():
    result = run_sync_mst(build_paper_graph())
    strings = compute_node_strings(result.hierarchy)
    return strings, format_table2(strings, names=ID_TO_NAME)


def test_table2_strings(once):
    strings, table = once(regenerate)
    mismatches = []
    for name in NODE_NAMES:
        s = strings[NAME_TO_ID[name]]
        if s.roots != TABLE2_ROOTS[name]:
            mismatches.append((name, "Roots"))
        if s.endp_display() != TABLE2_ENDP[name]:
            mismatches.append((name, "EndP"))
        if s.parents != TABLE2_PARENTS[name]:
            mismatches.append((name, "Parents"))
        if s.orendp_display() != TABLE2_OR_ENDP[name]:
            mismatches.append((name, "Or-EndP"))
    assert not mismatches, mismatches
    footer = ("\nall 18 x 4 strings match Table 2 of the paper exactly "
              "(72/72 rows)")
    report("T2", "Table 2 — label strings of the example", table + footer)
