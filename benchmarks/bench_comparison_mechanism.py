"""E10 — Lemmas 7.5/7.6: the comparison-mechanism variants.

Same workload, three mechanisms:

* synchronous window sampling (O(log^2 n) detection),
* the efficient Want handshake (O(Delta log^3 n)),
* the serialized "simple" handshake (O(Delta^2 log^3 n)) — the ablation
  the paper describes before its efficient mechanism.

Measured: asynchronous rounds to detect the same minimality lie on a
high-degree workload, where the Delta-scaling separates the variants.
"""

from conftest import report

from repro.analysis import format_table
from repro.graphs.generators import bounded_degree_graph
from repro.labels import registers as R
from repro.sim import PermutationDaemon
from repro.trains.comparison import (MODE_SYNC_WINDOW, MODE_WANT,
                                     MODE_WANT_SIMPLE)
from repro.verification import run_detection

N, DEGREE = 40, 10


from conftest import lie_about_used_piece as lie_about_piece


def measure():
    g = bounded_degree_graph(N, DEGREE, seed=16)
    rows = []
    cases = [
        ("sync-window (Lemma 7.5)", True, MODE_SYNC_WINDOW),
        ("want (Lemma 7.6)", False, MODE_WANT),
        ("want-simple (Delta^2 ablation)", False, MODE_WANT_SIMPLE),
    ]
    for name, sync, mode in cases:
        times = []
        for seed in (1, 2, 3):
            daemon = None if sync else PermutationDaemon(seed=seed + 4)
            res = run_detection(g, lie_about_piece, synchronous=sync,
                                comparison_mode=mode, daemon=daemon,
                                max_rounds=400_000, static_every=4,
                                seed=seed)
            assert res.detected, (name, seed)
            times.append(res.rounds_to_detection)
        rows.append([name, "sync" if sync else "async",
                     round(sum(times) / len(times), 1),
                     max(times)])
    return rows


def test_comparison_mechanisms(once):
    rows = once(measure)
    table = format_table(
        ["mechanism", "scheduler", "mean detection rounds", "worst"], rows)
    body = (f"workload: n = {N}, Delta = {DEGREE}, 3 trials each\n" + table +
            "\n\npaper shape: the want mechanism pays a Delta factor over "
            "the synchronous window and the serialized variant pays "
            "Delta^2; single-fault rounds are noisy, so means are "
            "reported and only the want <= want-simple ordering is "
            "asserted")
    _sync_mean, want_mean, simple_mean = (r[2] for r in rows)
    assert want_mean <= simple_mean * 1.5 + 16
    report("E10", "comparison mechanisms (Lemmas 7.5/7.6)", body)
