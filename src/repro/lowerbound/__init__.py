"""Section 9: the edge-subdivision transformation G -> G' and the
Lemma 9.1 reduction behind the Omega(log n) verification-time bound."""

from .transform import (ReductionBound, SubdividedGraph, lemma_9_1,
                        lift_tree, minimum_tau_for_memory, subdivide,
                        transformation_preserves_mst)

__all__ = [
    "ReductionBound", "SubdividedGraph", "lemma_9_1", "lift_tree",
    "minimum_tau_for_memory", "subdivide", "transformation_preserves_mst",
]
