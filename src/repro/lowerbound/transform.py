"""The Section-9 lower bound machinery (Figures 10 and 11).

The paper proves that any MST proof labeling scheme with O(log n)-bit
memory needs Omega(log n) detection time, by reduction to the
Omega(log^2 n) *label-size* lower bound for 1-round schemes [54]:

* every edge (u, v) of a base graph G is replaced by a path of
  ``2 tau + 2`` nodes; the far edge of the path carries the original
  weight, the rest weight 1 (Figure 10);
* the components of the path nodes are oriented so that the subdivided
  H(G') represents a spanning tree iff H(G) does, and it is an MST of G'
  iff H(G) is an MST of G (Figure 11);
* a tau-time scheme on G' with memory ``s`` yields a 1-round scheme on G
  with labels O(tau * s) (Lemma 9.1): a node of G can simulate the
  verifier of every node within distance tau in G' from the labels packed
  onto its incident paths.

This module implements the transformation, its correctness predicate
(MST preserved in both directions), and the label-packing arithmetic of
the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..graphs.mst_reference import is_mst, kruskal_mst
from ..graphs.weighted import Edge, GraphError, NodeId, WeightedGraph, edge_key


@dataclass
class SubdividedGraph:
    """G' plus the bookkeeping to map back and forth."""

    graph: WeightedGraph
    tau: int
    #: base node -> its node id in G'
    base_node: Dict[NodeId, NodeId]
    #: base edge -> the path node ids (x1 .. x_{2 tau + 2}), endpoints incl.
    path_nodes: Dict[Edge, List[NodeId]]
    #: base edge -> the G' edge carrying the original weight
    weight_edge: Dict[Edge, Edge]


def subdivide(graph: WeightedGraph, tau: int,
              tree_edges: Optional[Set[Edge]] = None) -> SubdividedGraph:
    """Replace every edge of ``graph`` by a ``2 tau + 2``-node path.

    Weight placement: for a candidate-tree edge the original weight sits
    on the path's last edge (Figure 10); for a non-tree edge it sits on
    the *middle* link — the one H(G') excludes.  (The paper's text puts
    every original weight on the last edge; for non-tree edges the
    claimed equivalence "H(G') is an MST of G' iff H(G) is an MST of G"
    requires the weight on the excluded middle link, since the excluded
    edge must be the heaviest of its fundamental cycle.  We implement the
    equivalence-preserving placement and record the discrepancy in
    EXPERIMENTS.md.)  With ``tree_edges=None`` every path keeps the
    last-edge placement.
    """
    if tau < 1:
        raise GraphError("tau must be >= 1")
    tset: Set[Edge] = set(tree_edges) if tree_edges is not None else set()
    place_middle = tree_edges is not None
    out = WeightedGraph()
    base_node: Dict[NodeId, NodeId] = {}
    next_id = 0
    for v in graph.nodes():
        base_node[v] = next_id
        out.add_node(next_id)
        next_id += 1

    path_nodes: Dict[Edge, List[NodeId]] = {}
    weight_edge: Dict[Edge, Edge] = {}
    for u, v, w in sorted(graph.edges()):
        lo, hi = (u, v) if u < v else (v, u)
        chain = [base_node[lo]]
        for _ in range(2 * tau):
            chain.append(next_id)
            out.add_node(next_id)
            next_id += 1
        chain.append(base_node[hi])
        links = list(zip(chain, chain[1:]))
        base = edge_key(u, v)
        if place_middle and base not in tset:
            weight_pos = len(links) // 2       # the excluded middle link
        else:
            weight_pos = len(links) - 1        # Figure 10's last edge
        for i, (a, b) in enumerate(links):
            out.add_edge(a, b, w if i == weight_pos else 1)
            if i == weight_pos:
                weight_edge[base] = edge_key(a, b)
        path_nodes[base] = chain
    return SubdividedGraph(graph=out, tau=tau, base_node=base_node,
                           path_nodes=path_nodes, weight_edge=weight_edge)


def lift_tree(sub: SubdividedGraph, tree_edges: Set[Edge]) -> Set[Edge]:
    """The G' spanning structure H(G') corresponding to H(G).

    For a tree edge the whole path joins the tree; for a non-tree edge
    the path is split in its middle (the two halves hang off the
    endpoints), matching Figure 11's component orientation.
    """
    out: Set[Edge] = set()
    for base_edge, chain in sub.path_nodes.items():
        links = list(zip(chain, chain[1:]))
        if base_edge in tree_edges:
            out.update(edge_key(a, b) for a, b in links)
        else:
            # split between positions tau and tau+1 (the middle link)
            mid = len(links) // 2
            for i, (a, b) in enumerate(links):
                if i != mid:
                    out.add(edge_key(a, b))
    return out


def transformation_preserves_mst(graph: WeightedGraph, tau: int,
                                 tree_edges: Set[Edge]) -> bool:
    """Check the key property: H(G) is an MST of G iff the lifted
    structure plus the split non-tree paths is an MST of G'."""
    sub = subdivide(graph, tau, tree_edges)
    lifted = lift_tree(sub, tree_edges)
    base_is = is_mst(graph, tree_edges)
    lifted_is = is_mst(sub.graph, lifted)
    return base_is == lifted_is


@dataclass
class ReductionBound:
    """The Lemma 9.1 arithmetic for one parameterization."""

    tau: int
    memory_bits: int
    simulated_label_bits: int
    lower_bound_bits: float

    @property
    def consistent(self) -> bool:
        """Whether tau * memory respects the Omega(log^2 n) 1-PLS bound."""
        return self.simulated_label_bits >= self.lower_bound_bits


def lemma_9_1(n: int, tau: int, memory_bits: int,
              constant: float = 0.5) -> ReductionBound:
    """Pack a tau-time scheme's labels into a 1-round scheme's labels.

    A node of G stores the G'-labels of the 2 tau + 1 path nodes toward
    each relevant neighbour: O(tau * memory) bits.  The [54] bound says
    1-round MST labels need at least ``constant * log^2 n`` bits, hence
    ``tau * memory = Omega(log^2 n)`` — with O(log n) memory, tau must be
    Omega(log n): the verification-time lower bound.
    """
    import math

    lg = math.log2(max(2, n))
    simulated = (2 * tau + 1) * memory_bits
    return ReductionBound(tau=tau, memory_bits=memory_bits,
                          simulated_label_bits=simulated,
                          lower_bound_bits=constant * lg * lg)


def minimum_tau_for_memory(n: int, memory_bits: int,
                           constant: float = 0.5) -> int:
    """The smallest tau consistent with the lower bound at this memory."""
    tau = 1
    while not lemma_9_1(n, tau, memory_bits, constant).consistent:
        tau += 1
        if tau > 10 * n:  # pragma: no cover - safety
            break
    return tau
