"""Partitions Top and Bottom, fragment classification, Procedure Merge,
the Multi_Wave primitive, and the DFS distribution of pieces (Section 6)."""

from .classify import (FragmentClasses, bottom_fragments_within,
                       check_red_blue_partition, classify_fragments,
                       top_ancestors_chain)
from .parts import (MergedPart, Part, Piece, build_bottom_parts,
                    merge_procedure, piece_of, split_into_top_parts)
from .multiwave import MultiWaveResult, run_multi_wave
from .distribution import PartitionLayout, build_partitions

__all__ = [
    "FragmentClasses", "bottom_fragments_within", "check_red_blue_partition",
    "classify_fragments", "top_ancestors_chain",
    "MergedPart", "Part", "Piece", "build_bottom_parts", "merge_procedure",
    "piece_of", "split_into_top_parts",
    "MultiWaveResult", "run_multi_wave",
    "PartitionLayout", "build_partitions",
]
