"""The Multi_Wave primitive (Section 6.3.1).

A Multi_Wave performs a Wave&Echo in every fragment of the hierarchy,
level by level: all level-j waves run in parallel (each inside its own
fragment) and level j+1 starts when level j has terminated (Observation
6.6).  The naive implementation — the tree root driving ell+1 consecutive
whole-tree waves — costs Theta(n log n); the pipelined primitive costs
O(n) because the level-j work is bounded by the fragment sizes, which are
below 2^(j+1) (Lemma 4.1, Observation 6.8).

The engine below executes a callback on every fragment in the exact order
the primitive guarantees and returns both time accountings, so benchmark
E8 can regenerate the O(n) vs O(n log n) comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..hierarchy.fragments import Fragment, Hierarchy


@dataclass
class MultiWaveResult:
    """Ideal-time accounting of one Multi_Wave execution."""

    pipelined_time: int     # the primitive of Section 6.3.1 (O(n))
    naive_time: int         # ell+1 consecutive whole-tree waves (O(n log n))
    fragments_visited: int
    levels: int


def run_multi_wave(hierarchy: Hierarchy,
                   on_fragment: Optional[Callable[[Fragment], None]] = None
                   ) -> MultiWaveResult:
    """Execute a Multi_Wave: visit fragments level by level, charging the
    pipelined and the naive time.

    Pipelined accounting (Observations 6.6-6.8): the initial broadcast
    costs the tree height; the level-j stage costs twice the largest
    level-j fragment (its wave plus the freeing wave), and stages run
    consecutively.  Naive accounting: each level costs a whole-tree
    Wave&Echo, 2n per level.
    """
    n = hierarchy.graph.n
    ell = hierarchy.height
    visited = 0
    pipelined = hierarchy.tree.height() + 1  # the root's initial broadcast
    for level in range(ell + 1):
        frags = hierarchy.by_level(level)
        if not frags:
            continue
        for frag in sorted(frags, key=lambda f: f.root):
            if on_fragment is not None:
                on_fragment(frag)
            visited += 1
        pipelined += 2 * max(f.size for f in frags)
    naive = 2 * n * (ell + 1)
    return MultiWaveResult(pipelined_time=pipelined, naive_time=naive,
                           fragments_visited=visited, levels=ell + 1)
