"""Fragment classification (Section 6.1): top/bottom, red/blue/large/green.

* **top** fragments have at least ``log n`` nodes; they form an
  upward-closed subtree T_Top of the hierarchy tree.
* **red** fragments are the leaves of T_Top; **large** ones its internal
  fragments.
* **blue** fragments are the non-top children of large fragments;
  **green** fragments the (necessarily non-top) children of red ones.

Observation 6.1: the red and blue fragments partition the tree's nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..hierarchy.fragments import Fragment, Hierarchy
from ..labels.wellforming import log_threshold


@dataclass
class FragmentClasses:
    """The classification of every fragment of a hierarchy."""

    threshold: int
    top: Set[Fragment] = field(default_factory=set)
    bottom: Set[Fragment] = field(default_factory=set)
    red: Set[Fragment] = field(default_factory=set)
    large: Set[Fragment] = field(default_factory=set)
    blue: Set[Fragment] = field(default_factory=set)
    green: Set[Fragment] = field(default_factory=set)

    def kind(self, fragment: Fragment) -> str:
        return "top" if fragment in self.top else "bottom"


def classify_fragments(hierarchy: Hierarchy) -> FragmentClasses:
    """Classify every fragment of ``hierarchy`` per Section 6.1."""
    n = hierarchy.graph.n
    threshold = log_threshold(n)
    classes = FragmentClasses(threshold=threshold)

    for frag in hierarchy.fragments:
        if frag.size >= threshold:
            classes.top.add(frag)
        else:
            classes.bottom.add(frag)

    for frag in classes.top:
        has_top_child = any(c in classes.top for c in frag.children)
        if has_top_child:
            classes.large.add(frag)
        else:
            classes.red.add(frag)

    for frag in classes.bottom:
        parent = frag.parent
        if parent is None:  # pragma: no cover - T is always top
            continue
        if parent in classes.large:
            classes.blue.add(frag)
        elif parent in classes.red:
            classes.green.add(frag)

    return classes


def check_red_blue_partition(hierarchy: Hierarchy,
                             classes: FragmentClasses) -> bool:
    """Observation 6.1: red + blue fragments partition the node set."""
    seen: Dict[int, int] = {v: 0 for v in hierarchy.graph.nodes()}
    for frag in classes.red | classes.blue:
        for v in frag.nodes:
            seen[v] += 1
    return all(count == 1 for count in seen.values())


def top_ancestors_chain(classes: FragmentClasses,
                        red: Fragment) -> List[Fragment]:
    """``red`` and its (top) ancestors, by increasing level — the fragments
    whose pieces a Top part derived from ``red`` stores (Section 6.3.7)."""
    chain: List[Fragment] = []
    cur = red
    while cur is not None:
        if cur in classes.top:
            chain.append(cur)
        cur = cur.parent
    chain.sort(key=lambda f: f.level)
    return chain


def bottom_fragments_within(classes: FragmentClasses,
                            part_fragment: Fragment) -> List[Fragment]:
    """All bottom fragments contained in a Bottom part (including itself),
    sorted by (level, root) — the Bottom part's piece list (Section 6.3.8)."""
    out = [f for f in classes.bottom
           if f.nodes <= part_fragment.nodes]
    out.sort(key=lambda f: (f.level, f.root))
    return out
