"""Building both partitions and distributing the pieces (Section 6).

:func:`build_partitions` runs the whole Section-6 pipeline:

1. classify fragments (top/bottom, red/blue/large/green);
2. Procedure Merge -> partition P'';
3. split P'' into partition Top (size >= log n, height O(log n));
4. partition Bottom (blue + green fragments);
5. assign each part its piece list — a Top part stores I(F) for every top
   ancestor of its red fragment (Claim 6.3 makes this sufficient), a
   Bottom part stores I(F) for every bottom fragment inside it;
6. lay the pieces out in pairs along the DFS preorder of each part
   (the initialization of the trains, Section 6.2).

The result maps every node to its two parts, its stored piece pair(s),
and its top/bottom level delimiter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graphs.spanning import RootedTree
from ..graphs.weighted import GraphError, NodeId
from ..hierarchy.fragments import Hierarchy
from .classify import (FragmentClasses, bottom_fragments_within,
                       classify_fragments, top_ancestors_chain)
from .parts import (MergedPart, Part, Piece, build_bottom_parts,
                    merge_procedure, piece_of, split_into_top_parts)


@dataclass
class PartitionLayout:
    """Everything Section 6 produces, ready for the marker."""

    classes: FragmentClasses
    merged: List[MergedPart]
    top_parts: List[Part]
    bottom_parts: List[Part]
    top_part_of: Dict[NodeId, Part] = field(default_factory=dict)
    bottom_part_of: Dict[NodeId, Part] = field(default_factory=dict)
    #: pieces stored permanently at each node, per partition
    node_pieces_top: Dict[NodeId, Tuple[Piece, ...]] = field(default_factory=dict)
    node_pieces_bot: Dict[NodeId, Tuple[Piece, ...]] = field(default_factory=dict)
    #: number of bottom levels of each node (prefix of J(v))
    delim: Dict[NodeId, int] = field(default_factory=dict)


def _dfs_preorder_of_part(tree: RootedTree, part: Part) -> List[NodeId]:
    nodes = set(part.nodes)
    order: List[NodeId] = []
    stack = [part.root]
    while stack:
        v = stack.pop()
        order.append(v)
        for c in reversed(tree.children[v]):
            if c in nodes:
                stack.append(c)
    if len(order) != len(nodes):  # pragma: no cover - parts are subtrees
        raise GraphError("part is not a connected subtree")
    return order


def _place_pieces(tree: RootedTree, part: Part,
                  store: Dict[NodeId, Tuple[Piece, ...]]) -> None:
    """Pair the pieces and store pair i at the i-th DFS node (Section 6.2)."""
    order = _dfs_preorder_of_part(tree, part)
    pairs = [tuple(part.pieces[i:i + 2])
             for i in range(0, len(part.pieces), 2)]
    if len(pairs) > len(order):
        raise GraphError(
            f"part rooted at {part.root} holds {len(part.pieces)} pieces "
            f"but only {len(order)} nodes")
    for i, v in enumerate(order):
        store[v] = pairs[i] if i < len(pairs) else ()


def build_partitions(hierarchy: Hierarchy) -> PartitionLayout:
    """Run the full Section-6 pipeline on a hierarchy."""
    tree = hierarchy.tree
    classes = classify_fragments(hierarchy)
    merged = merge_procedure(hierarchy, classes)

    top_parts: List[Part] = []
    for mp in merged:
        chain = top_ancestors_chain(classes, mp.red)
        pieces = [piece_of(f) for f in chain]
        for part in split_into_top_parts(tree, mp, classes.threshold):
            part.pieces = list(pieces)
            top_parts.append(part)

    bottom_parts = build_bottom_parts(hierarchy, classes)
    frag_by_root_level = {(f.root, f.level): f for f in hierarchy.fragments}
    for part in bottom_parts:
        if part.size == 1 and not any(
                f.size < classes.threshold and part.root in f.nodes
                for f in hierarchy.fragments):
            part.pieces = []  # degenerate singleton part (n <= 2)
            continue
        # the part *is* a bottom fragment; find it and collect descendants
        frag = None
        for f in hierarchy.fragments:
            if f.root == part.root and set(f.nodes) == set(part.nodes) \
                    and f in classes.bottom:
                frag = f
                break
        if frag is None:  # pragma: no cover - construction guarantees this
            raise GraphError(f"bottom part at {part.root} matches no fragment")
        part.pieces = [piece_of(f) for f in
                       bottom_fragments_within(classes, frag)]

    layout = PartitionLayout(classes=classes, merged=merged,
                             top_parts=top_parts, bottom_parts=bottom_parts)
    for part in top_parts:
        for v in part.nodes:
            layout.top_part_of[v] = part
        _place_pieces(tree, part, layout.node_pieces_top)
    for part in bottom_parts:
        for v in part.nodes:
            layout.bottom_part_of[v] = part
        _place_pieces(tree, part, layout.node_pieces_bot)

    for v in tree.nodes():
        frags = hierarchy.fragments_of(v)
        layout.delim[v] = sum(1 for f in frags if f in classes.bottom)

    _sanity_check(hierarchy, layout)
    return layout


def _sanity_check(hierarchy: Hierarchy, layout: PartitionLayout) -> None:
    """Marker-side invariants (Lemmas 6.4/6.5 and coverage)."""
    nodes = hierarchy.graph.nodes()
    for v in nodes:
        if v not in layout.top_part_of or v not in layout.bottom_part_of:
            raise GraphError(f"node {v} is not covered by both partitions")
    threshold = layout.classes.threshold
    for part in layout.top_parts:
        if part.size < threshold and hierarchy.graph.n >= threshold:
            raise GraphError("Top part smaller than log n")
        top_levels = {}
        for (root, level, _w) in part.pieces:
            if level in top_levels:
                raise GraphError("Top part stores two pieces of one level")
            top_levels[level] = root
    # every fragment's piece must be stored in every member's relevant part
    for frag in hierarchy.fragments:
        expected = piece_of(frag)
        is_top = frag in layout.classes.top
        for v in frag.nodes:
            part = (layout.top_part_of if is_top
                    else layout.bottom_part_of)[v]
            if expected not in part.pieces:
                raise GraphError(
                    f"piece of fragment {frag.fragment_id} missing from "
                    f"the {'top' if is_top else 'bottom'} part of node {v}")
