"""Partitions Top and Bottom (Sections 6.1.1, 6.1.2).

Partition ``Top``: Procedure Merge coarsens the red/blue partition P' into
P'' (one red fragment per part, blues annexed through touching siblings);
each P'' part is then split into subtrees of size >= log n and height
O(log n) whose union re-covers the part.

Partition ``Bottom``: the blue fragments plus the green fragments (the
children of red fragments); nodes not covered (possible only when even
singletons are "top", i.e. n <= 2) receive degenerate singleton parts with
no pieces.

Lemmas 6.4 / 6.5 (sizes, heights, piece counts) are asserted by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graphs.spanning import RootedTree
from ..graphs.weighted import GraphError, NodeId
from ..hierarchy.fragments import Fragment, Hierarchy
from .classify import FragmentClasses

#: a piece I(F) = (ID(root(F)), level(F), weight of the minimum outgoing
#: edge); the whole-tree fragment carries weight None (no outgoing edge).
Piece = Tuple[NodeId, int, Optional[object]]


def piece_of(fragment: Fragment) -> Piece:
    """I(F) = ID(F) concatenated with the candidate's weight."""
    return (fragment.root, fragment.level, fragment.candidate_weight)


@dataclass
class Part:
    """A part of either partition: a subtree of T with its piece list."""

    root: NodeId
    nodes: List[NodeId]
    kind: str                       # 'top' | 'bottom'
    pieces: List[Piece] = field(default_factory=list)
    height: int = 0

    @property
    def size(self) -> int:
        return len(self.nodes)


@dataclass
class MergedPart:
    """A part of the intermediate partition P'' (red fragment + blues)."""

    red: Fragment
    nodes: Set[NodeId]


def merge_procedure(hierarchy: Hierarchy,
                    classes: FragmentClasses) -> List[MergedPart]:
    """Procedure Merge (Section 6.1.1): coarsen P' into P''.

    Every part contains exactly one red fragment; every blue fragment is
    annexed to a part it touches inside the lowest large fragment whose
    children are otherwise fully covered.
    """
    tree = hierarchy.tree
    parts: List[MergedPart] = [
        MergedPart(red=red, nodes=set(red.nodes)) for red in classes.red
    ]
    part_of: Dict[NodeId, MergedPart] = {}
    for part in parts:
        for v in part.nodes:
            part_of[v] = part

    larges = sorted(classes.large, key=lambda f: f.level)
    for big in larges:
        pending = [c for c in big.children if c in classes.blue]
        while pending:
            progressed = False
            for blue in list(pending):
                target: Optional[MergedPart] = None
                for v in blue.nodes:
                    for u in tree.tree_neighbors(v):
                        if u in big.nodes and u not in blue.nodes \
                                and u in part_of:
                            target = part_of[u]
                            break
                    if target is not None:
                        break
                if target is None:
                    continue
                target.nodes |= blue.nodes
                for v in blue.nodes:
                    part_of[v] = target
                pending.remove(blue)
                progressed = True
            if not progressed:  # pragma: no cover - Obs 6.2 forbids this
                raise GraphError("Procedure Merge cannot place a blue "
                                 "fragment (no touching covered part)")
    return parts


def _part_subtree_orders(tree: RootedTree,
                         nodes: Set[NodeId]) -> Tuple[NodeId, Dict[NodeId, List[NodeId]]]:
    """Root and within-part children map of a part (a subtree of T)."""
    root = min(nodes, key=lambda v: tree.depth[v])
    children = {v: [c for c in tree.children[v] if c in nodes] for v in nodes}
    return root, children


def _subtree_height(root: NodeId, children: Dict[NodeId, List[NodeId]]) -> int:
    height = {v: 0 for v in children}
    order: List[NodeId] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(children[v])
    for v in reversed(order):
        for c in children[v]:
            height[v] = max(height[v], height[c] + 1)
    return height[root]


def split_into_top_parts(tree: RootedTree, merged: MergedPart,
                         threshold: int) -> List[Part]:
    """Split one P'' part into Top parts: size >= threshold, height O(log n).

    Bottom-up carving: a subtree is carved as soon as its pending size
    reaches the threshold; the leftover around the part root (if any) is
    absorbed into an adjacent carved part.
    """
    nodes = merged.nodes
    root, children = _part_subtree_orders(tree, nodes)

    carved: List[List[NodeId]] = []
    carved_root_of: Dict[NodeId, int] = {}
    pend: Dict[NodeId, List[NodeId]] = {}

    order: List[NodeId] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(children[v])
    for v in reversed(order):  # postorder-ish: children first
        bundle = [v]
        for c in children[v]:
            bundle.extend(pend.get(c, ()))
        if len(bundle) >= threshold:
            carved_root_of[v] = len(carved)
            carved.append(bundle)
            pend[v] = []
        else:
            pend[v] = bundle

    leftover = pend.get(root, [])
    if leftover:
        if not carved:  # pragma: no cover - |P''| >= threshold always
            carved.append(leftover)
        else:
            leftover_set = set(leftover)
            target = None
            for idx, bundle in enumerate(carved):
                head = min(bundle, key=lambda v: tree.depth[v])
                par = tree.parent[head]
                if par is not None and par in leftover_set:
                    target = idx
                    break
            if target is None:  # pragma: no cover - leftover always touches
                raise GraphError("top-part leftover touches no carved part")
            carved[target] = leftover + carved[target]

    parts: List[Part] = []
    for bundle in carved:
        bset = set(bundle)
        proot, pchildren = _part_subtree_orders(tree, bset)
        parts.append(Part(root=proot, nodes=sorted(bset),
                          kind="top",
                          height=_subtree_height(proot, pchildren)))
    return parts


def build_bottom_parts(hierarchy: Hierarchy,
                       classes: FragmentClasses) -> List[Part]:
    """Partition Bottom: blue and green fragments, plus degenerate
    singleton parts for nodes left uncovered (only when n <= 2)."""
    tree = hierarchy.tree
    parts: List[Part] = []
    covered: Set[NodeId] = set()
    for frag in sorted(classes.blue | classes.green,
                       key=lambda f: (f.level, f.root)):
        nodes = set(frag.nodes)
        root, children = _part_subtree_orders(tree, nodes)
        parts.append(Part(root=root, nodes=sorted(nodes), kind="bottom",
                          height=_subtree_height(root, children)))
        covered |= nodes
    for v in hierarchy.graph.nodes():
        if v not in covered:
            parts.append(Part(root=v, nodes=[v], kind="bottom", height=0))
    return parts
