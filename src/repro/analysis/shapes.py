"""Shape analysis for the benchmarks: fitting measured curves against the
paper's asymptotic claims.

The reproduction matches *shapes*, not the authors' constants: detection
time should grow polylogarithmically, construction linearly, memory
logarithmically.  The helpers below fit simple models by least squares
over log-transformed data and compare growth ratios, so benchmarks and
EXPERIMENTS.md can report "measured exponent" style evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple


@dataclass
class FitResult:
    """y ~ a * x^b (power-law fit in log-log space)."""

    a: float
    b: float
    r2: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Least-squares fit of log y = log a + b log x."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(1e-9, y)) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((x - mx) ** 2 for x in lx)
    sxy = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    b = sxy / sxx if sxx else 0.0
    a = math.exp(my - b * mx)
    ss_res = sum((y - (math.log(a) + b * x)) ** 2 for x, y in zip(lx, ly))
    ss_tot = sum((y - my) ** 2 for y in ly)
    r2 = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return FitResult(a=a, b=b, r2=r2)


def fit_polylog(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit y ~ a * (log2 x)^b — the shape of the detection-time claims."""
    lxs = [math.log2(max(2.0, x)) for x in xs]
    return fit_power_law(lxs, ys)


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """y_last/y_first normalized by x_last/x_first: ~1 for linear growth,
    < 1 for sublinear, > 1 for superlinear."""
    if xs[0] <= 0 or ys[0] <= 0:
        raise ValueError("positive data required")
    return (ys[-1] / ys[0]) / (xs[-1] / xs[0])


def is_sublinear(xs: Sequence[float], ys: Sequence[float],
                 tolerance: float = 0.6) -> bool:
    """Whether y grows clearly slower than x (polylog vs linear test)."""
    return growth_ratio(xs, ys) < tolerance


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table used by the benchmark reports."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in r] for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)
