"""Analysis helpers: power-law / polylog shape fits and table formatting
for the benchmark reports."""

from .shapes import (FitResult, fit_polylog, fit_power_law, format_table,
                     growth_ratio, is_sublinear)

__all__ = [
    "FitResult", "fit_polylog", "fit_power_law", "format_table",
    "growth_ratio", "is_sublinear",
]
