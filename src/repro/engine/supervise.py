"""Supervised campaign execution: crash/hang-tolerant worker fan-out.

The bare ``multiprocessing.Pool.imap`` fan-out the runner used through
PR 7 has the failure modes the paper's own subject matter warns about:
one OOM-killed worker wedges the pool forever (``imap`` waits for a
result that will never arrive), and one non-quiescing cell blocks the
whole sweep.  This module replaces it with *per-task dispatch under
supervision*:

* every worker is a dedicated ``Process`` with its own duplex pipe; the
  supervisor sends one ``(index, spec, attempt)`` at a time and tracks
  a per-cell deadline;
* a worker that **dies** mid-cell (OOM kill, preemption, segfault) is
  detected through its process sentinel; the in-flight cell is retried
  on a *fresh* worker with bounded attempts and exponential backoff;
* a cell that exceeds its **per-cell wall-clock timeout** — configurable
  and scaled by the topology size hint — is terminated (worker killed,
  replacement spawned) instead of blocking the sweep;
* every cell ends in a structured terminal status
  (:data:`~repro.engine.scenarios.TERMINAL_STATUSES`): ``ok``,
  ``error`` (raised inside the worker; deterministic, never retried),
  ``timeout``/``crashed`` (the failure itself, when its attempt budget
  is 1), or ``quarantined`` (a multi-attempt budget exhausted — the
  supervisor parks the cell so the sweep continues and ``--resume``
  skips it).  Nothing is ever silently missing.

Results are delivered through an ``on_result`` callback *as they
complete* (completion order, not spec order), which is what lets the
runner stream JSONL shards and the completed-key manifest
(:mod:`repro.engine.manifest`) for resumable campaigns.

A deterministic :class:`ChaosPolicy` makes the supervisor itself
testable: chosen cells crash (``os._exit``), hang (sleep past any
deadline), or raise inside the worker for their first ``fail_attempts``
attempts, then behave normally — so retried-to-ok, quarantine, and
timeout paths are all exercised by ordinary tests and the CI chaos
smoke job, under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Tuple)

from .scenarios import (STATUS_CRASHED, STATUS_ERROR, STATUS_QUARANTINED,
                        STATUS_TIMEOUT, ScenarioResult, run_scenario)
from .spec import ScenarioSpec

__all__ = ["CampaignInterrupted", "ChaosError", "ChaosPolicy",
           "SuperviseConfig", "run_supervised", "size_hint"]

#: traceback lines kept on an ``error`` result — enough to group
#: failures by cause, bounded so a deep recursion cannot bloat records.
TRACEBACK_TAIL_LINES = 8


class ChaosError(RuntimeError):
    """The deterministic exception :class:`ChaosPolicy` raises in
    ``error`` cells (distinguishable from real scenario failures)."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Deterministic fault injection *into the campaign fabric itself*.

    Cells are selected by spec ``key``; an affected cell misbehaves on
    its first :attr:`fail_attempts` attempts and runs normally
    afterwards — so ``fail_attempts=1`` with a retry budget of 2
    exercises the retried-to-ok path, while ``fail_attempts`` larger
    than any budget exercises quarantine.  The policy is picklable and
    ships to workers under both ``fork`` and ``spawn``.
    """

    crash_keys: FrozenSet[str] = frozenset()
    hang_keys: FrozenSet[str] = frozenset()
    error_keys: FrozenSet[str] = frozenset()
    #: misbehave on attempts 1..fail_attempts, behave from then on.
    fail_attempts: int = 1
    #: how long a hanging cell sleeps (longer than any sane deadline).
    hang_seconds: float = 3600.0

    @classmethod
    def pick(cls, specs: Iterable[ScenarioSpec], crash: int = 0,
             hang: int = 0, error: int = 0, fail_attempts: int = 1,
             hang_seconds: float = 3600.0) -> "ChaosPolicy":
        """Select disjoint victim cells deterministically: the first
        ``crash``/``hang``/``error`` keys in sorted key order, so the
        same campaign + counts always picks the same cells."""
        keys = sorted({s.key for s in specs})
        take = deque(keys)
        picked = []
        for count in (crash, hang, error):
            picked.append(frozenset(take.popleft()
                                    for _ in range(min(count, len(take)))))
        return cls(crash_keys=picked[0], hang_keys=picked[1],
                   error_keys=picked[2], fail_attempts=fail_attempts,
                   hang_seconds=hang_seconds)

    def plan(self, spec: ScenarioSpec, attempt: int) -> Optional[str]:
        """The misbehavior for this (cell, attempt), or ``None``."""
        if attempt > self.fail_attempts:
            return None
        if spec.key in self.crash_keys:
            return "crash"
        if spec.key in self.hang_keys:
            return "hang"
        if spec.key in self.error_keys:
            return "error"
        return None

    def apply(self, spec: ScenarioSpec, attempt: int) -> None:
        """Misbehave inside the worker (called before the scenario)."""
        action = self.plan(spec, attempt)
        if action == "crash":
            os._exit(137)       # the OOM killer's exit, unhandleable
        elif action == "hang":
            time.sleep(self.hang_seconds)
        elif action == "error":
            raise ChaosError(f"chaos error injected into {spec.key} "
                             f"(attempt {attempt})")


def size_hint(spec: ScenarioSpec) -> int:
    """Best-effort node-count estimate from the topology axis params
    (used only to *scale* per-cell timeouts, so approximate is fine)."""
    topo = spec.topology
    n = topo.get("n")
    if n:
        return int(n)
    rows, cols = topo.get("rows"), topo.get("cols")
    if rows and cols:
        return int(rows) * int(cols)
    if topo.kind == "caterpillar":
        spine, legs = topo.get("spine", 4), topo.get("legs", 2)
        return int(spine) * (1 + int(legs))
    if topo.kind == "subdivided":
        base_n = topo.get("base_n", 80)
        extra = topo.get("extra", 130)
        tau = topo.get("tau", 2)
        # every base edge gains a 2*tau-node path (Figure 10)
        return int(base_n + (base_n - 1 + extra) * 2 * tau)
    return 16


@dataclass(frozen=True)
class SuperviseConfig:
    """Supervision knobs (all have conservative defaults).

    ``timeout`` is the *base* per-cell wall-clock deadline in seconds
    for a cell of :attr:`timeout_scale` nodes or fewer; larger cells
    get proportionally more (:meth:`timeout_for`).  ``None`` disables
    deadlines entirely.

    Attempt budgets are *totals* (first try included).  A retryable
    failure with attempts left is re-dispatched to a fresh worker after
    exponential backoff; when a kind's budget is 1 the failure status
    itself (``crashed``/``timeout``) is terminal, and when a
    multi-attempt budget is exhausted the cell is ``quarantined``.
    Crashes default to one retry (transient OOM/preemption is the
    common case); timeouts default to no retry (a hang is usually
    deterministic — opt in via ``timeout_attempts``).
    """

    timeout: Optional[float] = None
    #: nodes covered by the base timeout; cells above it scale linearly.
    timeout_scale: float = 1000.0
    max_attempts: int = 2          # total attempts for crashed cells
    timeout_attempts: int = 1      # total attempts for timed-out cells
    backoff: float = 0.5           # base retry delay, doubling per retry
    chaos: Optional[ChaosPolicy] = None
    #: module-level callable run once in every fresh worker before it
    #: serves cells — the supported way to make runtime ``register_*``
    #: axes visible under ``spawn`` (it must be importable by name).
    worker_init: Optional[Callable[[], None]] = None

    def timeout_for(self, spec: ScenarioSpec) -> Optional[float]:
        """The cell's wall-clock deadline in seconds (``None`` = no
        deadline), scaled by the topology size hint."""
        if self.timeout is None:
            return None
        return self.timeout * max(1.0, size_hint(spec) /
                                  self.timeout_scale)

    def budget_for(self, kind: str) -> int:
        return (self.max_attempts if kind == STATUS_CRASHED
                else self.timeout_attempts)


class CampaignInterrupted(KeyboardInterrupt):
    """Ctrl-C (or a propagated ``KeyboardInterrupt``) during a
    campaign: workers are terminated, completed results are attached
    (already streamed to the manifest when one is active), and the CLI
    prints the ``--resume`` command.  Subclasses ``KeyboardInterrupt``
    so existing handlers keep working."""

    def __init__(self, results: Sequence[ScenarioResult],
                 total: int) -> None:
        super().__init__(
            f"campaign interrupted: {len(results)}/{total} scenario(s) "
            f"completed")
        self.results: Tuple[ScenarioResult, ...] = tuple(results)
        self.total = total


def _error_result(spec: ScenarioSpec, exc: BaseException) -> ScenarioResult:
    """A terminal ``error`` result carrying the structured cause: the
    exception class, message, and a bounded traceback tail (the old
    runner kept only the last traceback line, which collapsed distinct
    failure causes into one unreadable string)."""
    import traceback
    lines = traceback.format_exception(type(exc), exc, exc.__traceback__)
    tail = "".join(lines).strip().splitlines()[-TRACEBACK_TAIL_LINES:]
    return ScenarioResult(
        spec=spec, status=STATUS_ERROR,
        error=f"{type(exc).__name__}: {exc}",
        error_type=type(exc).__name__,
        error_trace=tuple(tail))


def _run_one(spec: ScenarioSpec, attempt: int = 1,
             chaos: Optional[ChaosPolicy] = None) -> ScenarioResult:
    """Worker entry point: never raises (module-level for pickling)."""
    try:
        if chaos is not None:
            chaos.apply(spec, attempt)
        return run_scenario(spec)
    except Exception as exc:  # noqa: BLE001 - campaign must survive
        return _error_result(spec, exc)


def _supervised_worker(conn, warm_root: Optional[str], warm_restore: bool,
                       chaos: Optional[ChaosPolicy],
                       worker_init: Optional[Callable[[], None]]) -> None:
    """Worker loop: serve ``(index, spec, attempt)`` tasks until a
    ``None`` sentinel or pipe EOF.  EOF also covers a *killed*
    supervisor (``kill -9`` closes its pipe ends), so orphaned workers
    exit instead of leaking."""
    import signal
    # Ctrl-C belongs to the supervisor: it terminates workers during
    # shutdown, and a worker that also takes the SIGINT sprays a
    # traceback mid-interrupt-message
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if warm_root is not None:
        from .warmcache import WarmCache, set_warm_cache
        set_warm_cache(WarmCache(warm_root, restore=warm_restore))
    if worker_init is not None:
        worker_init()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        idx, spec, attempt = msg
        result = _run_one(spec, attempt=attempt, chaos=chaos)
        try:
            conn.send((idx, result))
        except (BrokenPipeError, OSError):
            break


class _WorkerHandle:
    """One supervised worker: its process, pipe, and in-flight task."""

    __slots__ = ("proc", "conn", "task", "deadline")

    def __init__(self, ctx, spawn_args) -> None:
        parent, child = ctx.Pipe()
        self.proc = ctx.Process(target=_supervised_worker,
                                args=(child,) + spawn_args, daemon=True)
        self.proc.start()
        child.close()
        self.conn = parent
        self.task: Optional[Tuple[int, ScenarioSpec, int]] = None
        self.deadline: Optional[float] = None

    def retire(self) -> None:
        """Close the pipe and make sure the process is gone."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(2.0)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(2.0)
        else:
            self.proc.join(0.1)


def run_supervised(specs: Sequence[ScenarioSpec], workers: int,
                   config: Optional[SuperviseConfig] = None,
                   mp_context: Optional[str] = None,
                   warm_root: Optional[str] = None,
                   warm_restore: bool = True,
                   on_result: Optional[Callable[[int, ScenarioResult],
                                                None]] = None
                   ) -> List[ScenarioResult]:
    """Execute ``specs`` under supervision; results in *spec order*.

    ``on_result(index, result)`` fires in completion order as each cell
    reaches a terminal status (the streaming hook).  Raises
    :class:`CampaignInterrupted` on ``KeyboardInterrupt`` — including
    one raised *by* ``on_result`` — with the completed results
    attached, after terminating every worker.
    """
    config = config or SuperviseConfig()
    specs = list(specs)
    ctx = get_context(mp_context)
    spawn_args = (warm_root, warm_restore, config.chaos,
                  config.worker_init)
    n_workers = max(1, min(workers, len(specs)))

    results: List[Optional[ScenarioResult]] = [None] * len(specs)
    pending = deque((i, spec, 1) for i, spec in enumerate(specs))
    #: (ready_at, index, spec, next_attempt) — failed cells waiting out
    #: their backoff before re-dispatch
    retries: List[Tuple[float, int, ScenarioSpec, int]] = []
    idle: List[_WorkerHandle] = []
    busy: List[_WorkerHandle] = []
    done = 0

    def finish(idx: int, attempt: int, result: ScenarioResult) -> None:
        nonlocal done
        result = replace(result, attempts=attempt)
        results[idx] = result
        done += 1
        if on_result is not None:
            on_result(idx, result)

    def fail(idx: int, spec: ScenarioSpec, attempt: int,
             kind: str) -> None:
        """A crashed/timed-out attempt: retry with backoff while the
        kind's budget lasts, else record the terminal status."""
        budget = config.budget_for(kind)
        if attempt < budget:
            delay = config.backoff * (2 ** (attempt - 1))
            retries.append((time.monotonic() + delay, idx, spec,
                            attempt + 1))
            return
        if kind == STATUS_CRASHED:
            detail = "worker process died mid-run"
        else:
            deadline = config.timeout_for(spec)
            detail = (f"exceeded per-cell timeout"
                      f"{f' of {deadline:.1f}s' if deadline else ''}")
        if budget > 1:
            status = STATUS_QUARANTINED
            message = (f"quarantined after {attempt} attempt(s); "
                       f"last failure: {kind} ({detail})")
        else:
            status = kind
            message = detail
        finish(idx, attempt, ScenarioResult(
            spec=spec, status=status, error=message, error_type=kind))

    def crash(w: _WorkerHandle) -> None:
        idx, spec, attempt = w.task
        busy.remove(w)
        w.retire()
        fail(idx, spec, attempt, STATUS_CRASHED)

    def expire(w: _WorkerHandle) -> None:
        idx, spec, attempt = w.task
        busy.remove(w)
        w.retire()     # a hung worker cannot be reused: kill + replace
        fail(idx, spec, attempt, STATUS_TIMEOUT)

    def shutdown() -> None:
        for w in busy + idle:
            if w.task is None and w.proc.is_alive():
                try:
                    w.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            w.retire()
        busy.clear()
        idle.clear()

    try:
        while done < len(specs):
            now = time.monotonic()
            if retries:
                due = [r for r in retries if r[0] <= now]
                if due:
                    retries[:] = [r for r in retries if r[0] > now]
                    for _, idx, spec, attempt in sorted(due):
                        pending.append((idx, spec, attempt))
            # keep the worker complement full (replacements for
            # retired crashers/hangers) as long as there is work left
            outstanding = len(pending) + len(retries) + len(busy)
            while outstanding and len(idle) + len(busy) < min(
                    n_workers, outstanding):
                idle.append(_WorkerHandle(ctx, spawn_args))
            while pending and idle:
                idx, spec, attempt = pending.popleft()
                w = idle.pop()
                try:
                    w.conn.send((idx, spec, attempt))
                except (BrokenPipeError, OSError):
                    # the idle worker died before dispatch: that is a
                    # worker failure, not a cell failure — requeue the
                    # cell at the same attempt and replace the worker
                    w.retire()
                    pending.appendleft((idx, spec, attempt))
                    idle.append(_WorkerHandle(ctx, spawn_args))
                    continue
                t = config.timeout_for(spec)
                w.task = (idx, spec, attempt)
                w.deadline = None if t is None else now + t
                busy.append(w)
            if done >= len(specs):
                break
            # sleep until the next event: a result, a worker death, a
            # deadline, or a retry coming due
            horizon = [w.deadline for w in busy if w.deadline is not None]
            horizon.extend(r[0] for r in retries)
            limit = min(horizon) - now if horizon else 0.25
            wait_for = max(0.0, min(limit, 0.25))
            if busy:
                watch = [w.conn for w in busy]
                watch.extend(w.proc.sentinel for w in busy)
                ready = _conn_wait(watch, wait_for)
            else:
                time.sleep(min(wait_for, 0.05) or 0.01)
                ready = []
            now = time.monotonic()
            for w in list(busy):
                if w.conn in ready or w.conn.poll():
                    try:
                        idx, result = w.conn.recv()
                    except (EOFError, OSError):
                        crash(w)     # died mid-send
                        continue
                    _, _, attempt = w.task
                    w.task, w.deadline = None, None
                    busy.remove(w)
                    idle.append(w)
                    finish(idx, attempt, result)
                elif w.proc.sentinel in ready or not w.proc.is_alive():
                    crash(w)
                elif w.deadline is not None and now >= w.deadline:
                    expire(w)
        shutdown()
        return list(results)   # type: ignore[return-value]
    except KeyboardInterrupt:
        shutdown()
        raise CampaignInterrupted(
            [r for r in results if r is not None], len(specs)) from None
    except BaseException:
        shutdown()
        raise
