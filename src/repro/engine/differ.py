"""Cross-commit campaign comparison: diff two JSONL result dumps.

``python -m repro.engine diff OLD.jsonl NEW.jsonl`` joins the two dumps
on ``key`` + ``seed`` (the stable scenario identity
:func:`~repro.engine.runner.scenario_record` writes) and flags
*regressions* in the metrics the ROADMAP wants CI-gateable:

* **rounds_to_detection** — more rounds to detect than before (scaled
  tolerance ``--rounds-tol``, default exact);
* **memory bits** — ``max_memory_bits`` / ``total_memory_bits`` grew
  (``--mem-tol`` fractional tolerance, default exact: the accounting is
  deterministic, any growth is a real change);
* **churn re-stabilization** — a churn cell's worst per-event
  re-detection latency (``worst_redetect``), worst re-settle latency
  (``worst_quiesce``), or alarmed fraction of churn rounds
  (``unavailability``) grew (shares ``--rounds-tol``; inert on
  non-churn records, which do not carry the fields);
* **wall time** — ``--time-tol`` factor (default 1.5x; wall clock is
  noisy, so the default only catches blowups — tighten on quiet runners
  or disable with ``--no-time``);
* **correctness** — a scenario that newly violates
  soundness/completeness or errors is always a regression — including a
  scenario that exists *only* in the new dump (an added scenario that
  arrives violating must not slip past the gate just because it has no
  baseline to join against);
* **execution status** — a scenario whose record carries a failure
  status (``error``/``timeout``/``crashed``/``quarantined``, or a bare
  ``error`` string in pre-status dumps) on either side becomes a named
  category instead of a numeric comparison: newly failing is an
  *error-appeared* regression, newly succeeding an *error-cleared*
  improvement, and a failure whose kind changed an *error-status*
  warning — the numeric metrics of a failed run are artifacts of the
  failure (zero memory, null detection) and are never compared as if
  they were valid;
* **membership** — scenarios present in only one dump are reported as
  named categories (*removed* / *added*) with their keys, never
  silently dropped from the join; ``--strict`` turns removed scenarios
  into regressions too.

``--soft-time`` downgrades wall-time regressions to *warnings*
(reported, exit 0): the deterministic metrics stay a hard gate while
the noisy one stays visible — the CI configuration the ROADMAP wants.

``--json REPORT.json`` additionally writes the whole report as
machine-readable JSON (:meth:`DiffResult.to_dict`) so CI can annotate
pull requests with the exact regressions without parsing the text
summary; the exit status is unchanged.

Exit status: 0 when clean (or ``--warn-only``), 1 when any regression
was found — so CI can gate a commit on the dump of the previous one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: join identity of one scenario record
Key = Tuple[str, int]


def load_records(path: str) -> Dict[Key, Dict[str, Any]]:
    """``(key, seed) -> record`` for one JSONL dump (later duplicates
    win, matching "the last run of a re-run scenario counts")."""
    records: Dict[Key, Dict[str, Any]] = {}
    with open(path) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not a JSON record ({exc})") from None
            try:
                records[(rec["key"], int(rec["seed"]))] = rec
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: record lacks key/seed ({exc})") \
                    from None
    return records


@dataclass
class DiffConfig:
    """Tolerances for the regression flags."""

    rounds_tol: float = 0.0     # fractional slack on rounds_to_detection
    mem_tol: float = 0.0        # fractional slack on memory bits
    time_tol: float = 0.5       # fractional slack on wall time (0.5 = 1.5x)
    check_time: bool = True
    strict_missing: bool = False
    #: wall-time regressions become warnings (reported, never gate):
    #: the deterministic metrics stay hard while the noisy one stays
    #: visible.
    soft_time: bool = False


@dataclass
class Regression:
    key: str
    seed: int
    metric: str
    old: Any
    new: Any

    def __str__(self) -> str:
        return f"{self.key} seed={self.seed}: {self.metric} " \
               f"{self.old!r} -> {self.new!r}"


@dataclass
class DiffResult:
    """Outcome of one dump comparison.

    ``missing`` are the *removed* scenarios (present only in the old
    dump) and ``added`` the scenarios present only in the new one —
    both reported as named categories in :meth:`summary`, never
    silently dropped from the join.  ``warnings`` carry soft-gated
    findings (wall-time regressions under ``soft_time``) that never
    affect :attr:`ok`.
    """

    joined: int = 0
    missing: List[Key] = field(default_factory=list)
    added: List[Key] = field(default_factory=list)
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[Regression] = field(default_factory=list)
    warnings: List[Regression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    @staticmethod
    def _keys(label: str, keys: List[Key], cap: int = 10) -> List[str]:
        lines = [f"  {label} {key} seed={seed}" for key, seed in keys[:cap]]
        if len(keys) > cap:
            lines.append(f"  ... and {len(keys) - cap} more "
                         f"{label.strip()}(s)")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable report (``python -m repro.engine diff
        --json``): everything the text summary carries, as plain JSON
        types, so CI can annotate PRs without re-parsing text."""
        def _reg(r: Regression) -> Dict[str, Any]:
            return {"key": r.key, "seed": r.seed, "metric": r.metric,
                    "old": r.old, "new": r.new}

        return {
            "ok": self.ok,
            "joined": self.joined,
            "regressions": [_reg(r) for r in self.regressions],
            "warnings": [_reg(r) for r in self.warnings],
            "improvements": [_reg(r) for r in self.improvements],
            "removed": [{"key": k, "seed": s} for k, s in self.missing],
            "added": [{"key": k, "seed": s} for k, s in self.added],
        }

    def summary(self) -> str:
        lines = [
            f"joined {self.joined} scenario(s); "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.missing)} removed scenario(s), "
            f"{len(self.added)} added scenario(s)",
        ]
        for r in self.regressions:
            lines.append(f"  REGRESSION {r}")
        for r in self.warnings:
            lines.append(f"  WARNING    {r}")
        for r in self.improvements[:10]:
            lines.append(f"  improved   {r}")
        lines.extend(self._keys("removed scenario", self.missing))
        lines.extend(self._keys("added scenario  ", self.added))
        return "\n".join(lines)


def record_failure(rec: Dict[str, Any]) -> Optional[str]:
    """The record's execution-failure kind, or ``None`` for a clean run.

    New dumps carry an explicit terminal ``status``; legacy dumps
    (pre-supervisor) only set ``error``, which counts as kind
    ``"error"``.  A failed record's numeric metrics are artifacts of
    the failure, so the differ must never compare them as if valid.
    """
    status = rec.get("status")
    if status and status != "ok":
        return str(status)
    if rec.get("error"):
        return "error"
    return None


def _worse(old: Optional[float], new: Optional[float],
           tol: float) -> Optional[bool]:
    """True/False when comparable, None when either side is absent.

    The tolerance is relative — except at a zero baseline, where a
    relative bound is inert (anything exceeds 0 * (1+tol)); there it
    acts as an absolute allowance, so ``--rounds-tol 1`` admits a
    0 -> 1 shift instead of always flagging it."""
    if old is None or new is None:
        return None
    if old == 0:
        return new > tol
    return new > old * (1.0 + tol)


def diff_records(old: Dict[Key, Dict[str, Any]],
                 new: Dict[Key, Dict[str, Any]],
                 config: Optional[DiffConfig] = None) -> DiffResult:
    """Compare two dumps record-by-record on the joined scenarios."""
    config = config or DiffConfig()
    result = DiffResult()
    result.missing = sorted(k for k in old if k not in new)
    result.added = sorted(k for k in new if k not in old)
    if config.strict_missing:
        result.regressions.extend(
            Regression(key, seed, "removed", "present", "absent")
            for key, seed in result.missing)
    # an added scenario has no baseline to join against, but arriving
    # *violating* is a correctness regression all the same — silently
    # skipping unjoined records would let a broken new scenario pass
    # the gate on the commit that introduces it
    for key, seed in result.added:
        violation = new[(key, seed)].get("violation")
        if violation:
            result.regressions.append(
                Regression(key, seed, "added-violation", None, violation))

    for ident in sorted(k for k in old if k in new):
        o, n = old[ident], new[ident]
        key, seed = ident
        result.joined += 1

        # execution status first: a failed record (errored, timed out,
        # crashed, or quarantined) has no valid metrics to compare
        old_fail, new_fail = record_failure(o), record_failure(n)
        if new_fail and not old_fail:
            result.regressions.append(Regression(
                key, seed, "error-appeared", None,
                f"{new_fail}: {n.get('error')}" if n.get("error")
                else new_fail))
            continue
        if old_fail and not new_fail:
            result.improvements.append(Regression(
                key, seed, "error-cleared", old_fail, None))
            # the cell now *executes* — but it must also be correct:
            # clearing a crash into a soundness violation is no fix
            if n.get("violation"):
                result.regressions.append(Regression(
                    key, seed, "violation", None, n.get("violation")))
            continue
        if old_fail and new_fail:
            if old_fail != new_fail:
                result.warnings.append(Regression(
                    key, seed, "error-status", old_fail, new_fail))
            continue

        # correctness next: these are regressions regardless of perf
        if n.get("violation") and not o.get("violation"):
            result.regressions.append(Regression(
                key, seed, "violation", o.get("violation"),
                n.get("violation")))
            continue
        if o.get("violation") and not n.get("violation"):
            # a fixed violation: the old record's metrics come from a
            # broken run (premature alarms, error shortcuts), so perf
            # comparison against them is meaningless — mirror the
            # new-violation case and skip it
            result.improvements.append(Regression(
                key, seed, "violation", o.get("violation"), None))
            continue

        checks = [
            ("rounds_to_detection", o.get("rounds_to_detection"),
             n.get("rounds_to_detection"), config.rounds_tol),
            ("max_memory_bits", o.get("max_memory_bits"),
             n.get("max_memory_bits"), config.mem_tol),
            ("total_memory_bits", o.get("total_memory_bits"),
             n.get("total_memory_bits"), config.mem_tol),
            # churn cells: worst per-event re-detection/re-settle
            # latency and the alarmed fraction of churn rounds
            # (1 - availability, shaped so bigger is worse like every
            # other gate); absent on non-churn records, where _worse
            # returns None and the check is inert
            ("worst_redetect", o.get("worst_redetect"),
             n.get("worst_redetect"), config.rounds_tol),
            ("worst_quiesce", o.get("worst_quiesce"),
             n.get("worst_quiesce"), config.rounds_tol),
            ("unavailability", o.get("unavailability"),
             n.get("unavailability"), config.rounds_tol),
        ]
        if config.check_time:
            checks.append(("wall_time", o.get("wall_time"),
                           n.get("wall_time"), config.time_tol))
        for metric, ov, nv, tol in checks:
            worse = _worse(ov, nv, tol)
            if metric == "wall_time" and worse and \
                    nv is not None and ov is not None and nv - ov < 0.1:
                # sub-100ms scenarios flap on factor comparisons alone
                worse = False
            if worse is None:
                # detection regressed from "detected" to "never" —
                # rounds_to_detection went from a number to null
                if metric == "rounds_to_detection" and ov is not None \
                        and nv is None and n.get("expected_detection"):
                    result.regressions.append(
                        Regression(key, seed, metric, ov, None))
                continue
            if worse:
                sink = result.warnings if (metric == "wall_time" and
                                           config.soft_time) \
                    else result.regressions
                sink.append(Regression(key, seed, metric, ov, nv))
            elif ov is not None and nv is not None and nv < ov:
                result.improvements.append(
                    Regression(key, seed, metric, ov, nv))
    return result


def diff_paths(old_path: str, new_path: str,
               config: Optional[DiffConfig] = None) -> DiffResult:
    return diff_records(load_records(old_path), load_records(new_path),
                        config)
