"""Predefined campaigns: the paper's experiments as declarative specs.

Each builder returns a list of :class:`ScenarioSpec` that a
:class:`~repro.engine.runner.CampaignRunner` executes; the benchmarks
under ``benchmarks/`` are thin wrappers over these, so a new experiment
axis (another topology, daemon, or fault recipe) is one registry entry
plus one list here — not another bespoke script.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .scenarios import spec_is_satisfiable
from .spec import Axis, ScenarioSpec, axis, derive_seed, grid


def detection_time_campaign(sizes: Sequence[int],
                            synchronous: bool = True,
                            seed: int = 0,
                            static_every: int = 4,
                            extra_factor: float = 2.0,
                            max_rounds: int = 200_000) -> List[ScenarioSpec]:
    """Detection time vs n for the hardest fault class (a stored-piece
    minimality lie), Theorem 8.5's E1/E2 workload."""
    schedule = axis("sync") if synchronous else axis("permutation")
    return [
        ScenarioSpec(
            topology=axis("random", n=n, extra=int(extra_factor * n)),
            fault=axis("piece_lie"),
            schedule=schedule,
            protocol=axis("verifier", static_every=static_every),
            seed=derive_seed(seed, "detection_time", n),
            max_rounds=max_rounds,
        )
        for n in sizes
    ]


def detection_distance_campaign(n: int,
                                fault_counts: Sequence[int],
                                trials: int = 3,
                                seed: int = 0,
                                fraction: float = 0.6,
                                static_every: int = 2,
                                max_rounds: int = 40_000
                                ) -> List[ScenarioSpec]:
    """Detection distance vs the number of scrambled nodes f (E3)."""
    specs = []
    for f in fault_counts:
        for trial in range(trials):
            specs.append(ScenarioSpec(
                topology=axis("random", n=n, extra=int(1.6 * n)),
                fault=axis("corrupt", count=f, fraction=fraction),
                schedule=axis("sync"),
                protocol=axis("verifier", static_every=static_every),
                seed=derive_seed(seed, "detection_distance", f, trial),
                max_rounds=max_rounds,
            ))
    return specs


def memory_campaign(sizes: Sequence[int],
                    protocols: Iterable[Axis] = (axis("verifier",
                                                      static_every=4),
                                                 axis("sqlog")),
                    seed: int = 0,
                    rounds: int = 4) -> List[ScenarioSpec]:
    """Per-node memory footprint vs n, per protocol (E6b): a few quiet
    rounds on a correct instance, then read the register accounting.

    All protocols at a given n share one ``topology_seed``, so the
    cross-protocol ratio compares footprints on the *same* graph
    instance (the paired comparison the paper's table makes).
    """
    return [
        ScenarioSpec(
            topology=axis("random", n=n, extra=2 * n),
            fault=axis("none"),
            schedule=axis("sync"),
            protocol=proto,
            seed=derive_seed(seed, "memory", n, str(proto)),
            topology_seed=derive_seed(seed, "memory-instance", n),
            completeness_rounds=rounds,
        )
        for n in sizes
        for proto in protocols
    ]


def soundness_completeness_matrix(seed: int = 0,
                                  topologies: Optional[Sequence[Axis]] = None,
                                  faults: Optional[Sequence[Axis]] = None,
                                  schedules: Optional[Sequence[Axis]] = None,
                                  settle_rounds: Optional[int] = None,
                                  max_rounds: Optional[int] = None,
                                  completeness_rounds: Optional[int] = None
                                  ) -> List[ScenarioSpec]:
    """The randomized test matrix: topology x fault x daemon, one seed.

    Completeness must hold on every ``none`` cell (no alarm on legal
    labelings) and soundness on every faulty cell (detection within the
    budget).  ``tests/test_campaign_matrix.py`` sweeps this grid.
    """
    if topologies is None:
        topologies = (
            axis("random", n=14, extra=10),
            axis("path", n=12),
            axis("star", n=12),
            axis("grid", rows=3, cols=4),
        )
    if faults is None:
        faults = (
            axis("none"),
            axis("corrupt", count=1, fraction=0.6),
            axis("scramble", count=3),
            axis("label_swap"),
        )
    if schedules is None:
        schedules = (
            axis("sync"),
            axis("round_robin"),
            axis("permutation"),
            axis("slow_nodes", count=2, slowdown=3),
        )
    specs = grid(topologies, faults, schedules, seed=seed,
                 settle_rounds=settle_rounds, max_rounds=max_rounds,
                 completeness_rounds=completeness_rounds)
    return [s for s in specs if spec_is_satisfiable(s)]


def adversarial_labeling_matrix(seed: int = 0,
                                topologies: Optional[Sequence[Axis]] = None,
                                schedules: Optional[Sequence[Axis]] = None,
                                protocols: Optional[Sequence[Axis]] = None,
                                max_rounds: Optional[int] = None
                                ) -> List[ScenarioSpec]:
    """``label_swap`` soundness across *all three* label formats.

    The strongest consistent adversary labels a non-MST spanning tree as
    if it were correct; only the minimality comparisons can expose it.
    Each protocol consumes the adversarial marker output through its own
    label rewriter — the train verifier's raw labels, the hybrid's
    replicated bottom pieces, the sqlog baseline's full piece tables —
    so this matrix closes the soundness coverage the single-protocol
    matrix left open (ROADMAP item).
    """
    if topologies is None:
        # non-tree topologies only: label_swap needs a non-tree edge
        topologies = (
            axis("random", n=14, extra=10),
            axis("grid", rows=3, cols=4),
        )
    if schedules is None:
        schedules = (axis("sync"), axis("permutation"))
    if protocols is None:
        protocols = (axis("verifier"), axis("hybrid"), axis("sqlog"))
    specs = grid(topologies, (axis("label_swap"),), schedules, protocols,
                 seed=seed, max_rounds=max_rounds)
    return [s for s in specs if spec_is_satisfiable(s)]


def partition_census_campaign(sizes: Sequence[int] = (32, 96),
                              seed: int = 0,
                              rounds: int = 4,
                              storage: str = "columnar"
                              ) -> List[ScenarioSpec]:
    """The Figures 2/3 workload as scenarios (F2/F3): honest labels on
    random instances, a few quiet completeness rounds, memory-bit
    accounting per instance.

    The figure itself (fragment classes, partition Top/Bottom tables) is
    derived per spec from :func:`~repro.engine.scenarios.graph_for` by
    ``benchmarks/bench_fig2_fig3_partitions.py``; running the *same*
    instances through the engine makes the sweep a JSONL trend series
    the cross-commit differ can join on.
    """
    return [
        ScenarioSpec(
            topology=axis("random", n=n, extra=int(1.8 * n)),
            fault=axis("none"),
            schedule=axis("sync", storage=storage),
            protocol=axis("verifier", static_every=2),
            seed=derive_seed(seed, "partition-census", n),
            completeness_rounds=rounds,
        )
        for n in sizes
    ]


#: the default KMW sweep cells ``(base_n, base_edges, tau)``; the last
#: cell subdivides past 10k nodes (memory-feasible on columnar per
#: PR 3 — the whole point of the sweep).
KMW_SWEEP_CELLS = ((60, 100, 1), (120, 200, 2), (200, 340, 4),
                   (320, 560, 6))


def kmw_sweep_campaign(cells: Sequence[Tuple[int, int, int]]
                       = KMW_SWEEP_CELLS,
                       seed: int = 0,
                       storage: str = "columnar",
                       rounds: int = 4,
                       max_rounds: int = 400) -> List[ScenarioSpec]:
    """KMW-style lower-bound sweep (PAPERS.md): verifier workloads on
    the Section-9 subdivided instances at growing ``tau`` — the graph
    family behind the Omega(log n) detection-time bound — at sizes the
    columnar backend makes memory-feasible (10k+ nodes at the largest
    default cell).

    Per cell, on the same instance (shared ``topology_seed``): a
    completeness scenario (honest labels, a few quiet rounds, memory
    accounting — the O(log n)-bits-per-node story at scale) and a
    scramble-detection scenario (settle-free injection: scrambled
    labels violate the 1-round static checks, so detection lands within
    a round or two even at 10k nodes — ``rounds_to_detection`` is the
    trend series the differ joins across commits)."""
    specs: List[ScenarioSpec] = []
    for base_n, extra, tau in cells:
        topo = axis("subdivided", base_n=base_n, extra=extra, tau=tau)
        proto = axis("verifier", static_every=2)
        schedule = axis("sync", storage=storage)
        tseed = derive_seed(seed, "kmw-instance", base_n, extra, tau)
        specs.append(ScenarioSpec(
            topology=topo, fault=Axis("none"), schedule=schedule,
            protocol=proto,
            seed=derive_seed(seed, "kmw-complete", base_n, extra, tau),
            topology_seed=tseed, completeness_rounds=rounds))
        specs.append(ScenarioSpec(
            topology=topo, fault=axis("scramble", count=2),
            schedule=schedule, protocol=proto,
            seed=derive_seed(seed, "kmw-detect", base_n, extra, tau),
            topology_seed=tseed, settle_rounds=0, max_rounds=max_rounds))
    return specs


#: the default tau-trend cells ``(base_n, base_edges, tau)``: one base
#: family, growing tau — the instance blow-up the Omega(log n)
#: comparison-phase bound rides on.
KMW_TAU_TREND_CELLS = ((8, 10, 1), (8, 10, 2), (8, 10, 3), (8, 10, 4))


def kmw_tau_trend_campaign(cells: Sequence[Tuple[int, int, int]]
                           = KMW_TAU_TREND_CELLS,
                           seed: int = 0,
                           storage: str = "columnar",
                           static_every: int = 4,
                           max_rounds: int = 200_000
                           ) -> List[ScenarioSpec]:
    """Comparison-phase detection time vs ``tau`` on the Section-9
    subdivided instances: the ``piece_lie`` fault (a lie on a stored
    piece's claimed minimum weight — the hardest detectable class,
    invisible to every static check) injected after settling, per
    growing ``tau``.

    This is the experiment the KMW sweep's scramble cells cannot see:
    scrambles trip the 1-round static checks, so their detection time
    is O(1) at every scale, while a piece lie must wait for the trains
    to rotate the lying piece past a comparison — the detection time
    that stretches with the subdivided instances' cycle structure
    (Omega(log n) via the Section-9 reduction).  The subdivided
    family's verification-safe re-weighting uses lexicographic tuple
    weights, which :func:`~repro.verification.adversary.heavier_weight`
    bumps like any other weight.  ``rounds_to_detection`` per tau is
    the JSONL trend series (join with ``python -m repro.engine diff``).
    """
    specs: List[ScenarioSpec] = []
    for base_n, extra, tau in cells:
        topo = axis("subdivided", base_n=base_n, extra=extra, tau=tau)
        specs.append(ScenarioSpec(
            topology=topo,
            fault=axis("piece_lie"),
            schedule=axis("sync", storage=storage),
            protocol=axis("verifier", static_every=static_every),
            seed=derive_seed(seed, "kmw-tau", base_n, extra, tau),
            topology_seed=derive_seed(seed, "kmw-instance", base_n,
                                      extra, tau),
            max_rounds=max_rounds))
    return specs


#: the default churn-recovery cells ``(n, events)``: instance size x
#: event-stream length over a fixed re-stabilization window.
CHURN_RECOVERY_CELLS = ((48, 4), (48, 8), (96, 4), (96, 8))


def churn_recovery_campaign(cells: Sequence[Tuple[int, int]]
                            = CHURN_RECOVERY_CELLS,
                            window: Optional[int] = None,
                            seed: int = 0,
                            storage: str = "columnar",
                            protocols: Optional[Sequence[Axis]] = None,
                            schedule_kind: str = "sync"
                            ) -> List[ScenarioSpec]:
    """E15 — re-stabilization under sustained churn (ROADMAP 4(b)).

    Per cell ``(n, events)``: settle honestly, then drive the
    seed-derived churn script — crash (never a cut vertex, at most one
    node down), rejoin (wiped working registers), reweight (non-MST
    edge, fresh larger weight) — giving each event a ``window``-round
    re-stabilization budget.  Sweeping ``events`` at a fixed window
    sweeps the *event rate* the network must absorb.  The default
    window scales with n: a rejoined node restarts its rotation
    counter, so re-quiescing costs a full re-rotation — the same order
    of rounds as the initial settle.

    The per-event metrics land on the scenario records
    (``rounds_to_redetect`` / ``rounds_to_quiesce`` /
    ``alarms_per_event`` / ``availability`` plus the differ-gated
    ``worst_*`` / ``unavailability`` scalars): crash events must
    re-detect, reweight events must *not* (the unique MST is
    preserved — a false-alarm immunity check), and the verifier family
    must re-quiesce inside the window.  All protocols in a cell share
    one ``topology_seed`` so the cross-protocol comparison runs on the
    same instance; sqlog has no settle predicate, so its quiesce column
    is structurally empty and only redetect/availability compare.
    """
    if protocols is None:
        protocols = (axis("verifier"), axis("hybrid"), axis("sqlog"))
    specs: List[ScenarioSpec] = []
    for n, events in cells:
        tseed = derive_seed(seed, "churn-instance", n)
        cell_window = window if window is not None else 25 * n + 100
        for proto in protocols:
            specs.append(ScenarioSpec(
                topology=axis("random", n=n, extra=int(0.8 * n)),
                fault=axis("churn", events=events, window=cell_window),
                schedule=axis(schedule_kind, storage=storage),
                protocol=proto,
                seed=derive_seed(seed, "churn-recovery", n, events,
                                 str(proto)),
                topology_seed=tseed,
            ))
    return specs


def paper_example_campaign(seed: int = 0,
                           rounds: int = 12) -> List[ScenarioSpec]:
    """The 18-node paper example (Figures 1-3 / Tables 1-2) as
    scenarios: honest labels under every protocol's label format, quiet
    completeness rounds, memory accounting.

    The label-table benchmarks (``bench_table2_strings``,
    ``bench_fig1_hierarchy``) run their figure/table derivations from
    the *same* instance via :func:`~repro.engine.scenarios.graph_for`
    and dump these records as JSONL, so the paper-example artifacts are
    a cross-commit trend series like every other campaign instead of a
    bespoke script.  (``bench_table1_selfstab_comparison`` stays
    bespoke: it compares published *models* from the literature table,
    not executable scenarios — see README.)"""
    protocols = (axis("verifier", static_every=2),
                 axis("hybrid", static_every=2), axis("sqlog"))
    return [
        ScenarioSpec(
            topology=Axis("paper"), fault=Axis("none"),
            schedule=axis("sync"), protocol=proto,
            seed=derive_seed(seed, "paper-example", str(proto)),
            completeness_rounds=rounds)
        for proto in protocols
    ]


def smoke_campaign(seed: int = 0) -> List[ScenarioSpec]:
    """A <=30s cross-section for CI: every axis exercised at least once."""
    specs = grid(
        topologies=(axis("random", n=10, extra=6), axis("ring", n=8)),
        faults=(axis("none"), axis("corrupt", count=1, fraction=0.6),
                axis("label_swap")),
        schedules=(axis("sync"), axis("permutation"),
                   axis("sync", storage="numpy")),
        seed=seed,
        completeness_rounds=200,
        max_rounds=4_000,
    )
    return [s for s in specs if spec_is_satisfiable(s)]
