"""Content-addressed warm-start cache for settled network state.

``WarmCache`` is a directory of :mod:`repro.sim.snapshot` wire-format
files, one per *semantic* settle configuration.  Before the settle
phase of an inject-fault scenario the engine computes :func:`warm_key`
and asks the cache; on a hit the settled state is restored instead of
re-executed, on a miss the freshly settled state is stored.  Cells of
one campaign, repeated campaign runs, and different implementation
configurations (storage backend, bulk plane, fast path, dirty
awareness) all share entries — those axes are proven bit-for-bit
equivalent, so they are deliberately *excluded* from the key.

The key covers exactly what determines the settled state:

* the topology axis and resolved topology seed;
* the protocol axis (label family + protocol params);
* the schedule axis **minus** ``IMPL_SCHEDULE_PARAMS`` — semantic
  schedule knobs (e.g. ``slow_nodes(count=...)``) change the key, the
  implementation-only ones cannot (``tests/test_snapshot_restore.py``
  enumerates the registries to keep that invariant honest);
* for asynchronous schedules the resolved daemon seed (settling
  consumes daemon randomness; synchronous settling is seed-free);
* the settle horizon.

Failure policy: a cache must never crash a campaign and never be
silently wrong.  Unreadable, truncated, or bit-flipped entries fail
the snapshot checksum, emit a :class:`WarmCacheWarning`, and count as
a miss (the subsequent cold settle overwrites the bad entry); a payload
that fails validation against the freshly built network does the same
at the restore site.  All writes are atomic (temp file + rename), so
concurrent campaign workers can share one directory.

The active cache is ambient per process (:func:`set_warm_cache` /
:func:`get_warm_cache`): scenario code stays signature-stable and
multiprocessing workers inherit the cache through a pool initializer
rather than through every task tuple.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import warnings
from typing import Any, Dict, Mapping, Optional

from ..sim.snapshot import SnapshotError, decode_snapshot, encode_snapshot
from .spec import IMPL_SCHEDULE_PARAMS, ScenarioSpec

__all__ = ["CACHE_VERSION", "WarmCache", "WarmCacheWarning", "warm_key",
           "SEMANTIC_FAULT_KINDS", "mark_fault_semantic",
           "get_warm_cache", "set_warm_cache"]

#: bumped whenever key derivation or payload semantics change — old
#: entries then simply never hit again
CACHE_VERSION = 1

#: fault kinds whose axis (kind + every parameter) is part of the warm
#: key.  Ordinary injection faults apply *after* the settle phase, so
#: their parameters cannot influence the cached state and stay out of
#: the key (cells differing only in fault share one settle).  Faults
#: that go on to mutate the *topology* (churn) are keyed in full:
#: their cells must never alias a static-topology settle snapshot —
#: the restore-time topology signature would reject a mismatch, but a
#: semantic key keeps hit accounting honest instead of turning every
#: churned cell into a warned fallback.
SEMANTIC_FAULT_KINDS: set = set()


def mark_fault_semantic(kind: str) -> None:
    """Declare a fault kind's full axis semantic for :func:`warm_key`
    (registries call this next to ``register_fault``)."""
    SEMANTIC_FAULT_KINDS.add(kind)


class WarmCacheWarning(UserWarning):
    """A warm-cache entry could not be used (corrupt, truncated, or
    unrestorable); the scenario fell back to a cold settle."""


def warm_key(spec: ScenarioSpec, synchronous: bool, settle_budget: int,
             topology_seed: int, daemon_seed: int) -> str:
    """Content address of ``spec``'s settled state (hex sha256).

    ``topology_seed`` and ``daemon_seed`` must be the *resolved* seeds
    the scenario will actually run with; ``settle_budget`` the resolved
    round budget.  Synchronous settling is deterministic given topology
    and protocol, so the daemon seed only enters for asynchronous
    schedules — synchronous fault cells that differ only in fault axis
    or base seed share one entry."""
    parts = [
        f"v{CACHE_VERSION}",
        f"topology={spec.topology}",
        f"topology_seed={topology_seed}",
        f"protocol={spec.protocol}",
        f"schedule={spec.schedule.without(IMPL_SCHEDULE_PARAMS)}",
        "sync" if synchronous else f"daemon_seed={daemon_seed}",
        f"settle={settle_budget}",
    ]
    if spec.fault.kind in SEMANTIC_FAULT_KINDS:
        parts.append(f"fault={spec.fault}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


class WarmCache:
    """On-disk snapshot cache rooted at ``root`` (created lazily).

    ``restore=False`` turns the cache populate-only: every lookup
    misses, but settled state is still stored — the honest way to
    measure a cold pass while leaving a warm cache behind
    (``--no-warm-start``)."""

    def __init__(self, root: str, restore: bool = True) -> None:
        self.root = root
        self.restore = restore
        #: lookup accounting for this process (campaign workers each
        #: count their own; records carry the per-scenario outcome)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> str:
        return os.path.join(self.root, key + ".snap")

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The decoded payload for ``key``, or ``None`` on a miss.
        Corrupt entries warn and miss; they are repaired by the store
        that follows the cold settle."""
        if not self.restore:
            return None
        path = self.path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            warnings.warn(f"warm cache entry {path} unreadable ({exc}); "
                          f"settling cold", WarmCacheWarning,
                          stacklevel=2)
            self.misses += 1
            return None
        try:
            payload = decode_snapshot(blob)
        except SnapshotError as exc:
            warnings.warn(f"warm cache entry {path} rejected ({exc}); "
                          f"settling cold", WarmCacheWarning,
                          stacklevel=2)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: Mapping[str, Any]) -> bool:
        """Atomically write ``payload`` under ``key`` (overwriting any
        stale or corrupt entry).  Best-effort: a full disk or unwritable
        directory warns instead of failing the scenario."""
        path = self.path(key)
        try:
            os.makedirs(self.root, exist_ok=True)
            blob = encode_snapshot(payload)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            warnings.warn(f"warm cache entry {path} not stored ({exc})",
                          WarmCacheWarning, stacklevel=2)
            return False
        return True


_ACTIVE: Optional[WarmCache] = None


def get_warm_cache() -> Optional[WarmCache]:
    """The process-ambient cache scenarios consult (``None`` = cold)."""
    return _ACTIVE


def set_warm_cache(cache: Optional[WarmCache]) -> Optional[WarmCache]:
    """Install ``cache`` as the ambient cache; returns the previous one
    so callers can restore it (the runner brackets its runs)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    return previous
