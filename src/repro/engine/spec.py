"""Declarative scenario specifications.

A :class:`ScenarioSpec` pins down one verification experiment completely:
a topology generator, a fault recipe, a scheduler/daemon, a protocol —
each an :class:`Axis` (a registry kind plus frozen parameters) — and one
integer seed from which every random choice in the scenario (weights,
fault sites, daemon shuffles) is derived deterministically.  Specs are
immutable, hashable, and picklable, so a campaign can fan them out over
worker processes and still reproduce any single scenario from its spec
alone.

:func:`grid` expands axis lists into the cartesian product of specs.
Per-scenario seeds are derived by hashing the campaign seed with the
scenario's axis key (not its position), so adding a value to one axis
never reshuffles the seeds of existing scenarios.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from itertools import product
from typing import Any, Iterable, List, Mapping, Optional, Tuple

Params = Tuple[Tuple[str, Any], ...]

#: schedule parameters that select an *implementation* (storage backend,
#: scheduler fast path, dirty awareness, the bulk-activation plane)
#: rather than a different experiment: they are excluded from the seed
#: derivation so that flipping them reproduces the exact same scenario —
#: the storage/bulk differential tests depend on this, and so does
#: comparing benchmark trends across backends.
IMPL_SCHEDULE_PARAMS = frozenset({"storage", "fast_path", "dirty_aware",
                                  "bulk", "coalesce", "vec_min_batch"})


def _freeze(params: Mapping[str, Any]) -> Params:
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class Axis:
    """One scenario dimension: a registered kind plus its parameters."""

    kind: str
    params: Params = ()

    def param_dict(self) -> dict:
        return dict(self.params)

    def get(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def without(self, names) -> "Axis":
        """This axis minus the given parameter names."""
        kept = tuple((k, v) for k, v in self.params if k not in names)
        return self if kept == self.params else Axis(self.kind, kept)

    def __str__(self) -> str:
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"


def axis(kind: str, **params: Any) -> Axis:
    """Convenience constructor: ``axis("grid", rows=3, cols=4)``."""
    return Axis(kind, _freeze(params))


# the four roles, purely for readable campaign definitions
topology = axis
fault = axis
schedule = axis
protocol = axis


def derive_seed(base: int, *salts: Any) -> int:
    """A stable 63-bit seed from ``base`` and arbitrary salt values.

    Uses sha256 (never Python's salted ``hash``) so the derivation is
    identical across processes and interpreter runs.
    """
    text = "|".join([str(int(base))] + [str(s) for s in salts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully pinned-down scenario (see module docstring)."""

    topology: Axis
    fault: Axis = Axis("none")
    schedule: Axis = Axis("sync")
    protocol: Axis = Axis("verifier")
    seed: int = 0
    #: rounds granted to reach steady state before injection (None: derive
    #: from the protocol's budgets for the instance).
    settle_rounds: Optional[int] = None
    #: round budget for detection after the fault (None: derive).
    max_rounds: Optional[int] = None
    #: rounds a no-fault (completeness) scenario is observed for (None:
    #: derive; completeness runs cannot stop early, so this bounds cost).
    completeness_rounds: Optional[int] = None
    #: explicit topology seed (None: derive from the scenario seed).  Set
    #: it to the same value across specs that must run on the *same*
    #: graph instance — e.g. paired protocol comparisons — which the
    #: derived seed cannot provide because it hashes the full axis key.
    topology_seed: Optional[int] = None

    @property
    def key(self) -> str:
        """Compact, unique, human-readable identity of the scenario."""
        return (f"{self.topology}/{self.fault}/{self.schedule}/"
                f"{self.protocol}")

    @property
    def semantic_key(self) -> str:
        """The key minus implementation-only schedule parameters
        (:data:`IMPL_SCHEDULE_PARAMS`): two specs with the same semantic
        key run the same experiment, possibly on different backends."""
        sched = self.schedule.without(IMPL_SCHEDULE_PARAMS)
        return f"{self.topology}/{self.fault}/{sched}/{self.protocol}"

    def derived_seed(self, role: str) -> int:
        """The sub-seed feeding one random component of the scenario.

        Derived from the *semantic* key, so storage/fast-path toggles
        never reshuffle the graph, fault sites, or daemon schedule."""
        return derive_seed(self.seed, self.semantic_key, role)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)


def grid(topologies: Iterable[Axis],
         faults: Iterable[Axis] = (Axis("none"),),
         schedules: Iterable[Axis] = (Axis("sync"),),
         protocols: Iterable[Axis] = (Axis("verifier"),),
         seed: int = 0,
         settle_rounds: Optional[int] = None,
         max_rounds: Optional[int] = None,
         completeness_rounds: Optional[int] = None) -> List[ScenarioSpec]:
    """The cartesian product of the axis values, seeded per scenario.

    ``seed`` is the campaign seed; each scenario receives
    ``derive_seed(seed, key)`` so the whole campaign reproduces from one
    integer and any single scenario reproduces from its spec.
    """
    specs: List[ScenarioSpec] = []
    for topo, flt, sched, proto in product(topologies, faults, schedules,
                                           protocols):
        spec = ScenarioSpec(topology=topo, fault=flt, schedule=sched,
                            protocol=proto, seed=0,
                            settle_rounds=settle_rounds,
                            max_rounds=max_rounds,
                            completeness_rounds=completeness_rounds)
        # semantic key: cells differing only in implementation parameters
        # (storage backend, fast path) share a seed, so backend sweeps
        # are paired comparisons on the same instances
        specs.append(spec.with_seed(derive_seed(seed, spec.semantic_key)))
    return specs
