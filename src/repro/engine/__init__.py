"""Scenario campaign engine: declarative, seeded, parallel experiments.

Turns the ad-hoc benchmark scripts into campaigns: a
:class:`ScenarioSpec` pins one experiment (topology x fault x
scheduler/daemon x protocol, one seed), :func:`grid` expands axis lists
into a sweep, and :class:`CampaignRunner` fans the sweep out over worker
processes and aggregates structured :class:`ScenarioResult` objects into
a :class:`CampaignResult`.

>>> from repro.engine import axis, grid, run_campaign
>>> specs = grid(topologies=[axis("random", n=12, extra=8)],
...              faults=[axis("none"), axis("corrupt", count=1)],
...              schedules=[axis("sync")], seed=7)
>>> result = run_campaign(specs, workers=1)
>>> [r.violation for r in result]
[None, None]

``python -m repro.engine`` runs the CI smoke campaign.
"""

from .campaigns import (adversarial_labeling_matrix,
                        churn_recovery_campaign,
                        detection_distance_campaign,
                        detection_time_campaign, kmw_sweep_campaign,
                        kmw_tau_trend_campaign, memory_campaign,
                        paper_example_campaign,
                        partition_census_campaign, smoke_campaign,
                        soundness_completeness_matrix)
from .differ import (DiffConfig, DiffResult, diff_paths, diff_records,
                     record_failure)
from .manifest import (CampaignManifest, ManifestWarning,
                       result_from_record)
from .runner import (CampaignResult, CampaignRunner, dump_jsonl,
                     run_campaign, scenario_record)
from .scenarios import (FAILURE_STATUSES, FAULTS, PROTOCOLS, SCHEDULES,
                        STATUS_CRASHED, STATUS_ERROR, STATUS_OK,
                        STATUS_QUARANTINED, STATUS_TIMEOUT,
                        TERMINAL_STATUSES, TOPOLOGIES, FaultEntry,
                        ProtocolEntry, ScenarioError, ScenarioResult,
                        clear_instance_cache, graph_for, register_fault,
                        register_protocol, register_schedule,
                        register_topology, run_scenario,
                        runtime_registered_axes, spec_is_satisfiable)
from .supervise import (CampaignInterrupted, ChaosError, ChaosPolicy,
                        SuperviseConfig, run_supervised, size_hint)
from .spec import Axis, ScenarioSpec, axis, derive_seed, grid
from .warmcache import (SEMANTIC_FAULT_KINDS, WarmCache, WarmCacheWarning,
                        get_warm_cache, mark_fault_semantic,
                        set_warm_cache, warm_key)

__all__ = [
    "Axis", "ScenarioSpec", "axis", "derive_seed", "grid",
    "ScenarioError", "ScenarioResult", "run_scenario",
    "spec_is_satisfiable", "clear_instance_cache", "graph_for",
    "runtime_registered_axes",
    "STATUS_OK", "STATUS_ERROR", "STATUS_TIMEOUT", "STATUS_CRASHED",
    "STATUS_QUARANTINED", "TERMINAL_STATUSES", "FAILURE_STATUSES",
    "FAULTS", "PROTOCOLS", "SCHEDULES", "TOPOLOGIES",
    "FaultEntry", "ProtocolEntry",
    "register_fault", "register_protocol", "register_schedule",
    "register_topology",
    "CampaignResult", "CampaignRunner", "run_campaign",
    "dump_jsonl", "scenario_record",
    "adversarial_labeling_matrix", "churn_recovery_campaign",
    "detection_time_campaign", "detection_distance_campaign",
    "kmw_sweep_campaign", "kmw_tau_trend_campaign", "memory_campaign",
    "paper_example_campaign",
    "partition_census_campaign", "smoke_campaign",
    "soundness_completeness_matrix",
    "DiffConfig", "DiffResult", "diff_paths", "diff_records",
    "record_failure",
    "CampaignManifest", "ManifestWarning", "result_from_record",
    "CampaignInterrupted", "ChaosError", "ChaosPolicy",
    "SuperviseConfig", "run_supervised", "size_hint",
    "WarmCache", "WarmCacheWarning", "warm_key",
    "get_warm_cache", "set_warm_cache",
    "SEMANTIC_FAULT_KINDS", "mark_fault_semantic",
]
