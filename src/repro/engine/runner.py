"""Campaign execution: fan scenarios out under supervision, aggregate.

``CampaignRunner.run`` takes any iterable of
:class:`~repro.engine.spec.ScenarioSpec` (typically from
:func:`~repro.engine.spec.grid` or a builder in
:mod:`repro.engine.campaigns`), executes every scenario — in-process
when ``workers <= 1``, over *supervised* worker processes otherwise
(:mod:`repro.engine.supervise`) — and returns a :class:`CampaignResult`
that keeps the results aligned with the input specs and answers the
campaign-level questions: which scenarios violated completeness or
soundness, how detection time and memory distribute per axis value, and
how long the sweep took.

Every scenario ends in a structured terminal status
(:data:`~repro.engine.scenarios.TERMINAL_STATUSES`): a scenario that
raises becomes an ``error`` result carrying the exception type and a
bounded traceback tail; under supervision a crashed worker's cell is
retried on a fresh worker, a cell exceeding its per-cell timeout is
terminated, and retry-exhausted cells are quarantined — one broken,
hung, or OOM-killed cell never aborts or wedges a sweep.

With a ``manifest`` directory the runner streams each terminal record
to a JSONL shard plus a completed-key index as it lands
(:mod:`repro.engine.manifest`); ``resume=True`` then re-runs only the
cells missing from the index and reassembles the rest, so a killed
campaign continues where it stopped and its merged dump matches an
uninterrupted run on every deterministic field.  ``KeyboardInterrupt``
flushes completed results and raises
:class:`~repro.engine.supervise.CampaignInterrupted` with them
attached.

Runtime-registered axis kinds (``register_topology`` etc.) live in the
parent process's registries; workers inherit them only under the
``fork`` start method (the Linux default).  Under ``spawn``
(macOS/Windows default) the runner fails fast with the offending kinds
by name (see :func:`~repro.engine.scenarios.runtime_registered_axes`)
instead of letting workers die on an opaque ``KeyError``; pass a
module-level ``worker_init`` callable that performs the registrations
(it runs in every fresh worker), use ``mp_context="fork"``, or run with
``workers=1``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .manifest import CampaignManifest, result_from_record
from .scenarios import (STATUS_OK, ScenarioError, ScenarioResult,
                        runtime_registered_axes)
from .spec import ScenarioSpec
from .supervise import (CampaignInterrupted, SuperviseConfig, _run_one,
                        run_supervised)
from .warmcache import WarmCache, get_warm_cache, set_warm_cache


def scenario_record(result: ScenarioResult) -> Dict[str, Any]:
    """One scenario result as a flat JSON-serializable record.

    The spec is recorded both as its compact ``key`` (the stable join
    field for cross-commit trend comparisons) and as the exploded axis
    kinds/params, so downstream tooling can group without re-parsing.
    """
    spec = result.spec
    rec: Dict[str, Any] = {
        "key": spec.key,
        "seed": spec.seed,
        "topology": str(spec.topology),
        "fault": str(spec.fault),
        "schedule": str(spec.schedule),
        "protocol": str(spec.protocol),
        "n": result.n,
        "expected_detection": result.expected_detection,
        "detected": result.detected,
        "premature_alarm": result.premature_alarm,
        "violation": result.violation,
        "settle_rounds": result.settle_rounds,
        "rounds_run": result.rounds_run,
        "rounds_to_detection": result.rounds_to_detection,
        "detection_distance": result.detection_distance,
        "max_memory_bits": result.max_memory_bits,
        "total_memory_bits": result.total_memory_bits,
        "alarm_count": result.alarm_count,
        "alarm_reasons": list(result.alarm_reasons),
        "faulty_nodes": [str(v) for v in result.faulty_nodes],
        "activations": result.activations,
        "super_batches": result.super_batches,
        "batches_coalesced": result.batches_coalesced,
        "rows_fused": result.rows_fused,
        "rows_residual": result.rows_residual,
        "rows_scalar": result.rows_scalar,
        "plan_rebuilds": result.plan_rebuilds,
        "plan_refreshes": result.plan_refreshes,
        "churn_events": result.churn_events,
        "rounds_to_redetect": list(result.rounds_to_redetect) or None,
        "rounds_to_quiesce": list(result.rounds_to_quiesce) or None,
        "alarms_per_event": list(result.alarms_per_event) or None,
        "availability": (None if result.availability is None
                         else round(result.availability, 6)),
        # None-safe scalar aggregates of the per-event tuples, shaped
        # so "bigger is worse" and the differ can gate them like
        # rounds_to_detection (unavailability inverts availability for
        # exactly that reason)
        "worst_redetect": max(
            (r for r in result.rounds_to_redetect if r is not None),
            default=None),
        "worst_quiesce": max(
            (q for q in result.rounds_to_quiesce if q is not None),
            default=None),
        "unavailability": (None if result.availability is None
                           else round(1.0 - result.availability, 6)),
        "wall_time": round(result.wall_time, 6),
        "cache_hit": result.cache_hit,
        "settle_rounds_saved": result.settle_rounds_saved,
        "error": result.error,
        "status": result.status,
        "error_type": result.error_type,
        "error_trace": list(result.error_trace),
        "attempts": result.attempts,
    }
    return rec


def dump_jsonl(results: Iterable[ScenarioResult], path: str) -> int:
    """Append-free JSONL dump: one record per scenario; returns count.

    A campaign dumped on every benchmark commit gives a comparable
    per-scenario trend series (join on ``key`` + ``seed``)."""
    count = 0
    with open(path, "w") as fh:
        for r in results:
            fh.write(json.dumps(scenario_record(r), sort_keys=True) + "\n")
            count += 1
    return count


@dataclass(frozen=True)
class CampaignResult:
    """All scenario results of one campaign, in spec order."""

    results: Tuple[ScenarioResult, ...]
    wall_time: float
    workers: int
    #: results reassembled from a manifest instead of executed (resume).
    resumed: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    # -- campaign-level verdicts ---------------------------------------
    def violations(self) -> List[ScenarioResult]:
        """Scenarios that falsified completeness/soundness or failed to
        execute (``error``/``timeout``/``crashed``/``quarantined``)."""
        return [r for r in self.results if not r.ok]

    def completeness_violations(self) -> List[ScenarioResult]:
        return [r for r in self.results
                if r.violation == "completeness"]

    def soundness_violations(self) -> List[ScenarioResult]:
        return [r for r in self.results if r.violation == "soundness"]

    def errors(self) -> List[ScenarioResult]:
        return [r for r in self.results if r.error is not None]

    def statuses(self) -> Dict[str, int]:
        """Terminal-status histogram (``ok``/``error``/``timeout``/
        ``crashed``/``quarantined``)."""
        counts: Dict[str, int] = {}
        for r in self.results:
            counts[r.status] = counts.get(r.status, 0) + 1
        return counts

    # -- aggregation ----------------------------------------------------
    def by(self, role: str) -> Dict[str, List[ScenarioResult]]:
        """Group results by one axis (``"topology"``, ``"fault"``,
        ``"schedule"``, ``"protocol"``)."""
        groups: Dict[str, List[ScenarioResult]] = {}
        for r in self.results:
            groups.setdefault(str(getattr(r.spec, role)), []).append(r)
        return groups

    def rows(self, *fields: str) -> List[List]:
        """Extract result attributes as table rows (benchmark plumbing)."""
        return [[getattr(r, f) for f in fields] for r in self.results]

    def dump_jsonl(self, path: str) -> int:
        """Persist every scenario result as one JSON line; returns the
        number of records written (see :func:`dump_jsonl`)."""
        return dump_jsonl(self.results, path)

    def summary(self) -> str:
        """A human-readable campaign report."""
        from ..analysis import format_table
        head = (f"{len(self.results)} scenarios in {self.wall_time:.1f}s "
                f"({self.workers} worker(s)); "
                f"{len(self.violations())} violation(s), "
                f"{len(self.errors())} error(s)")
        if self.resumed:
            head += f"; {self.resumed} resumed from manifest"
        lines = [head]
        counts = self.statuses()
        if set(counts) != {STATUS_OK} and counts:
            lines.append("statuses: " + ", ".join(
                f"{status}={n}" for status, n in sorted(counts.items())))
        rows = []
        for key, group in sorted(self.by("fault").items()):
            detected = sum(1 for r in group if r.detected)
            times = [r.rounds_to_detection for r in group
                     if r.rounds_to_detection is not None]
            rows.append([
                key, len(group), detected,
                max(times) if times else "-",
                max(r.max_memory_bits for r in group),
                sum(1 for r in group if not r.ok),
            ])
        lines.append(format_table(
            ["fault", "runs", "detected", "worst detection rounds",
             "max memory bits", "violations"], rows))
        tiers = sorted({r.spec.schedule.get("storage", "dict")
                        for r in self.results})
        if tiers:
            note = ""
            if "numpy" in tiers:
                from ..sim.npcolumnar import numpy_or_none
                note = (" (vectorized numpy tier active)"
                        if numpy_or_none() is not None else
                        " (numpy unavailable: degraded to columnar)")
            lines.append("storage tiers: " + ", ".join(tiers) + note)
        bad = self.violations()
        if bad:
            lines.append("violating scenarios:")
            lines.extend(f"  {r.spec.key} seed={r.spec.seed}: "
                         f"{r.violation}" for r in bad[:10])
        return "\n".join(lines)


class CampaignRunner:
    """Expands nothing, assumes nothing: runs the specs it is given.

    ``workers=None`` picks ``min(len(specs), cpu_count)``; ``workers=1``
    (or a single spec) runs inline, which keeps tracebacks pristine and
    lets the per-process instance cache accumulate across campaigns.
    With more workers the specs are dispatched one at a time to
    supervised worker processes (:func:`~repro.engine.supervise.
    run_supervised`): crashed workers are detected and their cells
    retried, cells exceeding ``supervise.timeout_for(spec)`` are
    terminated, and every cell ends in a terminal status.

    ``supervise`` (a :class:`~repro.engine.supervise.SuperviseConfig`)
    sets timeouts, attempt budgets, backoff, the chaos hook, and
    ``worker_init``; the default config has no deadline and one crash
    retry.  The chaos hook only applies to supervised workers — the
    inline path cannot survive a crash or hang of its own process.

    ``manifest`` (a :class:`~repro.engine.manifest.CampaignManifest`
    or a directory path) streams every terminal record to a JSONL
    shard + completed-key index as it lands; ``resume=True`` re-runs
    only the cells missing from the index and reassembles the rest
    (``CampaignResult.resumed`` counts them).

    ``warm_cache`` (a :class:`~repro.engine.warmcache.WarmCache` or a
    directory path) warm-starts inject-fault scenarios from settled
    snapshots: cells sharing a settle configuration restore instead of
    re-settling, across fault cells within the run and across runs over
    the same directory.  The cache is installed ambiently for the run —
    inline or in each supervised worker — and the previous ambient
    cache is put back afterwards; without the parameter an
    already-ambient cache (``set_warm_cache``) is honored.
    """

    def __init__(self, workers: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 warm_cache: Optional[Any] = None,
                 supervise: Optional[SuperviseConfig] = None,
                 manifest: Optional[Any] = None,
                 resume: bool = False) -> None:
        self.workers = workers
        self.mp_context = mp_context
        if isinstance(warm_cache, str):
            warm_cache = WarmCache(warm_cache)
        self.warm_cache: Optional[WarmCache] = warm_cache
        self.supervise = supervise or SuperviseConfig()
        if isinstance(manifest, str):
            manifest = CampaignManifest(manifest)
        self.manifest: Optional[CampaignManifest] = manifest
        self.resume = resume
        if resume and manifest is None:
            raise ValueError("resume=True requires a manifest")

    def _check_spawn_safe(self, specs: List[ScenarioSpec]) -> None:
        """Fail fast when runtime-registered axes cannot reach spawned
        workers (satellite: the opaque in-worker KeyError this used to
        surface as)."""
        method = multiprocessing.get_context(
            self.mp_context).get_start_method()
        if method == "fork" or self.supervise.worker_init is not None:
            return
        rogue = runtime_registered_axes(specs)
        if not rogue:
            return
        detail = "; ".join(f"{role} kind(s) {kinds}"
                           for role, kinds in rogue.items())
        raise ScenarioError(
            f"campaign uses runtime-registered {detail}, but the "
            f"{method!r} start method re-imports the registries in "
            f"every worker, so those registrations would be missing "
            f"(workers die with an opaque KeyError). Workarounds: pass "
            f"a module-level worker_init callable that performs the "
            f"register_* calls (SuperviseConfig(worker_init=...)), use "
            f"mp_context='fork', or run with workers=1.")

    def run(self, specs: Iterable[ScenarioSpec],
            progress: Optional[Callable[[int, int, ScenarioResult],
                                        None]] = None) -> CampaignResult:
        spec_list = list(specs)
        start = time.perf_counter()

        # resume: split completed cells (reassembled from the manifest)
        # from the cells still to run
        slots: List[Optional[ScenarioResult]] = [None] * len(spec_list)
        todo: List[Tuple[int, ScenarioSpec]] = list(enumerate(spec_list))
        resumed = 0
        if self.manifest is not None and self.resume:
            recorded = self.manifest.records()
            todo = []
            for i, spec in enumerate(spec_list):
                rec = recorded.get((spec.key, spec.seed))
                if rec is not None:
                    slots[i] = result_from_record(spec, rec)
                    resumed += 1
                else:
                    todo.append((i, spec))

        workers = self.workers
        if workers is None:
            workers = min(len(todo), os.cpu_count() or 1) or 1
        active = self.warm_cache if self.warm_cache is not None \
            else get_warm_cache()

        writer = self.manifest.open_writer() \
            if self.manifest is not None and todo else None
        executed = 0

        def land(idx: int, result: ScenarioResult) -> None:
            """A cell reached terminal status: stream it, then report."""
            nonlocal executed
            slots[idx] = result
            executed += 1
            if writer is not None:
                writer.append(scenario_record(result))
            if progress is not None:
                progress(resumed + executed, len(spec_list), result)

        try:
            if workers <= 1 or len(todo) <= 1:
                workers = 1
                previous = set_warm_cache(active)
                try:
                    for i, spec in todo:
                        land(i, _run_one(spec))
                except KeyboardInterrupt:
                    raise CampaignInterrupted(
                        [r for r in slots if r is not None],
                        len(spec_list)) from None
                finally:
                    set_warm_cache(previous)
            else:
                self._check_spawn_safe([spec for _, spec in todo])
                try:
                    run_supervised(
                        [spec for _, spec in todo], workers,
                        config=self.supervise,
                        mp_context=self.mp_context,
                        warm_root=active.root if active else None,
                        warm_restore=active.restore if active else True,
                        on_result=lambda pos, result: land(
                            todo[pos][0], result))
                except CampaignInterrupted:
                    raise CampaignInterrupted(
                        [r for r in slots if r is not None],
                        len(spec_list)) from None
        finally:
            if writer is not None:
                writer.close()

        return CampaignResult(
            results=tuple(r for r in slots if r is not None),
            wall_time=time.perf_counter() - start,
            workers=workers, resumed=resumed)


def run_campaign(specs: Iterable[ScenarioSpec],
                 workers: Optional[int] = None,
                 warm_cache: Optional[Any] = None,
                 **kwargs: Any) -> CampaignResult:
    """One-call convenience: ``CampaignRunner(...).run(specs)``."""
    return CampaignRunner(workers=workers, warm_cache=warm_cache,
                          **kwargs).run(specs)
