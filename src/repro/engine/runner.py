"""Campaign execution: fan scenarios out over processes, aggregate.

``CampaignRunner.run`` takes any iterable of
:class:`~repro.engine.spec.ScenarioSpec` (typically from
:func:`~repro.engine.spec.grid` or a builder in
:mod:`repro.engine.campaigns`), executes every scenario — in-process
when ``workers <= 1``, over a ``multiprocessing`` pool otherwise — and
returns a :class:`CampaignResult` that keeps the results aligned with
the input specs and answers the campaign-level questions: which
scenarios violated completeness or soundness, how detection time and
memory distribute per axis value, and how long the sweep took.

A scenario that raises is converted into a ``ScenarioResult`` carrying
the error string, so one broken spec never aborts a sweep.

Runtime-registered axis kinds (``register_topology`` etc.) live in the
parent process's registries; workers inherit them only under the
``fork`` start method (the Linux default).  Under ``spawn``
(macOS/Windows default) put the registrations in an importable module
that runs at import time, or use ``workers=1`` — registered builders
are arbitrary callables (often lambdas), so they cannot be shipped to
spawn workers with the spec.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .scenarios import ScenarioResult, run_scenario
from .spec import ScenarioSpec
from .warmcache import WarmCache, get_warm_cache, set_warm_cache


def scenario_record(result: ScenarioResult) -> Dict[str, Any]:
    """One scenario result as a flat JSON-serializable record.

    The spec is recorded both as its compact ``key`` (the stable join
    field for cross-commit trend comparisons) and as the exploded axis
    kinds/params, so downstream tooling can group without re-parsing.
    """
    spec = result.spec
    rec: Dict[str, Any] = {
        "key": spec.key,
        "seed": spec.seed,
        "topology": str(spec.topology),
        "fault": str(spec.fault),
        "schedule": str(spec.schedule),
        "protocol": str(spec.protocol),
        "n": result.n,
        "expected_detection": result.expected_detection,
        "detected": result.detected,
        "premature_alarm": result.premature_alarm,
        "violation": result.violation,
        "settle_rounds": result.settle_rounds,
        "rounds_run": result.rounds_run,
        "rounds_to_detection": result.rounds_to_detection,
        "detection_distance": result.detection_distance,
        "max_memory_bits": result.max_memory_bits,
        "total_memory_bits": result.total_memory_bits,
        "alarm_count": result.alarm_count,
        "alarm_reasons": list(result.alarm_reasons),
        "faulty_nodes": [str(v) for v in result.faulty_nodes],
        "activations": result.activations,
        "wall_time": round(result.wall_time, 6),
        "cache_hit": result.cache_hit,
        "settle_rounds_saved": result.settle_rounds_saved,
        "error": result.error,
    }
    return rec


def dump_jsonl(results: Iterable[ScenarioResult], path: str) -> int:
    """Append-free JSONL dump: one record per scenario; returns count.

    A campaign dumped on every benchmark commit gives a comparable
    per-scenario trend series (join on ``key`` + ``seed``)."""
    count = 0
    with open(path, "w") as fh:
        for r in results:
            fh.write(json.dumps(scenario_record(r), sort_keys=True) + "\n")
            count += 1
    return count


def _pool_warm_init(warm_root: Optional[str], warm_restore: bool) -> None:
    """Pool initializer: install the warm-start cache in each worker.

    The cache ships as (root, restore) rather than as an object so the
    initializer works under both ``fork`` and ``spawn`` start methods;
    per-worker hit/miss counters stay local, the per-scenario outcome
    travels back in the results."""
    if warm_root is not None:
        set_warm_cache(WarmCache(warm_root, restore=warm_restore))


def _run_one(spec: ScenarioSpec) -> ScenarioResult:
    """Worker entry point: never raises (module-level for pickling)."""
    try:
        return run_scenario(spec)
    except Exception as exc:  # noqa: BLE001 - campaign must survive
        detail = traceback.format_exc(limit=2).strip().splitlines()[-1]
        return ScenarioResult(
            spec=spec, error=f"{type(exc).__name__}: {exc} [{detail}]")


@dataclass(frozen=True)
class CampaignResult:
    """All scenario results of one campaign, in spec order."""

    results: Tuple[ScenarioResult, ...]
    wall_time: float
    workers: int

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    # -- campaign-level verdicts ---------------------------------------
    def violations(self) -> List[ScenarioResult]:
        """Scenarios that falsified completeness/soundness or errored."""
        return [r for r in self.results if not r.ok]

    def completeness_violations(self) -> List[ScenarioResult]:
        return [r for r in self.results
                if r.violation == "completeness"]

    def soundness_violations(self) -> List[ScenarioResult]:
        return [r for r in self.results if r.violation == "soundness"]

    def errors(self) -> List[ScenarioResult]:
        return [r for r in self.results if r.error is not None]

    # -- aggregation ----------------------------------------------------
    def by(self, role: str) -> Dict[str, List[ScenarioResult]]:
        """Group results by one axis (``"topology"``, ``"fault"``,
        ``"schedule"``, ``"protocol"``)."""
        groups: Dict[str, List[ScenarioResult]] = {}
        for r in self.results:
            groups.setdefault(str(getattr(r.spec, role)), []).append(r)
        return groups

    def rows(self, *fields: str) -> List[List]:
        """Extract result attributes as table rows (benchmark plumbing)."""
        return [[getattr(r, f) for f in fields] for r in self.results]

    def dump_jsonl(self, path: str) -> int:
        """Persist every scenario result as one JSON line; returns the
        number of records written (see :func:`dump_jsonl`)."""
        return dump_jsonl(self.results, path)

    def summary(self) -> str:
        """A human-readable campaign report."""
        from ..analysis import format_table
        lines = [
            f"{len(self.results)} scenarios in {self.wall_time:.1f}s "
            f"({self.workers} worker(s)); "
            f"{len(self.violations())} violation(s), "
            f"{len(self.errors())} error(s)",
        ]
        rows = []
        for key, group in sorted(self.by("fault").items()):
            detected = sum(1 for r in group if r.detected)
            times = [r.rounds_to_detection for r in group
                     if r.rounds_to_detection is not None]
            rows.append([
                key, len(group), detected,
                max(times) if times else "-",
                max(r.max_memory_bits for r in group),
                sum(1 for r in group if not r.ok),
            ])
        lines.append(format_table(
            ["fault", "runs", "detected", "worst detection rounds",
             "max memory bits", "violations"], rows))
        tiers = sorted({r.spec.schedule.get("storage", "dict")
                        for r in self.results})
        if tiers:
            note = ""
            if "numpy" in tiers:
                from ..sim.npcolumnar import numpy_or_none
                note = (" (vectorized numpy tier active)"
                        if numpy_or_none() is not None else
                        " (numpy unavailable: degraded to columnar)")
            lines.append("storage tiers: " + ", ".join(tiers) + note)
        bad = self.violations()
        if bad:
            lines.append("violating scenarios:")
            lines.extend(f"  {r.spec.key} seed={r.spec.seed}: "
                         f"{r.violation}" for r in bad[:10])
        return "\n".join(lines)


class CampaignRunner:
    """Expands nothing, assumes nothing: runs the specs it is given.

    ``workers=None`` picks ``min(len(specs), cpu_count)``; ``workers=1``
    (or a single spec) runs inline, which keeps tracebacks pristine and
    lets the per-process instance cache accumulate across campaigns.

    ``warm_cache`` (a :class:`~repro.engine.warmcache.WarmCache` or a
    directory path) warm-starts inject-fault scenarios from settled
    snapshots: cells sharing a settle configuration restore instead of
    re-settling, across fault cells within the run and across runs over
    the same directory.  The cache is installed ambiently for the run —
    inline or via the pool initializer — and the previous ambient cache
    is put back afterwards; without the parameter an already-ambient
    cache (``set_warm_cache``) is honored.
    """

    def __init__(self, workers: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 warm_cache: Optional[Any] = None) -> None:
        self.workers = workers
        self.mp_context = mp_context
        if isinstance(warm_cache, str):
            warm_cache = WarmCache(warm_cache)
        self.warm_cache: Optional[WarmCache] = warm_cache

    def run(self, specs: Iterable[ScenarioSpec],
            progress: Optional[Callable[[int, int, ScenarioResult],
                                        None]] = None) -> CampaignResult:
        spec_list = list(specs)
        workers = self.workers
        if workers is None:
            workers = min(len(spec_list), os.cpu_count() or 1) or 1
        start = time.perf_counter()
        results: List[ScenarioResult]
        active = self.warm_cache if self.warm_cache is not None \
            else get_warm_cache()
        if workers <= 1 or len(spec_list) <= 1:
            workers = 1
            results = []
            previous = set_warm_cache(active)
            try:
                for i, spec in enumerate(spec_list):
                    r = _run_one(spec)
                    results.append(r)
                    if progress is not None:
                        progress(i + 1, len(spec_list), r)
            finally:
                set_warm_cache(previous)
        else:
            ctx = multiprocessing.get_context(self.mp_context)
            chunksize = max(1, len(spec_list) // (4 * workers))
            initargs = (active.root, active.restore) \
                if active is not None else (None, True)
            with ctx.Pool(processes=workers, initializer=_pool_warm_init,
                          initargs=initargs) as pool:
                results = []
                for i, r in enumerate(pool.imap(_run_one, spec_list,
                                                chunksize=chunksize)):
                    results.append(r)
                    if progress is not None:
                        progress(i + 1, len(spec_list), r)
        return CampaignResult(results=tuple(results),
                              wall_time=time.perf_counter() - start,
                              workers=workers)


def run_campaign(specs: Iterable[ScenarioSpec],
                 workers: Optional[int] = None,
                 warm_cache: Optional[Any] = None) -> CampaignResult:
    """One-call convenience: ``CampaignRunner(...).run(specs)``."""
    return CampaignRunner(workers=workers,
                          warm_cache=warm_cache).run(specs)
