"""Resumable campaign manifests: streamed JSONL shards + completed-key index.

A :class:`CampaignManifest` is a directory the runner streams into as
cells reach terminal status — the durability layer under the supervisor
(:mod:`repro.engine.supervise`):

* ``shards/shard-NNNN.jsonl`` — full scenario records in completion
  order, one shard per campaign run over the directory (a resumed
  campaign appends a new shard, never rewrites an old one);
* ``manifest.jsonl`` — the completed-key index: one line per terminal
  cell with its ``key`` + ``seed`` (the same content-addressing the
  warm cache and the cross-commit differ join on), terminal ``status``,
  attempt count, and owning shard.

Each record is flushed to its shard *before* its manifest line is
written and flushed, so a manifest entry always points at a durable
record; ``kill -9`` can at worst leave a truncated trailing line in
either file, which the loaders skip (the cell simply counts as not
completed and is re-run on resume).  Cells in *any* terminal status —
including ``error``/``timeout``/``crashed``/``quarantined`` — are
completed: ``--resume`` re-runs only cells missing from the index, so a
quarantined hang is not re-hung on every resume (re-run failures by
deleting the directory or with a fresh one).

:func:`merge_records` reassembles a full campaign dump in spec order
from the shards, so the merged JSONL of an interrupted-and-resumed
campaign matches an uninterrupted run on every deterministic field
(wall time and attempt counts legitimately differ).
"""

from __future__ import annotations

import json
import os
import warnings
from typing import (Any, Dict, Iterable, List, Optional, Sequence,
                    TextIO, Tuple)

from .scenarios import ScenarioResult
from .spec import ScenarioSpec

__all__ = ["CampaignManifest", "ManifestWarning", "ShardWriter",
           "result_from_record"]

#: join identity of one scenario (the differ's ``Key``)
Key = Tuple[str, int]

MANIFEST_NAME = "manifest.jsonl"
SHARD_DIR = "shards"


class ManifestWarning(UserWarning):
    """A manifest or shard line could not be used (typically the
    truncated tail a ``kill -9`` leaves); the cell counts as missing."""


def _read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL file, skipping unparseable lines with a warning.

    A half-written trailing line is the expected wreckage of a killed
    campaign; anything else malformed is surfaced but never fatal — a
    resume must not be blocked by the very crash it is recovering from.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path) as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    warnings.warn(
                        f"{path}:{line_no}: skipping unparseable line "
                        f"(truncated by a crash?)", ManifestWarning,
                        stacklevel=2)
                    continue
                if isinstance(rec, dict):
                    records.append(rec)
    except FileNotFoundError:
        pass
    return records


class ShardWriter:
    """Streams one campaign run's records into its own shard.

    ``append`` writes the record line and flushes it, then the
    manifest index line and flushes that — the ordering that makes the
    index trustworthy after a kill.  Flushing hands the lines to the
    OS, which survives process death (only power loss defeats it);
    per-record ``fsync`` would cost more than most cells do.
    """

    def __init__(self, shard_name: str, shard_path: str,
                 manifest_path: str) -> None:
        self.shard_name = shard_name
        self._shard: Optional[TextIO] = open(shard_path, "a")
        self._manifest: Optional[TextIO] = open(manifest_path, "a")
        self.written = 0

    def append(self, record: Dict[str, Any]) -> None:
        if self._shard is None:
            raise ValueError("shard writer is closed")
        self._shard.write(json.dumps(record, sort_keys=True) + "\n")
        self._shard.flush()
        entry = {"key": record["key"], "seed": record["seed"],
                 "status": record.get("status", "ok"),
                 "attempts": record.get("attempts", 1),
                 "shard": self.shard_name}
        self._manifest.write(json.dumps(entry, sort_keys=True) + "\n")
        self._manifest.flush()
        self.written += 1

    def close(self) -> None:
        for fh in (self._shard, self._manifest):
            if fh is not None:
                fh.close()
        self._shard = self._manifest = None

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CampaignManifest:
    """One campaign's durable state, rooted at a directory."""

    def __init__(self, root: str) -> None:
        self.root = root

    # -- paths ----------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    @property
    def shard_dir(self) -> str:
        return os.path.join(self.root, SHARD_DIR)

    def shard_path(self, name: str) -> str:
        return os.path.join(self.shard_dir, name)

    def exists(self) -> bool:
        return os.path.exists(self.manifest_path)

    # -- write side -----------------------------------------------------
    def open_writer(self) -> ShardWriter:
        """A writer on the next free shard (one shard per run)."""
        os.makedirs(self.shard_dir, exist_ok=True)
        taken = set(os.listdir(self.shard_dir))
        index = 0
        while f"shard-{index:04d}.jsonl" in taken:
            index += 1
        name = f"shard-{index:04d}.jsonl"
        return ShardWriter(name, self.shard_path(name),
                           self.manifest_path)

    # -- read side ------------------------------------------------------
    def completed(self) -> Dict[Key, Dict[str, Any]]:
        """``(key, seed) -> index entry`` for every terminal cell
        (later entries win: a re-run over the same directory counts
        its last terminal outcome)."""
        entries: Dict[Key, Dict[str, Any]] = {}
        for entry in _read_jsonl(self.manifest_path):
            try:
                ident = (entry["key"], int(entry["seed"]))
            except (KeyError, TypeError, ValueError):
                continue
            entries[ident] = entry
        return entries

    def records(self) -> Dict[Key, Dict[str, Any]]:
        """``(key, seed) -> full scenario record``, joined against the
        completed-key index (a shard record without an index line was
        mid-write when the campaign died — it is *not* completed)."""
        index = self.completed()
        records: Dict[Key, Dict[str, Any]] = {}
        if not index:
            return records
        try:
            shards = sorted(os.listdir(self.shard_dir))
        except FileNotFoundError:
            shards = []
        for shard in shards:
            if not shard.endswith(".jsonl"):
                continue
            for rec in _read_jsonl(self.shard_path(shard)):
                try:
                    ident = (rec["key"], int(rec["seed"]))
                except (KeyError, TypeError, ValueError):
                    continue
                if ident in index:
                    records[ident] = rec
        return records

    def merge_records(self, specs: Sequence[ScenarioSpec]
                      ) -> List[Dict[str, Any]]:
        """The completed records of ``specs``, in spec order — the
        deterministic reassembly of an interrupted campaign's dump."""
        records = self.records()
        out: List[Dict[str, Any]] = []
        for spec in specs:
            rec = records.get((spec.key, spec.seed))
            if rec is not None:
                out.append(rec)
        return out

    def merge_to(self, path: str, specs: Sequence[ScenarioSpec]) -> int:
        """Write the merged dump for ``specs`` to ``path`` (JSONL,
        spec order); returns the record count."""
        merged = self.merge_records(specs)
        with open(path, "w") as fh:
            for rec in merged:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(merged)


def result_from_record(spec: ScenarioSpec,
                       rec: Dict[str, Any]) -> ScenarioResult:
    """Reconstruct a :class:`ScenarioResult` from its JSONL record so a
    resumed campaign aggregates exactly like the run that produced it.

    Node identities travel as strings in records (the JSON encoding),
    so ``faulty_nodes`` of a reconstructed result are strings even when
    the original ids were ints — every *recorded* field round-trips
    bit-for-bit, which is what resume correctness is defined over.
    """
    return ScenarioResult(
        spec=spec,
        n=rec.get("n", 0),
        expected_detection=bool(rec.get("expected_detection", False)),
        detected=bool(rec.get("detected", False)),
        premature_alarm=bool(rec.get("premature_alarm", False)),
        settle_rounds=rec.get("settle_rounds", 0),
        rounds_run=rec.get("rounds_run", 0),
        rounds_to_detection=rec.get("rounds_to_detection"),
        detection_distance=rec.get("detection_distance"),
        max_memory_bits=rec.get("max_memory_bits", 0),
        total_memory_bits=rec.get("total_memory_bits", 0),
        alarm_count=rec.get("alarm_count", 0),
        alarm_reasons=tuple(rec.get("alarm_reasons", ())),
        faulty_nodes=tuple(rec.get("faulty_nodes", ())),
        activations=rec.get("activations"),
        super_batches=rec.get("super_batches"),
        batches_coalesced=rec.get("batches_coalesced"),
        rows_fused=rec.get("rows_fused"),
        rows_residual=rec.get("rows_residual"),
        rows_scalar=rec.get("rows_scalar"),
        plan_rebuilds=rec.get("plan_rebuilds"),
        plan_refreshes=rec.get("plan_refreshes"),
        churn_events=rec.get("churn_events"),
        rounds_to_redetect=tuple(rec.get("rounds_to_redetect") or ()),
        rounds_to_quiesce=tuple(rec.get("rounds_to_quiesce") or ()),
        alarms_per_event=tuple(rec.get("alarms_per_event") or ()),
        availability=rec.get("availability"),
        wall_time=rec.get("wall_time", 0.0),
        cache_hit=rec.get("cache_hit"),
        settle_rounds_saved=rec.get("settle_rounds_saved", 0),
        error=rec.get("error"),
        status=rec.get("status", "ok"),
        error_type=rec.get("error_type"),
        error_trace=tuple(rec.get("error_trace", ())),
        attempts=rec.get("attempts", 1),
    )
