"""Scenario execution: registries for every axis, and ``run_scenario``.

Each axis of a :class:`~repro.engine.spec.ScenarioSpec` resolves against
a registry in this module:

* :data:`TOPOLOGIES` — graph families (``random``, ``path``, ``star``,
  ``ring``, ``grid``, ``caterpillar``, ``tree``, ``geometric``);
* :data:`FAULTS` — fault recipes, either *injection* recipes applied to
  a settled network (``corrupt``, ``scramble``, ``piece_lie``) or
  *labeling* adversaries installed from a cold start (``label_swap``),
  plus ``none`` for completeness runs;
* :data:`SCHEDULES` — the synchronous scheduler or an asynchronous
  daemon (``sync``, ``round_robin``, ``permutation``, ``random``,
  ``slow_nodes``, ``locality`` — the neighbourhood-batching daemon —
  ``independent`` — the conflict-free daemon whose disjoint
  closed-neighbourhood batches license asynchronous bulk fusion — and
  ``tiled`` — the hybrid daemon that sweeps distance-2 tiles and
  partitions each tile into conflict-free sub-batches);
  every schedule accepts the implementation parameter
  ``storage="schema"|"dict"|"columnar"|"numpy"`` selecting the
  register backend; asynchronous schedules additionally accept
  ``coalesce`` and ``vec_min_batch`` (conflict-free super-batch
  coalescing and the vector tier's batch-size gate — implementation
  parameters, excluded from seed derivation like ``storage``);
* :data:`PROTOCOLS` — the verifier under test (``verifier``, ``hybrid``,
  ``sqlog``).

New axis values register with :func:`register_topology`,
:func:`register_fault`, :func:`register_schedule`, or
:func:`register_protocol`; campaign definitions then name them like any
built-in.  Instances (graph + honest marker) are memoized per process,
so campaign workers amortize marker construction across the scenarios
that share a topology.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from functools import lru_cache
from random import Random
from typing import Any, Callable, Dict, Optional, Tuple

from ..baselines.pls_sqlog import SqLogPlsProtocol, sqlog_labels
from ..graphs.generators import (bounded_degree_graph, caterpillar_graph,
                                 grid_graph, path_graph,
                                 random_connected_graph,
                                 random_geometric_graph, random_tree,
                                 ring_graph, star_graph)
from ..graphs.mst_reference import kruskal_mst
from ..graphs.weighted import NodeId, WeightedGraph
from ..sim.churn import ChurnScript, run_with_churn
from ..sim.faults import FaultInjector, detection_distance
from ..sim.network import Network, Protocol, first_alarm
from ..sim.schedulers import (AsynchronousScheduler, ConflictFreeDaemon,
                              LocalityBatchDaemon, PermutationDaemon,
                              RandomDaemon, RoundRobinDaemon,
                              SlowNodesDaemon, SynchronousScheduler,
                              TiledConflictFreeDaemon)
from ..trains.budgets import Budgets, compute_budgets
from ..trains.comparison import rotation_settled
from ..verification.adversary import (labels_for_claimed_tree,
                                      lie_about_used_piece,
                                      swap_one_mst_edge)
from ..verification.hybrid import HybridVerifierProtocol, hybrid_labels
from ..verification.marker import MarkerOutput, run_marker
from ..sim.snapshot import (SnapshotError, capture_run_state,
                            restore_run_state)
from ..verification.verifier import MstVerifierProtocol
from .spec import Axis, ScenarioSpec
from .warmcache import (WarmCacheWarning, get_warm_cache,
                        mark_fault_semantic, warm_key)


class ScenarioError(ValueError):
    """A spec that cannot be executed (unknown kind, bad parameters)."""


# ---------------------------------------------------------------------------
# topology registry
# ---------------------------------------------------------------------------

TOPOLOGIES: Dict[str, Callable[..., WeightedGraph]] = {}


def register_topology(kind: str,
                      build: Callable[..., WeightedGraph]) -> None:
    """Register ``build(seed=..., **params) -> WeightedGraph``."""
    TOPOLOGIES[kind] = build


register_topology(
    "random", lambda seed, n=16, extra=None: random_connected_graph(
        n, (2 * n) if extra is None else extra, seed=seed))
register_topology("path", lambda seed, n=16: path_graph(n, seed=seed))
register_topology("star", lambda seed, n=12: star_graph(n, seed=seed))
register_topology("ring", lambda seed, n=12: ring_graph(n, seed=seed))
register_topology(
    "grid", lambda seed, rows=4, cols=4: grid_graph(rows, cols, seed=seed))
register_topology(
    "caterpillar", lambda seed, spine=4, legs=2: caterpillar_graph(
        spine, legs, seed=seed))
register_topology("tree", lambda seed, n=16: random_tree(n, seed=seed))
register_topology(
    "geometric", lambda seed, n=24, radius=0.35: random_geometric_graph(
        n, radius, seed=seed))
register_topology(
    "bounded_degree", lambda seed, n=16, degree=4: bounded_degree_graph(
        n, degree, seed=seed))


def _subdivided_graph(seed, base_n=80, extra=130, tau=2) -> WeightedGraph:
    """The Section-9 lower-bound instances as a topology family: a
    random connected base graph with every edge replaced by a
    ``2 tau + 2``-node path (Figure 10's weight placement), re-weighted
    with the verification-safe distinct-weight rule so the honest
    marker can run on it.  ``n`` grows by ~``2 tau`` per base edge, so
    modest bases reach the 10k+-node scale the KMW-style sweeps want
    (``kmw_sweep_campaign``)."""
    from ..graphs.weights import ensure_distinct_weights
    from ..lowerbound.transform import lift_tree, subdivide
    g = random_connected_graph(base_n, extra, seed=seed)
    mst = kruskal_mst(g)
    sub = subdivide(g, tau, tree_edges=mst)
    return ensure_distinct_weights(sub.graph, lift_tree(sub, mst))


register_topology("subdivided", _subdivided_graph)


def _paper_graph(seed) -> WeightedGraph:
    """The fixed 18-node example of Figures 1-3 (deterministic: the
    seed is ignored, so every scenario on this topology shares the
    memoized instance and marker)."""
    from ..graphs.paper_example import build_paper_graph
    return build_paper_graph()


register_topology("paper", _paper_graph)


# ---------------------------------------------------------------------------
# protocol registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProtocolEntry:
    """How to build a protocol and its labels, and when it is settled."""

    make: Callable[[bool, dict], Protocol]
    #: rewrite a (possibly adversarial) marker output into this
    #: protocol's label assignment.
    labels: Callable[[WeightedGraph, MarkerOutput], Dict[NodeId, dict]]
    #: steady-state predicate for the settle phase (None: rely on the
    #: settle budget alone).
    settled: Optional[Callable[[Network], bool]] = None


PROTOCOLS: Dict[str, ProtocolEntry] = {}


def register_protocol(kind: str, entry: ProtocolEntry) -> None:
    PROTOCOLS[kind] = entry


def _no_params(kind: str, params: dict) -> None:
    """Axis kinds without parameters must reject them loudly — a typo'd
    or misplaced parameter silently running with defaults would poison a
    whole sweep."""
    if params:
        raise ScenarioError(
            f"{kind!r} accepts no parameters, got {sorted(params)}")


def _make_sqlog(synchronous: bool, params: dict) -> Protocol:
    _no_params("sqlog", params)
    return SqLogPlsProtocol()


register_protocol("verifier", ProtocolEntry(
    make=lambda synchronous, params: MstVerifierProtocol(
        synchronous=synchronous, **params),
    labels=lambda graph, marker: marker.labels,
    settled=rotation_settled,
))
register_protocol("hybrid", ProtocolEntry(
    make=lambda synchronous, params: HybridVerifierProtocol(
        synchronous=synchronous, **params),
    labels=lambda graph, marker: hybrid_labels(marker),
    settled=rotation_settled,
))
register_protocol("sqlog", ProtocolEntry(
    make=_make_sqlog,
    labels=lambda graph, marker: sqlog_labels(graph, marker.hierarchy),
    settled=None,
))


# ---------------------------------------------------------------------------
# schedule registry
# ---------------------------------------------------------------------------

#: kind -> (is_synchronous, factory(network, protocol, params, seed))
SCHEDULES: Dict[str, Tuple[bool, Callable[..., Any]]] = {}


def register_schedule(kind: str, synchronous: bool,
                      factory: Callable[..., Any]) -> None:
    SCHEDULES[kind] = (synchronous, factory)


def _storage_flag(kind: str, params: dict) -> str:
    """Pop the ``storage`` schedule parameter: ``"schema"`` (default)
    backs the network with the protocol's typed register file,
    ``"columnar"`` with the packed column store
    (:mod:`repro.sim.columnar`), ``"numpy"`` with the vectorized numpy
    column tier (:mod:`repro.sim.npcolumnar`; falls back to columnar
    with a warning when numpy is absent), and ``"dict"`` forces the
    legacy per-node dict store (the reference representation the
    differential tests compare against)."""
    storage = params.pop("storage", "schema")
    if storage not in ("schema", "dict", "columnar", "numpy"):
        raise ScenarioError(
            f"{kind!r}: unknown storage {storage!r} "
            "(expected 'schema', 'columnar', 'numpy' or 'dict')")
    return storage


def _make_sync(net: Network, proto: Protocol, params: dict, seed: int):
    params = dict(params)
    fast_path = params.pop("fast_path", True)
    bulk = params.pop("bulk", True)
    storage = _storage_flag("sync", params)
    _no_params("sync", params)
    return SynchronousScheduler(net, proto, fast_path=fast_path,
                                storage=storage, bulk=bulk)


def _slow_nodes_daemon(network: Network, params: dict, seed: int):
    params = dict(params)
    count = params.pop("count", 2)
    slowdown = params.pop("slowdown", 3)
    _no_params("slow_nodes", params)
    nodes = network.graph.nodes()
    slow = Random(seed).sample(nodes, min(count, len(nodes)))
    return SlowNodesDaemon(slow, slowdown, seed=seed)


def _async_flags(kind: str, params: dict) -> dict:
    flags = {"storage": _storage_flag(kind, params),
             "dirty_aware": params.pop("dirty_aware", True),
             "bulk": params.pop("bulk", True),
             "coalesce": params.pop("coalesce", True),
             "vec_min_batch": params.pop("vec_min_batch", None)}
    return flags


def _make_round_robin(net, proto, params, seed):
    params = dict(params)
    flags = _async_flags("round_robin", params)
    _no_params("round_robin", params)
    return AsynchronousScheduler(net, proto, RoundRobinDaemon(), **flags)


def _make_permutation(net, proto, params, seed):
    params = dict(params)
    flags = _async_flags("permutation", params)
    _no_params("permutation", params)
    return AsynchronousScheduler(net, proto, PermutationDaemon(seed=seed),
                                 **flags)


def _make_random(net, proto, params, seed):
    params = dict(params)
    flags = _async_flags("random", params)
    _no_params("random", params)
    return AsynchronousScheduler(net, proto, RandomDaemon(seed=seed), **flags)


def _make_slow_nodes(net, proto, params, seed):
    params = dict(params)
    flags = _async_flags("slow_nodes", params)
    return AsynchronousScheduler(net, proto,
                                 _slow_nodes_daemon(net, params, seed),
                                 **flags)


def _make_locality(net, proto, params, seed):
    params = dict(params)
    flags = _async_flags("locality", params)
    _no_params("locality", params)
    return AsynchronousScheduler(net, proto,
                                 LocalityBatchDaemon(net.graph, seed=seed),
                                 **flags)


def _make_independent(net, proto, params, seed):
    params = dict(params)
    flags = _async_flags("independent", params)
    _no_params("independent", params)
    return AsynchronousScheduler(net, proto,
                                 ConflictFreeDaemon(net.graph, seed=seed),
                                 **flags)


def _make_tiled(net, proto, params, seed):
    params = dict(params)
    flags = _async_flags("tiled", params)
    _no_params("tiled", params)
    return AsynchronousScheduler(net, proto,
                                 TiledConflictFreeDaemon(net.graph,
                                                         seed=seed),
                                 **flags)


register_schedule("sync", True, _make_sync)
register_schedule("round_robin", False, _make_round_robin)
register_schedule("permutation", False, _make_permutation)
register_schedule("random", False, _make_random)
register_schedule("slow_nodes", False, _make_slow_nodes)
register_schedule("locality", False, _make_locality)
register_schedule("independent", False, _make_independent)
register_schedule("tiled", False, _make_tiled)


# ---------------------------------------------------------------------------
# fault registry
# ---------------------------------------------------------------------------

MODE_NONE = "none"
MODE_INJECT = "inject"
MODE_LABELING = "labeling"
MODE_CHURN = "churn"


@dataclass(frozen=True)
class FaultEntry:
    """A fault recipe: its mode and how to apply it."""

    mode: str
    #: injection recipes: apply(network, injector, params) after settling.
    inject: Optional[Callable[[Network, FaultInjector, dict], None]] = None
    #: labeling recipes: marker(graph, params, seed) -> adversarial
    #: MarkerOutput installed from a cold start.
    marker: Optional[Callable[[WeightedGraph, dict, int],
                              MarkerOutput]] = None


FAULTS: Dict[str, FaultEntry] = {}


def register_fault(kind: str, entry: FaultEntry) -> None:
    FAULTS[kind] = entry


def _inject_corrupt(net: Network, inj: FaultInjector, params: dict) -> None:
    inj.corrupt_random_nodes(params.get("count", 1),
                             fraction=params.get("fraction", 0.5))


def _inject_scramble(net: Network, inj: FaultInjector,
                     params: dict) -> None:
    nodes = net.graph.nodes()
    for v in inj.rng.sample(nodes, min(params.get("count", 1), len(nodes))):
        inj.scramble_node(v)


def _inject_piece_lie(net: Network, inj: FaultInjector,
                      params: dict) -> None:
    """The stored-piece minimality lie (the hardest detectable fault
    class: only the train comparisons can catch it)."""
    try:
        lie_about_used_piece(net, inj)
    except LookupError as exc:
        raise ScenarioError(str(exc)) from None


def _label_swap_marker(graph: WeightedGraph, params: dict,
                       seed: int) -> MarkerOutput:
    wrong = swap_one_mst_edge(graph, kruskal_mst(graph))
    if wrong is None:
        raise ScenarioError(
            "label_swap needs a non-tree edge (tree topologies have a "
            "unique spanning tree)")
    return labels_for_claimed_tree(graph, wrong)


#: topology kinds that generate trees (no non-tree edge to swap in).
TREE_TOPOLOGY_KINDS = {"path", "star", "tree", "caterpillar"}


def spec_is_satisfiable(spec: ScenarioSpec) -> bool:
    """Whether the axis combination is meaningful at all.

    ``label_swap`` swaps an MST edge for a non-tree edge, which tree
    topologies do not have; grid builders drop such cells instead of
    reporting them as scenario errors.
    """
    return not (spec.fault.kind == "label_swap"
                and spec.topology.kind in TREE_TOPOLOGY_KINDS)


register_fault("none", FaultEntry(mode=MODE_NONE))
register_fault("corrupt", FaultEntry(mode=MODE_INJECT,
                                     inject=_inject_corrupt))
register_fault("scramble", FaultEntry(mode=MODE_INJECT,
                                      inject=_inject_scramble))
register_fault("piece_lie", FaultEntry(mode=MODE_INJECT,
                                       inject=_inject_piece_lie))
register_fault("label_swap", FaultEntry(mode=MODE_LABELING,
                                        marker=_label_swap_marker))
# the sustained-churn fault axis (ROADMAP 4(b)): settle on honest
# labels, then drain a seed-derived crash/rejoin/reweight event stream
# (repro.sim.churn) while measuring per-event re-stabilization.
# Parameters: events (count), window (rounds budget per event; default
# budgets.cycle), crash / reweight (event-kind gates).  All of them are
# semantic for warm-cache keys — churned cells must never alias
# static-topology settle snapshots.
register_fault("churn", FaultEntry(mode=MODE_CHURN))
mark_fault_semantic("churn")


#: the axis kinds registered by *importing this module* — what a
#: freshly spawned worker process will know about.  Kinds registered at
#: runtime (tests, notebooks, bespoke sweeps) exist only in the parent
#: process; under the ``spawn``/``forkserver`` start methods the worker
#: re-imports the registries and the runtime entries are simply absent,
#: which used to surface as an opaque ``KeyError`` deep inside the
#: pool.  The runner consults this snapshot to fail fast instead
#: (:func:`runtime_registered_axes`).
BUILTIN_AXIS_KINDS: Dict[str, frozenset] = {
    "topology": frozenset(TOPOLOGIES),
    "fault": frozenset(FAULTS),
    "schedule": frozenset(SCHEDULES),
    "protocol": frozenset(PROTOCOLS),
}


def runtime_registered_axes(specs) -> Dict[str, list]:
    """``role -> sorted kinds`` used by ``specs`` but registered after
    import (absent from :data:`BUILTIN_AXIS_KINDS`) — the axis values a
    spawned worker cannot resolve."""
    rogue: Dict[str, set] = {}
    for spec in specs:
        for role in ("topology", "fault", "schedule", "protocol"):
            kind = getattr(spec, role).kind
            if kind not in BUILTIN_AXIS_KINDS[role]:
                rogue.setdefault(role, set()).add(kind)
    return {role: sorted(kinds) for role, kinds in sorted(rogue.items())}


# ---------------------------------------------------------------------------
# instance cache (per process)
# ---------------------------------------------------------------------------

@lru_cache(maxsize=256)
def _graph_for(topo: Axis, seed: int) -> WeightedGraph:
    try:
        build = TOPOLOGIES[topo.kind]
    except KeyError:
        raise ScenarioError(f"unknown topology kind {topo.kind!r}") from None
    return build(seed=seed, **topo.param_dict())


@lru_cache(maxsize=128)
def _honest_marker(topo: Axis, seed: int) -> MarkerOutput:
    return run_marker(_graph_for(topo, seed))


@lru_cache(maxsize=128)
def _adversarial_marker(topo: Axis, seed: int, flt: Axis,
                        fault_seed: int) -> MarkerOutput:
    graph = _graph_for(topo, seed)
    return FAULTS[flt.kind].marker(graph, flt.param_dict(), fault_seed)


def clear_instance_cache() -> None:
    """Drop memoized graphs/markers (tests, long-lived workers)."""
    _graph_for.cache_clear()
    _honest_marker.cache_clear()
    _adversarial_marker.cache_clear()


def _topology_seed(spec: ScenarioSpec) -> int:
    if spec.topology_seed is not None:
        return spec.topology_seed
    return spec.derived_seed("topology")


def graph_for(spec: ScenarioSpec) -> WeightedGraph:
    """The exact graph instance ``run_scenario(spec)`` executes on.

    Public so benchmarks can compute baseline metrics on the same
    instance without re-deriving the engine's seeding internally.
    """
    return _graph_for(spec.topology, _topology_seed(spec))


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------

VIOLATION_COMPLETENESS = "completeness"
VIOLATION_SOUNDNESS = "soundness"

#: terminal execution statuses — every scenario of a finished campaign
#: carries exactly one, never an implicit "missing":
#:
#: * ``ok`` — ran to completion (possibly after supervised retries);
#: * ``error`` — raised inside the worker (deterministic, not retried);
#: * ``timeout`` — exceeded its per-cell wall-clock deadline and was
#:   terminated (terminal when the timeout attempt budget is 1);
#: * ``crashed`` — its worker process died mid-run (OOM kill,
#:   preemption; terminal when the crash attempt budget is 1);
#: * ``quarantined`` — a retryable failure exhausted a multi-attempt
#:   budget: the supervisor parks the cell so the sweep continues, and
#:   ``--resume`` will not re-run it (``error_type`` records the last
#:   failure kind).
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"
STATUS_QUARANTINED = "quarantined"
TERMINAL_STATUSES = (STATUS_OK, STATUS_ERROR, STATUS_TIMEOUT,
                     STATUS_CRASHED, STATUS_QUARANTINED)
FAILURE_STATUSES = frozenset(TERMINAL_STATUSES) - {STATUS_OK}


#: the protocol ``bulk_stats`` keys mirrored onto :class:`ScenarioResult`
#: (an unknown future key is simply not surfaced rather than crashing
#: result assembly)
_BULK_STAT_FIELDS = ("rows_fused", "rows_residual", "rows_scalar",
                     "plan_rebuilds", "plan_refreshes")


@dataclass(frozen=True)
class ScenarioResult:
    """Structured outcome of one scenario (picklable, aggregatable)."""

    spec: ScenarioSpec
    n: int = 0
    expected_detection: bool = False
    detected: bool = False
    #: alarm raised before the fault was even injected (a completeness
    #: violation surfaced during the settle phase).
    premature_alarm: bool = False
    settle_rounds: int = 0
    rounds_run: int = 0
    rounds_to_detection: Optional[int] = None
    detection_distance: Optional[int] = None
    max_memory_bits: int = 0
    total_memory_bits: int = 0
    alarm_count: int = 0
    alarm_reasons: Tuple[str, ...] = ()
    faulty_nodes: Tuple[NodeId, ...] = ()
    activations: Optional[int] = None
    #: asynchronous bulk-plane accounting (``None`` outside the fused
    #: async path): conflict-free super-batches issued, original daemon
    #: batches coalesced into them, rows fused through the vector tier,
    #: rows replayed with partial verdicts (residual), rows replayed
    #: fully scalar, and persistent per-sweep plan rebuilds/refreshes.
    super_batches: Optional[int] = None
    batches_coalesced: Optional[int] = None
    rows_fused: Optional[int] = None
    rows_residual: Optional[int] = None
    rows_scalar: Optional[int] = None
    plan_rebuilds: Optional[int] = None
    plan_refreshes: Optional[int] = None
    #: churn cells (``fault.kind == "churn"``) only — per-event
    #: re-stabilization metrics from :func:`repro.sim.churn.
    #: run_with_churn`: executed event count, rounds until the first
    #: alarm after each event (``None`` = the event went undetected in
    #: its window, e.g. a benign reweight), rounds until the settle
    #: predicate held alarm-free again (``None`` = never within the
    #: window, or no predicate), alarming nodes at each detection
    #: point, and the alarm-free fraction of all churn rounds.
    churn_events: Optional[int] = None
    rounds_to_redetect: Tuple[Optional[int], ...] = ()
    rounds_to_quiesce: Tuple[Optional[int], ...] = ()
    alarms_per_event: Tuple[int, ...] = ()
    availability: Optional[float] = None
    wall_time: float = 0.0
    #: warm-start cache outcome: ``None`` when no cache was consulted
    #: (no cache active, or the scenario has no settle phase), else
    #: whether the settled state was restored from the cache.
    cache_hit: Optional[bool] = None
    #: settle rounds *not* re-executed thanks to a warm start (0 on a
    #: miss; on a hit equals ``settle_rounds``, which reports the
    #: cached cold run's count so records stay comparable).
    settle_rounds_saved: int = 0
    error: Optional[str] = None
    #: terminal execution status (:data:`TERMINAL_STATUSES`); every
    #: non-``ok`` status also carries a human-readable ``error``.
    status: str = STATUS_OK
    #: exception class name (``error`` status) or the failure kind a
    #: quarantined cell last exhibited (``timeout``/``crashed``).
    error_type: Optional[str] = None
    #: bounded tail of the worker traceback (``error`` status), so the
    #: differ and analytics can group failures by cause without
    #: shipping unbounded text through every record.
    error_trace: Tuple[str, ...] = ()
    #: how many supervised attempts this terminal result took (1 when
    #: the first attempt was terminal — including unsupervised runs).
    attempts: int = 1

    @property
    def violation(self) -> Optional[str]:
        """Which paper property (if any) this scenario falsifies."""
        if self.status != STATUS_OK:
            # the terminal status is the stable category; the free-form
            # message stays in ``error`` for humans
            return self.status
        if self.error is not None:
            return self.error
        if self.premature_alarm:
            return VIOLATION_COMPLETENESS
        if self.expected_detection and not self.detected:
            return VIOLATION_SOUNDNESS
        if not self.expected_detection and self.detected:
            return VIOLATION_COMPLETENESS
        return None

    @property
    def ok(self) -> bool:
        return self.violation is None


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def _budgets_for(graph: WeightedGraph, synchronous: bool) -> Budgets:
    return compute_budgets(graph.n, synchronous, degree=graph.max_degree())


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario and measure everything the paper cares about.

    * ``none`` faults: install honest labels, run the completeness budget,
      expect silence;
    * labeling faults: install the adversarial labels from a cold start,
      expect an alarm within the detection budget;
    * injection faults: settle on honest labels (no alarm allowed), apply
      the recipe, expect an alarm within the detection budget.
    """
    start = time.perf_counter()
    try:
        fault_entry = FAULTS[spec.fault.kind]
    except KeyError:
        raise ScenarioError(f"unknown fault kind {spec.fault.kind!r}") \
            from None
    try:
        proto_entry = PROTOCOLS[spec.protocol.kind]
    except KeyError:
        raise ScenarioError(
            f"unknown protocol kind {spec.protocol.kind!r}") from None
    try:
        synchronous, sched_factory = SCHEDULES[spec.schedule.kind]
    except KeyError:
        raise ScenarioError(
            f"unknown schedule kind {spec.schedule.kind!r}") from None

    topo_seed = _topology_seed(spec)
    fault_seed = spec.derived_seed("fault")
    daemon_seed = spec.derived_seed("daemon")

    graph = _graph_for(spec.topology, topo_seed)
    if fault_entry.mode == MODE_CHURN:
        # churn mutates the topology in place; the memoized instance is
        # shared across every scenario of this (topology, seed) cell
        graph = graph.copy()
    budgets = _budgets_for(graph, synchronous)
    max_rounds = spec.max_rounds if spec.max_rounds is not None else (
        budgets.settle + budgets.ask_alarm)

    if fault_entry.mode == MODE_LABELING:
        marker = _adversarial_marker(spec.topology, topo_seed, spec.fault,
                                     fault_seed)
    else:
        marker = _honest_marker(spec.topology, topo_seed)

    network = Network(graph)
    network.install(proto_entry.labels(graph, marker))
    protocol = proto_entry.make(synchronous, spec.protocol.param_dict())
    scheduler = sched_factory(network, protocol, spec.schedule.param_dict(),
                              daemon_seed)

    settle_rounds = 0
    faulty: Tuple[NodeId, ...] = ()
    premature = False
    detected = False
    rounds_to_detection: Optional[int] = None
    dist: Optional[int] = None
    cache_hit: Optional[bool] = None
    settle_saved = 0
    churn_report = None

    if fault_entry.mode == MODE_NONE:
        rounds = spec.completeness_rounds
        if rounds is None:
            rounds = 3 * budgets.cycle + 60 if synchronous \
                else budgets.cycle + 32
        rounds_run = scheduler.run(rounds, stop_when=first_alarm)
        detected = bool(network.alarms())
        expected = False
    elif fault_entry.mode == MODE_LABELING:
        rounds_run = scheduler.run(max_rounds, stop_when=first_alarm)
        detected = bool(network.alarms())
        rounds_to_detection = rounds_run if detected else None
        expected = True
    else:
        churn_params = None
        if fault_entry.mode == MODE_CHURN:
            fp = spec.fault.param_dict()
            events = fp.pop("events", 6)
            window = fp.pop("window", None)
            crash = fp.pop("crash", True)
            reweight = fp.pop("reweight", True)
            if fp:
                raise ScenarioError(
                    f"churn: unknown parameters {sorted(fp)}")
            churn_params = (int(events),
                            budgets.cycle if window is None else int(window),
                            bool(crash), bool(reweight))
        settle_budget = spec.settle_rounds if spec.settle_rounds is not None \
            else budgets.settle
        warm = get_warm_cache()
        wkey = None
        if warm is not None and settle_budget > 0:
            wkey = warm_key(spec, synchronous, settle_budget, topo_seed,
                            daemon_seed)
            cache_hit = False
            payload = warm.load(wkey)
            if payload is not None:
                try:
                    settle_rounds = restore_run_state(network, scheduler,
                                                      payload)
                except SnapshotError as exc:
                    warnings.warn(
                        f"warm-start snapshot for {spec.key} is not "
                        f"restorable ({exc}); settling cold",
                        WarmCacheWarning, stacklevel=2)
                else:
                    cache_hit = True
                    settle_saved = settle_rounds
        if not cache_hit:
            settle_rounds = scheduler.run(settle_budget,
                                          stop_when=proto_entry.settled)
        if network.alarms():
            premature = True
            detected = True
            expected = True
            rounds_run = settle_rounds
        else:
            if wkey is not None and not cache_hit:
                # only alarm-free settled state is cacheable (a restored
                # premature alarm would skip the settle-phase accounting)
                payload = capture_run_state(network, scheduler,
                                            settle_rounds)
                if payload is not None:
                    warm.store(wkey, payload)
            if churn_params is not None:
                events, window, crash, reweight = churn_params
                script = ChurnScript.generate(graph, fault_seed,
                                              events=events, crash=crash,
                                              reweight=reweight)
                churn_report = run_with_churn(network, scheduler, protocol,
                                              script, window=window,
                                              settled=proto_entry.settled)
                rounds_run = churn_report.rounds
                # churn cells are metric-only: alarms are expected,
                # latched, measured, and cleared per event by the
                # driver, so neither soundness nor completeness applies
                detected = bool(network.alarms())
                expected = detected
            else:
                injector = FaultInjector(network, seed=fault_seed)
                fault_entry.inject(network, injector,
                                   spec.fault.param_dict())
                faulty = tuple(injector.faulty_nodes)
                rounds_run = scheduler.run(max_rounds,
                                           stop_when=first_alarm)
                detected = bool(network.alarms())
                rounds_to_detection = rounds_run if detected else None
                dist = detection_distance(network, list(faulty))
                expected = True

    alarms = network.alarms()
    return ScenarioResult(
        spec=spec,
        n=graph.n,
        expected_detection=expected,
        detected=detected,
        premature_alarm=premature,
        settle_rounds=settle_rounds,
        rounds_run=rounds_run,
        rounds_to_detection=rounds_to_detection,
        detection_distance=dist,
        max_memory_bits=network.max_memory_bits(),
        total_memory_bits=network.total_memory_bits(),
        alarm_count=len(alarms),
        alarm_reasons=tuple(sorted(set(alarms.values()))[:3]),
        faulty_nodes=faulty,
        activations=getattr(scheduler, "activations", None),
        super_batches=getattr(scheduler, "super_batches", None),
        batches_coalesced=getattr(scheduler, "batches_coalesced", None),
        churn_events=(len(churn_report.events)
                      if churn_report is not None else None),
        rounds_to_redetect=(churn_report.redetect
                            if churn_report is not None else ()),
        rounds_to_quiesce=(churn_report.quiesce
                           if churn_report is not None else ()),
        alarms_per_event=(churn_report.alarms
                          if churn_report is not None else ()),
        availability=(churn_report.availability
                      if churn_report is not None else None),
        wall_time=time.perf_counter() - start,
        **{k: v for k, v in (getattr(protocol, "bulk_stats", None)
                             or {}).items() if k in _BULK_STAT_FIELDS},
        cache_hit=cache_hit,
        settle_rounds_saved=settle_saved,
    )
