"""``python -m repro.engine`` — run a campaign from the command line.

Defaults to the CI smoke campaign (a <=30s cross-section exercising
every axis); ``--matrix`` runs the full soundness/completeness matrix.
Exits non-zero on any completeness/soundness violation or scenario
error, so CI can gate on it directly.

Resilience flags (see :mod:`repro.engine.supervise` /
:mod:`repro.engine.manifest`): ``--manifest DIR`` streams every
terminal record to JSONL shards plus a completed-key index as cells
finish; ``--resume`` re-runs only the cells missing from that index
(after a crash, a CI preemption, or Ctrl-C — the interrupt handler
prints the exact resume command).  ``--timeout``/``--retries``/
``--timeout-retries``/``--backoff`` configure the supervisor;
``--chaos crash=2,hang=1,attempts=1`` injects deterministic worker
crashes/hangs/errors into chosen cells to exercise it.

``python -m repro.engine diff OLD.jsonl NEW.jsonl`` compares two result
dumps (join on ``key`` + ``seed``) and exits non-zero on regressions in
rounds-to-detection, memory bits, or wall time — the cross-commit perf
gate (see :mod:`repro.engine.differ`).
"""

from __future__ import annotations

import argparse
import shlex
import sys

from .campaigns import smoke_campaign, soundness_completeness_matrix
from .differ import DiffConfig, diff_paths
from .runner import CampaignRunner
from .supervise import CampaignInterrupted, ChaosPolicy, SuperviseConfig


def diff_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine diff",
        description="Flag regressions between two campaign JSONL dumps.")
    parser.add_argument("old", help="baseline dump (previous commit)")
    parser.add_argument("new", help="candidate dump (this commit)")
    parser.add_argument("--rounds-tol", type=float, default=0.0,
                        help="fractional slack on rounds_to_detection "
                             "(default 0: exact)")
    parser.add_argument("--mem-tol", type=float, default=0.0,
                        help="fractional slack on memory bits "
                             "(default 0: exact)")
    parser.add_argument("--time-tol", type=float, default=0.5,
                        help="fractional slack on wall time "
                             "(default 0.5 = flag >1.5x blowups)")
    parser.add_argument("--no-time", action="store_true",
                        help="ignore wall time entirely")
    parser.add_argument("--soft-time", action="store_true",
                        help="wall-time regressions are reported as "
                             "warnings but never fail the gate (the "
                             "deterministic metrics stay hard)")
    parser.add_argument("--strict", action="store_true",
                        help="scenarios removed in NEW count as "
                             "regressions")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (soft gate)")
    parser.add_argument("--json", metavar="REPORT.json", default=None,
                        help="also write the diff as machine-readable "
                             "JSON (regressions/warnings/improvements/"
                             "membership + ok flag) for CI annotations")
    args = parser.parse_args(argv)
    config = DiffConfig(rounds_tol=args.rounds_tol, mem_tol=args.mem_tol,
                        time_tol=args.time_tol,
                        check_time=not args.no_time,
                        strict_missing=args.strict,
                        soft_time=args.soft_time)
    result = diff_paths(args.old, args.new, config)
    print(result.summary())
    if args.json:
        import json
        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")
        print(f"wrote JSON report to {args.json}")
    if not result.ok and args.warn_only:
        print("(warn-only: regressions reported, exit 0)")
        return 0
    return 0 if result.ok else 1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "diff":
        return diff_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Run a scenario campaign and report violations.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: cpu count)")
    parser.add_argument("--matrix", action="store_true",
                        help="run the full soundness/completeness matrix "
                             "instead of the smoke campaign")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")
    parser.add_argument("--out", metavar="RESULTS.jsonl", default=None,
                        help="dump per-scenario results as JSON lines "
                             "(one record per scenario; join on key+seed "
                             "to compare runs across commits)")
    parser.add_argument("--warm-cache", metavar="DIR", default=None,
                        help="settled-state snapshot cache directory: "
                             "inject-fault scenarios restore their "
                             "settled network from the cache instead of "
                             "re-settling, and populate it on miss "
                             "(shared across fault cells and runs)")
    parser.add_argument("--no-warm-start", action="store_true",
                        help="with --warm-cache: never restore, only "
                             "populate (cold timings that leave a warm "
                             "cache behind)")
    parser.add_argument("--manifest", metavar="DIR", default=None,
                        help="stream terminal records to JSONL shards + "
                             "a completed-key index in DIR as cells "
                             "finish (the resumable-campaign substrate)")
    parser.add_argument("--resume", action="store_true",
                        help="with --manifest: re-run only the cells "
                             "missing from the index, reassemble the "
                             "rest from the shards")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECS",
                        help="per-cell wall-clock timeout for a "
                             "~1000-node cell, scaled by topology size; "
                             "a cell past its deadline is terminated "
                             "instead of blocking the sweep (default: "
                             "no deadline)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="total attempts for cells whose worker "
                             "crashed (OOM kill, preemption); retried "
                             "on a fresh worker with backoff, "
                             "quarantined when exhausted (default 2)")
    parser.add_argument("--timeout-retries", type=int, default=1,
                        metavar="N",
                        help="total attempts for timed-out cells "
                             "(default 1: a hang is usually "
                             "deterministic)")
    parser.add_argument("--backoff", type=float, default=0.5,
                        metavar="SECS",
                        help="base retry backoff, doubling per retry "
                             "(default 0.5)")
    parser.add_argument("--chaos", metavar="SPEC", default=None,
                        help="inject deterministic worker failures into "
                             "chosen cells to exercise the supervisor: "
                             "'crash=2,hang=1,error=1,attempts=1' "
                             "crashes/hangs/errors that many cells on "
                             "their first ATTEMPTS attempts (needs "
                             "--workers >= 2)")
    args = parser.parse_args(argv)

    warm = None
    if args.warm_cache:
        from .warmcache import WarmCache
        warm = WarmCache(args.warm_cache,
                         restore=not args.no_warm_start)
    elif args.no_warm_start:
        parser.error("--no-warm-start requires --warm-cache")
    if args.resume and not args.manifest:
        parser.error("--resume requires --manifest")

    if args.matrix:
        specs = soundness_completeness_matrix(seed=args.seed)
    else:
        specs = smoke_campaign(seed=args.seed)

    chaos = None
    if args.chaos:
        try:
            chaos = _parse_chaos(args.chaos, specs)
        except ValueError as exc:
            parser.error(f"--chaos: {exc}")
        if args.workers is not None and args.workers <= 1:
            parser.error("--chaos needs supervised workers "
                         "(--workers >= 2): the inline path cannot "
                         "survive a crash or hang of its own process")

    def progress(done, total, result):
        if args.quiet:
            return
        status = "ok" if result.ok else (result.violation or "?")
        retried = f" x{result.attempts}" if result.attempts > 1 else ""
        print(f"[{done:3d}/{total}] {result.spec.key}: {status}"
              f"{retried} ({result.wall_time:.2f}s)", flush=True)

    config = SuperviseConfig(timeout=args.timeout,
                             max_attempts=args.retries,
                             timeout_attempts=args.timeout_retries,
                             backoff=args.backoff, chaos=chaos)
    runner = CampaignRunner(workers=args.workers, warm_cache=warm,
                            supervise=config, manifest=args.manifest,
                            resume=args.resume)
    try:
        result = runner.run(specs, progress=progress)
    except CampaignInterrupted as exc:
        print(f"\ninterrupted: {len(exc.results)}/{exc.total} "
              f"scenario(s) completed"
              + (" and flushed to the manifest" if args.manifest
                 else ""))
        if args.manifest:
            resume_argv = list(argv) if argv else []
            if "--resume" not in resume_argv:
                resume_argv.append("--resume")
            print("resume with: python -m repro.engine "
                  + shlex.join(resume_argv))
        else:
            print("(run with --manifest DIR to make campaigns "
                  "resumable)")
        return 130
    print()
    print(result.summary())
    if warm is not None:
        hits = sum(1 for r in result if r.cache_hit)
        lookups = sum(1 for r in result if r.cache_hit is not None)
        saved = sum(r.settle_rounds_saved for r in result)
        print(f"warm cache: {hits}/{lookups} hit(s), "
              f"{saved} settle round(s) saved")
    if args.out:
        written = result.dump_jsonl(args.out)
        print(f"wrote {written} scenario record(s) to {args.out}")
    return 1 if result.violations() else 0


def _parse_chaos(text: str, specs) -> ChaosPolicy:
    """``crash=2,hang=1,error=1,attempts=1`` -> a deterministic
    :class:`ChaosPolicy` over the campaign's cells."""
    counts = {"crash": 0, "hang": 0, "error": 0, "attempts": 1}
    for part in text.split(","):
        name, sep, value = part.partition("=")
        name = name.strip()
        if name not in counts or not sep:
            raise ValueError(
                f"bad component {part!r} (expected "
                f"crash=N,hang=N,error=N,attempts=N)")
        try:
            counts[name] = int(value)
        except ValueError:
            raise ValueError(f"bad count in {part!r}") from None
    return ChaosPolicy.pick(specs, crash=counts["crash"],
                            hang=counts["hang"], error=counts["error"],
                            fail_attempts=counts["attempts"])


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away: exit like a
        # SIGPIPE'd unix tool instead of spraying a traceback
        sys.exit(141)
