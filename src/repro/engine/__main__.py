"""``python -m repro.engine`` — run a campaign from the command line.

Defaults to the CI smoke campaign (a <=30s cross-section exercising
every axis); ``--matrix`` runs the full soundness/completeness matrix.
Exits non-zero on any completeness/soundness violation or scenario
error, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys

from .campaigns import smoke_campaign, soundness_completeness_matrix
from .runner import CampaignRunner


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Run a scenario campaign and report violations.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: cpu count)")
    parser.add_argument("--matrix", action="store_true",
                        help="run the full soundness/completeness matrix "
                             "instead of the smoke campaign")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")
    parser.add_argument("--out", metavar="RESULTS.jsonl", default=None,
                        help="dump per-scenario results as JSON lines "
                             "(one record per scenario; join on key+seed "
                             "to compare runs across commits)")
    args = parser.parse_args(argv)

    if args.matrix:
        specs = soundness_completeness_matrix(seed=args.seed)
    else:
        specs = smoke_campaign(seed=args.seed)

    def progress(done, total, result):
        if args.quiet:
            return
        status = "ok" if result.ok else (result.violation or "?")
        print(f"[{done:3d}/{total}] {result.spec.key}: {status} "
              f"({result.wall_time:.2f}s)", flush=True)

    runner = CampaignRunner(workers=args.workers)
    result = runner.run(specs, progress=progress)
    print()
    print(result.summary())
    if args.out:
        written = result.dump_jsonl(args.out)
        print(f"wrote {written} scenario record(s) to {args.out}")
    return 1 if result.violations() else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away: exit like a
        # SIGPIPE'd unix tool instead of spraying a traceback
        sys.exit(141)
