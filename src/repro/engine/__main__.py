"""``python -m repro.engine`` — run a campaign from the command line.

Defaults to the CI smoke campaign (a <=30s cross-section exercising
every axis); ``--matrix`` runs the full soundness/completeness matrix.
Exits non-zero on any completeness/soundness violation or scenario
error, so CI can gate on it directly.

``python -m repro.engine diff OLD.jsonl NEW.jsonl`` compares two result
dumps (join on ``key`` + ``seed``) and exits non-zero on regressions in
rounds-to-detection, memory bits, or wall time — the cross-commit perf
gate (see :mod:`repro.engine.differ`).
"""

from __future__ import annotations

import argparse
import sys

from .campaigns import smoke_campaign, soundness_completeness_matrix
from .differ import DiffConfig, diff_paths
from .runner import CampaignRunner


def diff_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine diff",
        description="Flag regressions between two campaign JSONL dumps.")
    parser.add_argument("old", help="baseline dump (previous commit)")
    parser.add_argument("new", help="candidate dump (this commit)")
    parser.add_argument("--rounds-tol", type=float, default=0.0,
                        help="fractional slack on rounds_to_detection "
                             "(default 0: exact)")
    parser.add_argument("--mem-tol", type=float, default=0.0,
                        help="fractional slack on memory bits "
                             "(default 0: exact)")
    parser.add_argument("--time-tol", type=float, default=0.5,
                        help="fractional slack on wall time "
                             "(default 0.5 = flag >1.5x blowups)")
    parser.add_argument("--no-time", action="store_true",
                        help="ignore wall time entirely")
    parser.add_argument("--soft-time", action="store_true",
                        help="wall-time regressions are reported as "
                             "warnings but never fail the gate (the "
                             "deterministic metrics stay hard)")
    parser.add_argument("--strict", action="store_true",
                        help="scenarios removed in NEW count as "
                             "regressions")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (soft gate)")
    parser.add_argument("--json", metavar="REPORT.json", default=None,
                        help="also write the diff as machine-readable "
                             "JSON (regressions/warnings/improvements/"
                             "membership + ok flag) for CI annotations")
    args = parser.parse_args(argv)
    config = DiffConfig(rounds_tol=args.rounds_tol, mem_tol=args.mem_tol,
                        time_tol=args.time_tol,
                        check_time=not args.no_time,
                        strict_missing=args.strict,
                        soft_time=args.soft_time)
    result = diff_paths(args.old, args.new, config)
    print(result.summary())
    if args.json:
        import json
        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")
        print(f"wrote JSON report to {args.json}")
    if not result.ok and args.warn_only:
        print("(warn-only: regressions reported, exit 0)")
        return 0
    return 0 if result.ok else 1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "diff":
        return diff_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Run a scenario campaign and report violations.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: cpu count)")
    parser.add_argument("--matrix", action="store_true",
                        help="run the full soundness/completeness matrix "
                             "instead of the smoke campaign")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")
    parser.add_argument("--out", metavar="RESULTS.jsonl", default=None,
                        help="dump per-scenario results as JSON lines "
                             "(one record per scenario; join on key+seed "
                             "to compare runs across commits)")
    parser.add_argument("--warm-cache", metavar="DIR", default=None,
                        help="settled-state snapshot cache directory: "
                             "inject-fault scenarios restore their "
                             "settled network from the cache instead of "
                             "re-settling, and populate it on miss "
                             "(shared across fault cells and runs)")
    parser.add_argument("--no-warm-start", action="store_true",
                        help="with --warm-cache: never restore, only "
                             "populate (cold timings that leave a warm "
                             "cache behind)")
    args = parser.parse_args(argv)

    warm = None
    if args.warm_cache:
        from .warmcache import WarmCache
        warm = WarmCache(args.warm_cache,
                         restore=not args.no_warm_start)
    elif args.no_warm_start:
        parser.error("--no-warm-start requires --warm-cache")

    if args.matrix:
        specs = soundness_completeness_matrix(seed=args.seed)
    else:
        specs = smoke_campaign(seed=args.seed)

    def progress(done, total, result):
        if args.quiet:
            return
        status = "ok" if result.ok else (result.violation or "?")
        print(f"[{done:3d}/{total}] {result.spec.key}: {status} "
              f"({result.wall_time:.2f}s)", flush=True)

    runner = CampaignRunner(workers=args.workers, warm_cache=warm)
    result = runner.run(specs, progress=progress)
    print()
    print(result.summary())
    if warm is not None:
        hits = sum(1 for r in result if r.cache_hit)
        lookups = sum(1 for r in result if r.cache_hit is not None)
        saved = sum(r.settle_rounds_saved for r in result)
        print(f"warm cache: {hits}/{lookups} hit(s), "
              f"{saved} settle round(s) saved")
    if args.out:
        written = result.dump_jsonl(args.out)
        print(f"wrote {written} scenario record(s) to {args.out}")
    return 1 if result.violations() else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away: exit like a
        # SIGPIPE'd unix tool instead of spraying a traceback
        sys.exit(141)
