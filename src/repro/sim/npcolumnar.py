"""Numpy-backed column tier for :class:`~repro.sim.columnar.ColumnStore`.

The store keeps the *exact* storage representation of its parent —
``array('q')`` nat columns, :class:`PoolColumn` interning-id columns,
boxed ``list`` columns, the sentinel encoding, the per-slot overflow
dicts — so equality with the plain columnar backend is structural, not
emergent: every scalar path (contexts, facades, snapshot serialize /
restore) runs the inherited code unchanged, and a snapshot written by
this store restores into any backend (the serialized ``tobytes`` *is*
the raw int64 buffer numpy views).  Numpy enters only through on-demand
zero-copy ``np.frombuffer`` views over the ``array('q')`` buffers, used
by the bulk-plane batch operations:

* :meth:`NumpyColumnStore.inc_nat_batch` — the fused step-counter bump
  as masked ndarray arithmetic (``where(0 <= v <= cap, v + 1, 1)``),
  falling back to the scalar loop whenever the slot carries boxed
  overflow, is stability-tracked, or the batch is too small to amortize
  the ufunc overhead;
* :meth:`NumpyColumnStore.gather_values` — whole-batch fancy-indexed
  gathers with an all-real fast path (``.tolist()`` hands back Python
  ints, so numpy scalars never leak into register values);
* :meth:`NumpyColumnStore.refresh_from` — the snapshot refresh as
  boolean-mask row copies: when few nodes wrote last round, only their
  rows are copied per dirty column (sound because the store's write
  tracking is conservative — every write marks its node — which the
  dirty-aware schedulers already rely on).

The vectorized *protocol* sweeps (train convergecast / broadcast, the
Ask/Show comparison kernels) live with their scalar twins in
``trains/train.py`` and ``trains/comparison.py``; this module provides
their shared ingredients: pool-id-indexed attribute caches (sound
because the interning pool is append-only and values immutable) and
CSR neighbourhood topology built lazily from the bulk contexts.

Numpy is optional.  ``storage="numpy"`` on a machine without it (or
with ``REPRO_NO_NUMPY`` set, the CI fallback-job switch) degrades to
the plain columnar tier with a single :class:`NumpyFallbackWarning`
per process — an implementation detail only, never a seed reshuffle.
"""

from __future__ import annotations

import os
import warnings
from array import array
from typing import Any, List, Optional

try:
    import numpy as _np
except ImportError:          # pragma: no cover - exercised via env flag
    _np = None

from .columnar import ColumnStore, PoolColumn, SENT_CEIL

#: below this many batch rows the ufunc/set-up overhead beats the
#: scalar loop, so the vector overrides defer to the parent
VECTOR_MIN = 32


class NumpyFallbackWarning(RuntimeWarning):
    """``storage="numpy"`` requested but numpy is unavailable; the run
    proceeds on the plain columnar tier (bit-for-bit identical)."""


def numpy_or_none():
    """The numpy module, or None when absent / disabled.

    ``REPRO_NO_NUMPY`` is consulted per call (not import time) so the
    no-numpy CI job and the fallback tests can flip it at runtime."""
    if _np is None or os.environ.get("REPRO_NO_NUMPY"):
        return None
    return _np


_warned = False


def warn_fallback_once() -> None:
    """Emit the numpy-absent fallback warning, once per process."""
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        "storage='numpy' requested but numpy is unavailable; "
        "falling back to storage='columnar' (bit-for-bit identical, "
        "scalar kernels)", NumpyFallbackWarning, stacklevel=3)


def _reset_fallback_warning() -> None:
    """Test hook: arm :func:`warn_fallback_once` again."""
    global _warned
    _warned = False


def view64(col):
    """A writable zero-copy int64 ndarray view over an ``array('q')``
    column (or a stable-versions array).  Columns are fixed-size for a
    store's lifetime and ``restore_serialized`` slice-assigns in place,
    so views taken here never dangle."""
    return _np.frombuffer(col, dtype=_np.int64)


class NumpyColumnStore(ColumnStore):
    """A :class:`ColumnStore` whose batch operations are ndarray passes.

    Representation-identical to the parent (see module docstring); only
    the bulk-plane batch methods are overridden, each with a scalar
    escape hatch for the cases the vector form cannot express (boxed
    overflow junk, stability bookkeeping, pooled columns, tiny batches).
    """

    __slots__ = ()

    #: feature probe for the vectorized protocol kernels
    numpy_tier = True

    # -- bulk plane ------------------------------------------------------
    def inc_nat_batch(self, idx, slot: int, cap: int = 1 << 30):
        np = numpy_or_none()
        col = self.data[slot]
        if (np is None or type(col) is not array or len(idx) < VECTOR_MIN
                or self.overflow[slot] or self.schema.stable_mask[slot]):
            return super().inc_nat_batch(idx, slot, cap)
        view = view64(col)
        ia = np.asarray(idx, dtype=np.intp)
        cur = view[ia]
        new = np.where((cur >= 0) & (cur <= cap), cur + 1, 1)
        view[ia] = new
        self.dirty_cols[slot] = 1
        return new.tolist()

    def gather_values(self, idx, slot: int, default=None):
        np = numpy_or_none()
        col = self.data[slot]
        if (np is None or len(idx) < VECTOR_MIN
                or type(col) not in (array, PoolColumn)):
            return super().gather_values(idx, slot, default)
        view = view64(col)
        taken = view[np.asarray(idx, dtype=np.intp)]
        if type(col) is array and bool((taken > SENT_CEIL).all()):
            return taken.tolist()
        # sentinels (or pool ids) present: the parent's per-element
        # decode handles None/default/overflow/pool exactly
        return super().gather_values(idx, slot, default)

    def refresh_from(self, live: "ColumnStore", full: bool = False):
        np = numpy_or_none()
        if np is None or full:
            return super().refresh_from(live, full)
        rows = None
        # masked row copy only pays when few nodes wrote; the node marks
        # are conservative-complete (every write marks), so untouched
        # rows are bitwise equal already and skipping them is exact
        if 0 < len(live.dirty_node_list) * 4 < live.n >= VECTOR_MIN:
            rows = np.flatnonzero(
                np.frombuffer(live.dirty_nodes, dtype=np.uint8))
        size = self.schema.size
        for s in range(size):
            if not live.dirty_cols[s]:
                continue
            col = self.data[s]
            if rows is not None and type(col) is not list:
                view64(col)[rows] = view64(live.data[s])[rows]
            else:
                col[:] = live.data[s]
            dec = live.decoded[s]
            self.decoded[s] = list(dec) if dec is not None else None
            ovf = live.overflow[s]
            self.overflow[s] = dict(ovf) if ovf else None
        if live.extras_dirty:
            for i in live.extras_dirty:
                e = live.extras[i]
                self.extras[i] = dict(e) if e else None
        if self.stable_epoch != live.stable_epoch:
            self.stable_versions[:] = live.stable_versions
            self.stable_epoch = live.stable_epoch


class PoolIdCache:
    """Monotone pool-id-indexed int64 attribute arrays.

    ``fn(value)`` maps a pooled value to ``k`` int64 attributes; the
    arrays grow append-only in lockstep with the interning pool (shared
    between a live store and its snapshots), so a cache synced once per
    sweep serves every gather of that sweep.  Callers must clamp
    negative (sentinel) ids before fancy-indexing."""

    __slots__ = ("pool", "fn", "k", "arrs", "filled")

    def __init__(self, store: ColumnStore, k: int, fn) -> None:
        self.pool = store.pool_values
        self.fn = fn
        self.k = k
        self.arrs = [_np.zeros(0, _np.int64) for _ in range(k)]
        self.filled = 0

    def sync(self) -> List[Any]:
        pool = self.pool
        m = len(pool)
        if self.filled >= m:
            return self.arrs
        arrs = self.arrs
        if len(arrs[0]) < m:
            cap = max(m, 2 * len(arrs[0]), 64)
            grown = []
            for a in arrs:
                b = _np.zeros(cap, _np.int64)
                b[:len(a)] = a
                grown.append(b)
            self.arrs = arrs = grown
        fn = self.fn
        for pid in range(self.filled, m):
            vals = fn(pool[pid])
            for a, v in zip(arrs, vals):
                a[pid] = v
        self.filled = m
        return arrs


def int64_or_none(x: Any) -> Optional[int]:
    """``x`` when it is a *plain* int representable in int64 headroom
    (excluding bool — ``True == 1`` must not alias), else None."""
    if type(x) is int and -(1 << 62) < x < (1 << 62):
        return x
    return None


#: encodings used by the vectorized protocol kernels.  All are far
#: outside the value ranges they are compared against (piece levels are
#: 0..256 by ``valid_piece``; node indices are 0..n-1), so a sentinel
#: can never collide with a real comparison match.
SHOW_NONE = -(1 << 40)   # "no flagged show at any level"
WL_NEVER = 1 << 40       # a want level that equals no real level
WL_ODD = -(1 << 41)      # a want level with unknown == semantics
IDX_NOT = -2             # idx_of: equals no node
IDX_ODD = -3             # idx_of: unknown == semantics -> scalar path

#: types whose ``==`` against node ids / plain-int levels follows
#: standard value semantics (no adversarial ``__eq__``)
_PLAIN = (int, bool, float, str, bytes, tuple, frozenset, type(None))


def idx_of(store: ColumnStore, x: Any) -> int:
    """The dense index of the node ``x`` compares equal to, or
    ``IDX_NOT`` when it provably equals none, or ``IDX_ODD`` when its
    equality semantics are not the plain value semantics the vector
    kernels assume (custom objects route to the scalar path).

    Mirrors the scalar kernels' ``value == me`` checks: ``True == 1``
    and ``1.0 == 1`` alias exactly as Python equality does."""
    index = store.index
    if type(index) is dict:
        if type(x) not in _PLAIN:
            return IDX_ODD
        try:
            i = index.get(x, IDX_NOT)
        except TypeError:            # unhashable (tuple holding a list)
            return IDX_ODD
        return i if type(i) is int and i >= 0 else IDX_NOT
    # list index: node ids are exactly the dense ints 0..n-1
    if type(x) is bool:
        xi = int(x)
    elif type(x) is int:
        xi = x
    elif type(x) is float:
        if x != x or x in (float("inf"), float("-inf")) \
                or not x.is_integer():
            return IDX_NOT
        xi = int(x)
    elif type(x) in _PLAIN:
        return IDX_NOT               # str/tuple/... never == an int id
    else:
        return IDX_ODD
    return xi if 0 <= xi < store.n else IDX_NOT


def csr_take(off, ia):
    """Expand a CSR row selection to edge-aligned arrays: for the rows
    ``ia`` return ``(e_node, e_pos)`` where ``e_node[t]`` is the
    position *within* ``ia`` owning edge ``t`` and ``e_pos[t]`` indexes
    the flat CSR arrays.  Empty rows contribute nothing."""
    np = _np
    starts = off[ia]
    counts = off[ia + 1] - starts
    total = int(counts.sum())
    e_node = np.repeat(np.arange(len(ia), dtype=np.int64), counts)
    cs = np.zeros(len(ia), np.int64)
    if len(ia) > 1:
        np.cumsum(counts[:-1], out=cs[1:])
    e_pos = np.arange(total, dtype=np.int64) + np.repeat(starts - cs,
                                                         counts)
    return e_node, e_pos


def seg_any(flags, e_node, m):
    """Per-row OR-reduction of an edge-aligned boolean array."""
    return _np.bincount(e_node[flags], minlength=m).astype(bool)


class VecTopo:
    """CSR neighbourhood topology over a store's dense node index.

    Built lazily from the bulk contexts the fused sweeps already carry
    (conflict-free batches only cover a subset per batch, so rows
    accumulate until every node has been offered once).  Topology is
    static for a scheduler run, so the flat/offset arrays are built
    exactly once, together with the per-edge weight columns the Ask
    comparison needs."""

    __slots__ = ("n", "ctxs", "rows", "missing", "flat", "off",
                 "wts", "w_exact", "degs")

    #: |weight| ints above this go through the scalar path (float64
    #: compares are exact only to 2**53; stay well clear)
    W_EXACT = 1 << 50

    def __init__(self, n: int) -> None:
        self.n = n
        self.ctxs: List[Any] = [None] * n
        self.rows: List[Any] = [None] * n
        self.missing = n
        self.flat = None
        self.off = None
        self.wts = None
        self.w_exact = None
        self.degs = None

    def offer(self, contexts) -> bool:
        """Record the batch's contexts; True once every node is known
        and the CSR arrays are built."""
        if self.flat is not None:
            return True
        ctxs, rows = self.ctxs, self.rows
        for ctx in contexts:
            i = ctx._i
            if rows[i] is None:
                ctxs[i] = ctx
                rows[i] = list(ctx._nbr_idx)
                self.missing -= 1
        if self.missing:
            return False
        self._build()
        return True

    def _build(self) -> None:
        np = _np
        rows = self.rows
        degs = np.fromiter((len(r) for r in rows), np.int64,
                           count=self.n)
        off = np.zeros(self.n + 1, np.int64)
        np.cumsum(degs, out=off[1:])
        flat = np.empty(int(off[-1]), np.int64)
        wts = np.empty(int(off[-1]), np.float64)
        w_exact = np.ones(int(off[-1]), bool)
        for i, r in enumerate(rows):
            a, b = int(off[i]), int(off[i + 1])
            flat[a:b] = r
            ctx = self.ctxs[i]
            store = ctx.store
            for e, j in enumerate(r):
                w = ctx.weight(store.nodes[j])
                if type(w) is int:
                    wts[a + e] = float(w)
                    if not -self.W_EXACT < w < self.W_EXACT:
                        w_exact[a + e] = False
                elif type(w) is float:
                    wts[a + e] = w
                else:
                    wts[a + e] = np.nan
                    w_exact[a + e] = False
        self.flat, self.off, self.degs = flat, off, degs
        self.wts, self.w_exact = wts, w_exact

    def seg_sum(self, edge_vals, ia=None):
        """Per-node sums of an edge-aligned array (empty rows -> 0);
        ``ia`` selects a node subset."""
        np = _np
        c = np.zeros(len(edge_vals) + 1, edge_vals.dtype)
        np.cumsum(edge_vals, out=c[1:])
        off = self.off
        if ia is None:
            return c[off[1:]] - c[off[:-1]]
        return c[off[ia + 1]] - c[off[ia]]
