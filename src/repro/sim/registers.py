"""Register stores with bit-size accounting.

The paper's memory-size measure counts the bits stored at a node: identity,
marker labels, and verifier working memory (Section 2.4).  Protocols store
per-node state in named registers; :func:`bit_size` estimates the number of
bits needed to encode a register value.

Conventions
-----------
* Register values must be *immutable* (ints, strings, bools, None, tuples,
  frozensets) so snapshots can share them safely.
* Register names starting with ``"_"`` are *ghost* state — simulation
  instrumentation excluded from the memory accounting (e.g. fault-injection
  bookkeeping).  Real protocol state must never use the prefix.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable


def bit_size(value: Any) -> int:
    """Estimated number of bits to encode ``value``.

    Integers are charged their binary length (plus a sign bit), strings one
    byte per character, tuples/frozensets the sum of their parts plus two
    bits of framing per element.  None/booleans cost one bit.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, value.bit_length()) + 1
    if isinstance(value, float):
        return 64
    if isinstance(value, str):
        return 8 * len(value)
    if isinstance(value, (tuple, frozenset, list)):
        return sum(bit_size(x) + 2 for x in value)
    raise TypeError(f"unencodable register value of type {type(value)!r}")


def is_ghost(name: str) -> bool:
    """Whether a register name denotes instrumentation-only state."""
    return name.startswith("_")


def register_bits(registers: Dict[str, Any]) -> int:
    """Total bits of the non-ghost registers of one node."""
    return sum(bit_size(v) for name, v in registers.items() if not is_ghost(name))
