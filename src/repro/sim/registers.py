"""Register stores with bit-size accounting, and typed register files.

The paper's memory-size measure counts the bits stored at a node: identity,
marker labels, and verifier working memory (Section 2.4).  Protocols store
per-node state in named registers; :func:`bit_size` estimates the number of
bits needed to encode a register value.

Three storage representations coexist:

* the **legacy dict store** — each node owns a plain ``Dict[str, Any]``;
  always available, and the reference semantics for every differential
  test;
* the **typed register file** — a protocol declares a
  :class:`RegisterSchema` (register name -> kind, default), which is
  compiled once per network into integer *slot* indices backing a flat
  per-node list (:class:`RegisterFile`).  Reads and writes become O(1)
  list loads, the ``_nat`` bounded-non-negative-int coercion that
  dominates the verifier's hot path is computed once at write time and
  cached per slot, and per-round snapshots copy slot lists instead of
  rebuilding dicts.  :class:`RegisterView` keeps a dict-compatible
  ``MutableMapping`` face over a file so fault injection, markers, and
  the bit accounting keep working unchanged;
* the **columnar store** (:mod:`repro.sim.columnar`) — the same
  compiled schema laid out as one column per register over a dense node
  index: nat kinds in ``array('q')``, str/tuple kinds interned into a
  shared pool, opaque boxed.

The representations are observably equivalent: the same writes produce
the same mapping contents, the same bit accounting, and the same
protocol behaviour (``tests/test_storage_differential.py`` proves it).

Conventions
-----------
* Register values must be *immutable* (ints, strings, bools, None, tuples,
  frozensets) so snapshots can share them safely.
* Register names starting with ``"_"`` are *ghost* state — simulation
  instrumentation excluded from the memory accounting (e.g. fault-injection
  bookkeeping).  Real protocol state must never use the prefix.  Ghost
  registers may be declared in a schema (they get slots and dirty
  tracking like any other register) — they are simply skipped by the
  bit accounting.
* Undeclared names written to a schema-backed node land in a per-node
  *extras* dict, so an adversary (or instrumentation) can always plant
  state the protocol never declared.
"""

from __future__ import annotations

from typing import (Any, Dict, Iterable, Iterator, List, Mapping,
                    MutableMapping, Optional, Sequence, Tuple)

#: register kinds a schema may declare.  ``nat`` marks registers whose
#: reads go through the bounded non-negative-int coercion (the verifier's
#: ``_nat``).  Under register files the coercion cache is maintained for
#: *every* slot, so the kind is declarative there; the columnar store
#: packs by kind — ``nat`` into ``array('q')`` columns, ``str``/``tuple``
#: through the interning pool, ``opaque`` boxed.
KIND_NAT = "nat"
KIND_STR = "str"
KIND_TUPLE = "tuple"
KIND_OPAQUE = "opaque"

REGISTER_KINDS = (KIND_NAT, KIND_STR, KIND_TUPLE, KIND_OPAQUE)

#: the slot value of a register that has never been written (it does not
#: appear in the node's mapping view).
UNSET = type("_UnsetType", (), {
    "__repr__": lambda self: "<unset register>",
    "__reduce__": lambda self: "UNSET",
})()

NAT_CAP = 1 << 30

#: per-slot decoded-value cache marker: "no decode computed since the
#: last write of this slot".
NO_DECODE = type("_NoDecodeType", (), {
    "__repr__": lambda self: "<no decode>",
    "__reduce__": lambda self: "NO_DECODE",
})()


def nat_value(x: Any, cap: int = NAT_CAP) -> Optional[int]:
    """``x`` as a bounded non-negative int, else None (the coercion the
    trains apply to every numeric register read)."""
    if isinstance(x, int) and not isinstance(x, bool) and 0 <= x <= cap:
        return x
    return None


def nat_cache_value(value: Any) -> Optional[int]:
    """The write-time half of :func:`nat_value`: cache the value when it
    is a non-negative non-bool int (cap checks happen at read time).
    ``SlotNodeContext.set`` inlines this predicate for speed — keep the
    two in sync."""
    if isinstance(value, int) and not isinstance(value, bool) and value >= 0:
        return value
    return None


def bit_size(value: Any) -> int:
    """Estimated number of bits to encode ``value``.

    Integers are charged their binary length (plus a sign bit), strings one
    byte per character, tuples/frozensets the sum of their parts plus two
    bits of framing per element.  None/booleans cost one bit.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, value.bit_length()) + 1
    if isinstance(value, float):
        return 64
    if isinstance(value, str):
        return 8 * len(value)
    if isinstance(value, (tuple, frozenset, list)):
        return sum(bit_size(x) + 2 for x in value)
    raise TypeError(f"unencodable register value of type {type(value)!r}")


def is_ghost(name: str) -> bool:
    """Whether a register name denotes instrumentation-only state."""
    return name.startswith("_")


def register_bits(registers: Mapping[str, Any]) -> int:
    """Total bits of the non-ghost registers of one node."""
    if isinstance(registers, RegisterView):
        return registers.file.bits()
    return sum(bit_size(v) for name, v in registers.items() if not is_ghost(name))


# ---------------------------------------------------------------------------
# schema declaration and compilation
# ---------------------------------------------------------------------------

class RegisterSchema:
    """An ordered declaration of a protocol's registers.

    Components declare the registers they own with :meth:`declare`;
    duplicate declarations are idempotent (shared label registers may be
    declared by several components) but a kind conflict is an error.
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._kinds: Dict[str, str] = {}
        self._defaults: Dict[str, Any] = {}
        self._stable: Dict[str, bool] = {}

    def declare(self, name: str, kind: str = KIND_OPAQUE,
                default: Any = None, stable: bool = False) -> None:
        """Declare one register.

        ``stable`` marks registers the protocol treats as slowly changing
        inputs (marker labels): writes to them bump the register file's
        *stable version*, which lets protocols cache label-derived
        computations and invalidate them exactly when a label (or a
        neighbour's label) actually changes."""
        if kind not in REGISTER_KINDS:
            raise ValueError(f"unknown register kind {kind!r}")
        if name in self._kinds:
            if self._kinds[name] != kind or self._stable[name] != stable:
                raise ValueError(
                    f"register {name!r} redeclared as {kind!r}"
                    f"/stable={stable} (was {self._kinds[name]!r}"
                    f"/stable={self._stable[name]})")
            return
        self._names.append(name)
        self._kinds[name] = kind
        self._defaults[name] = default
        self._stable[name] = stable

    def declare_many(self,
                     decls: Iterable[Tuple[str, str, Any]]) -> None:
        for name, kind, default in decls:
            self.declare(name, kind, default)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._names)

    def compile(self) -> "CompiledSchema":
        return CompiledSchema(self._names,
                              [self._kinds[n] for n in self._names],
                              [self._defaults[n] for n in self._names],
                              [self._stable[n] for n in self._names])


#: the distinguished register protocols raise alarms through (re-exported
#: by :mod:`repro.sim.network`, which historically defined it).
ALARM = "alarm"


class CompiledSchema:
    """Frozen name -> slot mapping shared by every node of a network."""

    __slots__ = ("names", "kinds", "defaults", "slots", "size",
                 "nonghost_slots", "alarm_slot", "stable_mask", "_key")

    def __init__(self, names: Sequence[str], kinds: Sequence[str],
                 defaults: Sequence[Any],
                 stable: Optional[Sequence[bool]] = None) -> None:
        names = list(names)
        kinds = list(kinds)
        defaults = list(defaults)
        stable = [False] * len(names) if stable is None else list(stable)
        if ALARM not in names:
            # every protocol signals through the alarm register; giving
            # it a slot unconditionally lets the harness poll alarms in
            # O(1) per node without a name lookup.
            names.append(ALARM)
            kinds.append(KIND_OPAQUE)
            defaults.append(None)
            stable.append(False)
        self.names: Tuple[str, ...] = tuple(names)
        self.kinds: Tuple[str, ...] = tuple(kinds)
        self.defaults: Tuple[Any, ...] = tuple(defaults)
        self.stable_mask: Tuple[bool, ...] = tuple(stable)
        self.slots: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        if len(self.slots) != len(self.names):
            raise ValueError("duplicate register names in schema")
        self.size = len(self.names)
        self.nonghost_slots: Tuple[int, ...] = tuple(
            i for i, n in enumerate(self.names) if not is_ghost(n))
        self.alarm_slot = self.slots[ALARM]
        self._key = (self.names, self.kinds, self.stable_mask)

    def slot(self, name: str) -> int:
        return self.slots[name]

    def kind(self, name: str) -> str:
        return self.kinds[self.slots[name]]

    def default(self, name: str) -> Any:
        return self.defaults[self.slots[name]]

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, CompiledSchema) and self._key == other._key

    def __ne__(self, other: Any) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        return f"CompiledSchema({self.size} slots)"


def compile_schema(schema) -> CompiledSchema:
    """Accept a :class:`RegisterSchema` or an already compiled one."""
    if isinstance(schema, CompiledSchema):
        return schema
    return schema.compile()


def handle_resolver(compiled: Optional[CompiledSchema]):
    """The register-handle resolver for ``bind_registers`` implementations:
    the identity on names for dict storage, ``name -> slot index`` under a
    compiled schema (raising KeyError on undeclared names, so a component
    that forgot a declaration fails loudly at bind time)."""
    if compiled is None:
        return lambda name: name
    return compiled.slots.__getitem__


# ---------------------------------------------------------------------------
# the per-node register file
# ---------------------------------------------------------------------------

class RegisterFile:
    """Flat slot-indexed storage for one node's registers.

    ``slots[i]`` is the raw register value (``UNSET`` when never
    written); ``nats[i]`` caches the non-negative-int coercion of the
    value, computed once per write; ``extra`` holds undeclared registers
    (adversarially planted state, storage-agnostic instrumentation).
    The raw values are the single source of truth — the nat cache is
    derived state that never leaks into mapping views, snapshots
    comparisons, or the bit accounting.
    """

    __slots__ = ("schema", "slots", "nats", "decoded", "extra",
                 "stable_version")

    def __init__(self, schema: CompiledSchema,
                 slots: Optional[List[Any]] = None,
                 nats: Optional[List[Optional[int]]] = None,
                 extra: Optional[Dict[str, Any]] = None,
                 stable_version: int = 0,
                 decoded: Optional[List[Any]] = None) -> None:
        self.schema = schema
        self.slots: List[Any] = [UNSET] * schema.size if slots is None \
            else slots
        self.nats: List[Optional[int]] = [None] * schema.size if nats is None \
            else nats
        #: write-invalidated cache of protocol-decoded slot values (e.g.
        #: a validated train observation parsed off the broadcast slot).
        #: Purely derived state: one decoder per slot, installed lazily
        #: by the context's ``get_decoded``/``read_decoded``.
        self.decoded: List[Any] = [NO_DECODE] * schema.size \
            if decoded is None else decoded
        self.extra: Optional[Dict[str, Any]] = extra
        #: bumped whenever a slot declared ``stable`` is written; the sum
        #: over a closed neighbourhood is the invalidation sentinel for
        #: label-derived caches (the counters are monotone, so the sum
        #: changes iff some constituent changed).
        self.stable_version = stable_version

    # -- copying (snapshots) -------------------------------------------
    def copy(self) -> "RegisterFile":
        return RegisterFile(self.schema, self.slots[:], self.nats[:],
                            dict(self.extra) if self.extra else None,
                            self.stable_version, self.decoded[:])

    # -- checkpoint serialization (:mod:`repro.sim.snapshot`) -----------
    def serialize(self) -> Dict[str, Any]:
        """The file's state as a picklable dict.  Only the raw slots,
        extras, and stable counter ship — ``nats`` and ``decoded`` are
        derived state that :meth:`restore_serialized` recomputes."""
        return {"slots": self.slots[:],
                "extra": dict(self.extra) if self.extra else None,
                "stable_version": self.stable_version}

    def restore_serialized(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`serialize` payload in place (contexts alias
        the slot lists), rebuilding the nat cache and dropping decode
        memos.  Raises without mutating on a slot-count mismatch."""
        slots = state["slots"]
        if len(slots) != self.schema.size:
            raise ValueError("serialized slot count does not match the "
                             "schema")
        self.slots[:] = slots
        self.nats[:] = [nat_cache_value(v) for v in slots]
        self.decoded[:] = [NO_DECODE] * self.schema.size
        extra = state["extra"]
        self.extra = dict(extra) if extra else None
        self.stable_version = state["stable_version"]

    # -- slot access ----------------------------------------------------
    def set_slot(self, i: int, value: Any) -> None:
        self.slots[i] = value
        self.nats[i] = nat_cache_value(value)
        self.decoded[i] = NO_DECODE
        if self.schema.stable_mask[i]:
            self.stable_version += 1

    def unset_slot(self, i: int) -> None:
        self.slots[i] = UNSET
        self.nats[i] = None
        self.decoded[i] = NO_DECODE
        if self.schema.stable_mask[i]:
            self.stable_version += 1

    # -- name access (views, legacy code paths) -------------------------
    def get_name(self, name: str, default: Any = None) -> Any:
        i = self.schema.slots.get(name)
        if i is not None:
            v = self.slots[i]
            return default if v is UNSET else v
        if self.extra is not None:
            return self.extra.get(name, default)
        return default

    def set_name(self, name: str, value: Any) -> None:
        i = self.schema.slots.get(name)
        if i is not None:
            self.set_slot(i, value)
        else:
            if self.extra is None:
                self.extra = {}
            self.extra[name] = value

    def del_name(self, name: str) -> None:
        i = self.schema.slots.get(name)
        if i is not None:
            if self.slots[i] is UNSET:
                raise KeyError(name)
            self.unset_slot(i)
        elif self.extra is not None and name in self.extra:
            del self.extra[name]
        else:
            raise KeyError(name)

    def has_name(self, name: str) -> bool:
        i = self.schema.slots.get(name)
        if i is not None:
            return self.slots[i] is not UNSET
        return bool(self.extra) and name in self.extra

    # -- bulk operations ------------------------------------------------
    def clear(self) -> None:
        # in place: contexts alias the slot lists across activations
        self.slots[:] = [UNSET] * self.schema.size
        self.nats[:] = [None] * self.schema.size
        self.decoded[:] = [NO_DECODE] * self.schema.size
        self.extra = None
        self.stable_version += 1

    def update(self, mapping: Mapping[str, Any]) -> None:
        for name, value in mapping.items():
            self.set_name(name, value)

    def to_dict(self) -> Dict[str, Any]:
        out = {n: v for n, v in zip(self.schema.names, self.slots)
               if v is not UNSET}
        if self.extra:
            out.update(self.extra)
        return out

    def names(self) -> Iterator[str]:
        for n, v in zip(self.schema.names, self.slots):
            if v is not UNSET:
                yield n
        if self.extra:
            yield from self.extra

    def __len__(self) -> int:
        n = sum(1 for v in self.slots if v is not UNSET)
        return n + (len(self.extra) if self.extra else 0)

    # -- memory accounting ----------------------------------------------
    def bits(self) -> int:
        slots = self.slots
        total = 0
        for i in self.schema.nonghost_slots:
            v = slots[i]
            if v is not UNSET:
                total += bit_size(v)
        if self.extra:
            total += sum(bit_size(v) for name, v in self.extra.items()
                         if not is_ghost(name))
        return total


class RegisterView(MutableMapping):
    """A dict-compatible mutable mapping over one node's register file.

    Everything that treated node registers as a plain dict — fault
    injectors, markers, reset waves, ``dict(regs)`` snapshots in tests —
    keeps working against this view; writes maintain the nat cache.
    """

    __slots__ = ("file",)

    def __init__(self, file: RegisterFile) -> None:
        self.file = file

    def __getitem__(self, name: str) -> Any:
        v = self.file.get_name(name, UNSET)
        if v is UNSET:
            raise KeyError(name)
        return v

    def get(self, name: str, default: Any = None) -> Any:
        return self.file.get_name(name, default)

    def __setitem__(self, name: str, value: Any) -> None:
        self.file.set_name(name, value)

    def __delitem__(self, name: str) -> None:
        self.file.del_name(name)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.file.has_name(name)

    def __iter__(self) -> Iterator[str]:
        return self.file.names()

    def __len__(self) -> int:
        return len(self.file)

    def clear(self) -> None:
        self.file.clear()

    def __repr__(self) -> str:
        return f"RegisterView({self.file.to_dict()!r})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, RegisterView):
            return self.file.to_dict() == other.file.to_dict()
        if isinstance(other, Mapping):
            return self.file.to_dict() == dict(other)
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq
