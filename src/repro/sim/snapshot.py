"""Settle-state checkpoint/restore for a network + scheduler pair.

A fault campaign spends most of its wall time re-settling the same
(topology, protocol, schedule, seed) network before every fault cell.
This module serializes a settled run's *full* state — register storage
on any backend (dict tables, per-node register files, the columnar
store's packed columns + interning pool + boxed overflow), scheduler
counters (rounds, activations, skip accounting, round coverage), and
the daemon's decision state (RNG, pending permutations, batch queues) —
into one picklable payload, and restores it into a freshly built
network/scheduler pair so that continuing the run is **bit-for-bit
indistinguishable** from never having stopped
(``tests/test_snapshot_restore.py`` proves this across all three
storage backends).

Two layers:

* ``capture_run_state`` / ``restore_run_state`` — payload dicts, the
  engine-facing API.  Restore validates everything (topology, schema
  layout, scheduler kind, daemon class) *before* mutating, so a failed
  restore raises :class:`SnapshotError` and leaves the target untouched
  — the caller falls back to a cold settle, never to a half-restored
  network.
* ``encode_snapshot`` / ``decode_snapshot`` — the checksummed on-disk
  wire format used by :mod:`repro.engine.warmcache`: a magic header, a
  sha256 digest of the body, then the pickled payload.  Bit flips and
  truncation fail the checksum and surface as :class:`SnapshotError`
  before any byte is unpickled.

Payloads always carry a backend-neutral ``values`` section (plain
per-node register dicts) next to the native section: the warm-start
cache key deliberately excludes implementation-only axes like
``storage``, so a snapshot written by a columnar run must restore into
a dict-backed one.  When the backend matches, the native section is
used and the restore is exact down to interned pool ids and stable
versions; across backends the neutral section is installed through the
ordinary register interface, which the storage-differential suite
already proves equivalent.

Protocol instances hold no cross-activation semantic state (label- and
budget-derived caches are rebuilt by ``bind_registers``; per-activation
scratch is sentinel-validated), so a restore re-binds the *fresh*
protocol to the restored registers rather than shipping protocol
objects — see ``restore_run_state``.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Dict, Mapping, Optional

from .network import Network
from .schedulers import AsynchronousScheduler, SynchronousScheduler

__all__ = [
    "SNAPSHOT_VERSION", "MAGIC", "SnapshotError",
    "topology_signature",
    "capture_network", "restore_network",
    "capture_scheduler", "restore_scheduler",
    "capture_run_state", "restore_run_state",
    "encode_snapshot", "decode_snapshot",
]

SNAPSHOT_VERSION = 1

#: wire-format header; bump with :data:`SNAPSHOT_VERSION`
MAGIC = b"RSNAP1\n"

_DIGEST_SIZE = hashlib.sha256().digest_size


class SnapshotError(Exception):
    """A snapshot payload is malformed, corrupt, or does not fit the
    network/scheduler it is being restored into.  Raised before any
    mutation: the restore target is left untouched."""


# ---------------------------------------------------------------------------
# network state
# ---------------------------------------------------------------------------

def topology_signature(graph: Any) -> str:
    """sha256 over the graph's full mutable topology — node insertion
    order, port lists including churn tombstones, and edge weights.
    Since PR 10 the topology is run state (``crash``/``rejoin``/
    ``reweight`` events mutate it), so a snapshot must pin it the same
    way it pins register contents: restoring churned registers into a
    pristine topology (or vice versa) would silently desynchronize
    labels from ports."""
    return hashlib.sha256(
        repr(graph.topology_key()).encode("utf-8")).hexdigest()


def capture_network(network: Network) -> Dict[str, Any]:
    """The network's register state as one picklable dict.

    Always includes the backend-neutral ``values`` section; adds the
    native section (``columns`` or ``files``) when a schema backend is
    active, so a same-backend restore is exact (pool ids, stable
    versions) rather than merely observationally equivalent."""
    nodes = list(network.graph.nodes())
    state: Dict[str, Any] = {
        "nodes": nodes,
        "topo_sig": topology_signature(network.graph),
        "values": {v: dict(network.registers[v]) for v in nodes},
        "backend": "dict",
    }
    if network.columns is not None:
        state["backend"] = "columnar"
        state["columns"] = network.columns.serialize()
    elif network.files is not None:
        state["backend"] = "schema"
        state["files"] = {v: f.serialize()
                          for v, f in network.files.items()}
    return state


def restore_network(network: Network, state: Mapping[str, Any]) -> None:
    """Restore a :func:`capture_network` payload into ``network``.

    Uses the native section when the payload's backend matches the
    network's and the layout fits; otherwise installs the neutral
    values through the register interface.  Mutates storage in place
    (schedulers and contexts alias the underlying files/columns)."""
    backend = state.get("backend")
    if backend == "columnar" and network.columns is not None:
        try:
            network.columns.restore_serialized(state["columns"])
            return
        except (ValueError, KeyError):
            pass  # layout drift: fall through to the neutral section
    elif backend == "schema" and network.files is not None:
        files = state["files"]
        if set(files) == set(network.files):
            try:
                for v, file in network.files.items():
                    file.restore_serialized(files[v])
                return
            except (ValueError, KeyError):
                pass  # ditto (per-node files validate before mutating)
    values = state["values"]
    for v in network.graph.nodes():
        # RegisterTable write-through: clears the node's file/facade in
        # place, then installs the plain dict
        network.registers[v] = dict(values.get(v, {}))


# ---------------------------------------------------------------------------
# scheduler + daemon state
# ---------------------------------------------------------------------------

def capture_scheduler(scheduler: Any) -> Optional[Dict[str, Any]]:
    """The scheduler's cross-run state, or ``None`` when the scheduler
    (or its daemon) does not support exact capture — the caller should
    then skip snapshotting rather than store an inexact one."""
    if isinstance(scheduler, SynchronousScheduler):
        return {"kind": "sync", "rounds": scheduler.rounds,
                "initialized": scheduler._initialized}
    if isinstance(scheduler, AsynchronousScheduler):
        daemon = scheduler.daemon
        get_state = getattr(daemon, "state", None)
        if not callable(get_state):
            return None
        return {"kind": "async",
                "rounds": scheduler.rounds,
                "activations": scheduler.activations,
                "steps_skipped": scheduler.steps_skipped,
                "covered": list(scheduler._covered),
                "initialized": scheduler._initialized,
                "daemon": {"class": type(daemon).__name__,
                           "data": get_state()}}
    return None


def restore_scheduler(scheduler: Any, state: Mapping[str, Any]) -> None:
    """Restore a :func:`capture_scheduler` payload.  The caller has
    already validated kind/daemon compatibility (``restore_run_state``
    does); this only moves state."""
    scheduler.rounds = state["rounds"]
    scheduler._initialized = state["initialized"]
    if state["kind"] == "async":
        scheduler.activations = state["activations"]
        scheduler.steps_skipped = state["steps_skipped"]
        scheduler._covered = set(state["covered"])
        scheduler.daemon.set_state(state["daemon"]["data"])


# ---------------------------------------------------------------------------
# run state: the engine-facing pair
# ---------------------------------------------------------------------------

def capture_run_state(network: Network, scheduler: Any,
                      settle_rounds: int) -> Optional[Dict[str, Any]]:
    """One payload for a settled run: network + scheduler + the settle
    round count the run actually executed (re-reported verbatim on
    restore, so records stay comparable).  ``None`` when the scheduler
    is not exactly capturable."""
    sched_state = capture_scheduler(scheduler)
    if sched_state is None:
        return None
    return {"version": SNAPSHOT_VERSION,
            "network": capture_network(network),
            "scheduler": sched_state,
            "settle_rounds": settle_rounds}


def _scheduler_kind(scheduler: Any) -> Optional[str]:
    if isinstance(scheduler, SynchronousScheduler):
        return "sync"
    if isinstance(scheduler, AsynchronousScheduler):
        return "async"
    return None


def restore_run_state(network: Network, scheduler: Any,
                      payload: Mapping[str, Any]) -> int:
    """Restore a :func:`capture_run_state` payload into a freshly built
    network/scheduler pair; returns the recorded settle round count.

    Validation happens up front — version, scheduler kind, daemon
    class, topology — and any mismatch raises :class:`SnapshotError`
    with the pair untouched.  After the state moves, the protocol is
    re-bound to its storage handles: label-derived protocol caches must
    not survive a wholesale register replacement, and re-binding a
    fresh protocol recomputes them from the restored registers (the
    equivalence matrix proves this reaches bit-for-bit identical
    continuations)."""
    try:
        version = payload["version"]
        net_state = payload["network"]
        sched_state = payload["scheduler"]
        settle_rounds = payload["settle_rounds"]
    except (TypeError, KeyError) as exc:
        raise SnapshotError(f"malformed snapshot payload: {exc!r}") \
            from None
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {version!r}")
    kind = _scheduler_kind(scheduler)
    if kind is None or not isinstance(sched_state, Mapping) \
            or sched_state.get("kind") != kind:
        raise SnapshotError("snapshot scheduler kind does not match")
    if kind == "async":
        daemon = scheduler.daemon
        meta = sched_state.get("daemon")
        if not isinstance(meta, Mapping) \
                or meta.get("class") != type(daemon).__name__ \
                or not callable(getattr(daemon, "set_state", None)):
            raise SnapshotError("snapshot daemon does not match")
    if not isinstance(net_state, Mapping) \
            or list(net_state.get("nodes", ())) != \
            list(network.graph.nodes()):
        raise SnapshotError("snapshot topology does not match the "
                            "network")
    sig = net_state.get("topo_sig")
    if sig is not None and sig != topology_signature(network.graph):
        # pre-PR-10 payloads carry no signature (nodes check only);
        # new ones must match ports and weights exactly — a snapshot
        # taken across churn events only restores into an identically
        # churned network
        raise SnapshotError("snapshot topology signature does not "
                            "match the network (ports, weights, or "
                            "churn state differ)")
    restore_network(network, net_state)
    restore_scheduler(scheduler, sched_state)
    protocol = getattr(scheduler, "protocol", None)
    compiled = getattr(scheduler, "_compiled", None)
    if protocol is not None:
        protocol.bind_registers(compiled)
        protocol._storage_binding = compiled
    return settle_rounds


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------

def encode_snapshot(payload: Mapping[str, Any]) -> bytes:
    """``MAGIC + sha256(body) + body`` with a pickled body.  The digest
    covers every body byte, so :func:`decode_snapshot` rejects bit
    flips and truncation before unpickling anything."""
    body = pickle.dumps(dict(payload), protocol=pickle.HIGHEST_PROTOCOL)
    return MAGIC + hashlib.sha256(body).digest() + body


def decode_snapshot(blob: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_snapshot`; raises :class:`SnapshotError`
    on any malformation (bad magic, truncation, checksum mismatch,
    unpicklable body)."""
    header = len(MAGIC) + _DIGEST_SIZE
    if len(blob) < header or not blob.startswith(MAGIC):
        raise SnapshotError("not a snapshot (bad magic or truncated "
                            "header)")
    digest = blob[len(MAGIC):header]
    body = blob[header:]
    if hashlib.sha256(body).digest() != digest:
        raise SnapshotError("snapshot checksum mismatch (corrupt or "
                            "truncated)")
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # checksummed, so this is format drift
        raise SnapshotError(f"snapshot body failed to unpickle: "
                            f"{exc!r}") from None
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot body is not a payload dict")
    return payload
