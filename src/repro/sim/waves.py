"""Wave&Echo (PIF) over rooted trees (Section 2.3).

The paper's workhorse primitive: the root starts a *wave* carrying a
command; every node forwards it to its children; leaves *echo* their
command output upward; a parent echoes once all children echoed, folding
its own output into theirs.  The classic commands are counting, summing,
and logical OR — all used by Count_Size, NumK aggregation and the
Multi_Wave stages.

This module provides a genuine register-level implementation run by the
simulator's schedulers, with pluggable fold commands, plus a convenience
driver measuring the round cost (2 * height + O(1)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs.spanning import RootedTree
from ..graphs.weighted import NodeId
from .network import Network, NodeContext, Protocol
from .schedulers import SynchronousScheduler


@dataclass(frozen=True)
class WaveCommand:
    """A fold: per-node initial value plus an associative combiner."""

    name: str
    initial: Callable[[NodeId], Any]
    combine: Callable[[Any, Any], Any]


def count_command() -> WaveCommand:
    """Counting the nodes (the paper's second example)."""
    return WaveCommand("count", lambda _v: 1, lambda a, b: a + b)


def sum_command(values: Dict[NodeId, int]) -> WaveCommand:
    """Summing per-node values (the paper's first example)."""
    return WaveCommand("sum", lambda v: values[v], lambda a, b: a + b)


def or_command(flags: Dict[NodeId, bool]) -> WaveCommand:
    """Logical OR of per-node bits (the detection-style aggregate)."""
    return WaveCommand("or", lambda v: bool(flags[v]), lambda a, b: a or b)


def min_command(values: Dict[NodeId, Any]) -> WaveCommand:
    """Minimum of per-node values (the Find_Min_Out_Edge fold)."""
    return WaveCommand("min", lambda v: values[v],
                       lambda a, b: a if a <= b else b)


class WaveEchoProtocol(Protocol):
    """One Wave&Echo execution at register level.

    Registers: ``we_wave`` (the wave token seen), ``we_echo`` (the folded
    echo value, present once the subtree finished).  The root's ``we_echo``
    is the final result.  Parent/child structure is read from the
    ``pid``-style register given at construction, so the protocol runs on
    whatever tree the labels describe.
    """

    def __init__(self, command: WaveCommand, parent_reg: str = "pid") -> None:
        self.command = command
        self.parent_reg = parent_reg

    def init_node(self, ctx: NodeContext) -> None:
        ctx.set("we_wave", ctx.get(self.parent_reg) is None)
        ctx.set("we_echo", None)

    def _children(self, ctx: NodeContext) -> List[NodeId]:
        return [u for u in ctx.neighbors
                if ctx.read(u, self.parent_reg) == ctx.node]

    def step(self, ctx: NodeContext) -> None:
        if not ctx.get("we_wave"):
            parent = ctx.get(self.parent_reg)
            if parent in ctx.neighbors and ctx.read(parent, "we_wave"):
                ctx.set("we_wave", True)
            else:
                return
        if ctx.get("we_echo") is not None:
            return
        value = self.command.initial(ctx.node)
        for child in self._children(ctx):
            child_echo = ctx.read(child, "we_echo")
            if child_echo is None:
                return  # wait for the child's echo
            value = self.command.combine(value, child_echo)
        ctx.set("we_echo", value)


@dataclass
class WaveEchoResult:
    value: Any
    rounds: int


def run_wave_echo(tree: RootedTree, command: WaveCommand,
                  max_rounds: Optional[int] = None) -> WaveEchoResult:
    """Execute one Wave&Echo on a rooted tree; returns the root's fold.

    Round cost is ``2 * height + O(1)`` — asserted by the tests against
    the tree's actual height.
    """
    network = Network(tree.graph)
    network.install({
        v: {"pid": tree.parent[v]} for v in tree.nodes()
    })
    protocol = WaveEchoProtocol(command)
    sched = SynchronousScheduler(network, protocol)
    limit = max_rounds if max_rounds is not None else 2 * tree.height() + 4

    def done(net: Network) -> bool:
        return net.registers[tree.root].get("we_echo") is not None

    rounds = sched.run(limit, stop_when=done)
    value = network.registers[tree.root].get("we_echo")
    if value is None:
        raise RuntimeError("Wave&Echo did not terminate within the budget")
    return WaveEchoResult(value=value, rounds=rounds)


class TimeToLiveWave(Protocol):
    """The Count_Size wave (Section 4): a wave with a time-to-live.

    A child accepts the wave only when the remaining TTL is positive, so
    the wave reaches exactly the nodes within TTL hops below the root —
    the mechanism by which SYNC_MST's phases keep exact timing.  The echo
    counts the accepting nodes.
    """

    def __init__(self, ttl: int, parent_reg: str = "pid") -> None:
        self.ttl = ttl
        self.parent_reg = parent_reg

    def init_node(self, ctx: NodeContext) -> None:
        is_root = ctx.get(self.parent_reg) is None
        ctx.set("tw_ttl", self.ttl if is_root else None)
        ctx.set("tw_echo", None)

    def _children(self, ctx: NodeContext) -> List[NodeId]:
        return [u for u in ctx.neighbors
                if ctx.read(u, self.parent_reg) == ctx.node]

    def step(self, ctx: NodeContext) -> None:
        if ctx.get("tw_ttl") is None:
            parent = ctx.get(self.parent_reg)
            if parent in ctx.neighbors:
                pttl = ctx.read(parent, "tw_ttl")
                if isinstance(pttl, int) and pttl > 0:
                    ctx.set("tw_ttl", pttl - 1)
            if ctx.get("tw_ttl") is None:
                return
        if ctx.get("tw_echo") is not None:
            return
        ttl = ctx.get("tw_ttl")
        count = 1
        for child in self._children(ctx):
            if ttl == 0:
                break  # children beyond the TTL never join
            child_echo = ctx.read(child, "tw_echo")
            if child_echo is None:
                return
            count += child_echo
        ctx.set("tw_echo", count)


def run_ttl_count(tree: RootedTree, ttl: int) -> WaveEchoResult:
    """Count the nodes within ``ttl`` hops of the root (Count_Size)."""
    network = Network(tree.graph)
    network.install({v: {"pid": tree.parent[v]} for v in tree.nodes()})
    protocol = TimeToLiveWave(ttl)
    sched = SynchronousScheduler(network, protocol)

    def done(net: Network) -> bool:
        return net.registers[tree.root].get("tw_echo") is not None

    rounds = sched.run(2 * min(ttl, tree.height()) + 4, stop_when=done)
    value = network.registers[tree.root].get("tw_echo")
    if value is None:
        raise RuntimeError("TTL count did not terminate within the budget")
    return WaveEchoResult(value=value, rounds=rounds)
