"""The bulk-activation plane: whole batches of activations at once.

PR 3 established that the columnar backend hit the pure-Python wall:
per verifier step, ~70 fine-grained context calls of protocol logic
dominate, so storage layout alone cannot buy further per-step time.
The next lever is *batching at the protocol level* — this module is the
contract between schedulers, protocols, and storage backends that makes
it possible without giving up the repo's bit-for-bit equivalence
guarantees.

The plane has three layers:

* **Protocols** declare the capability by overriding
  :meth:`~repro.sim.network.Protocol.bulk_step` (``None`` on the base
  class).  The contract: ``bulk_step(batch)`` must be *observationally
  identical* to running ``self.step(ctx)`` for every context of the
  batch in order, honouring the batch's ``gate``/``after`` callbacks —
  same register contents, same alarms, same write tracking.  Protocols
  typically fuse their read-mostly phase (the static-check sweep, PLS
  verdict checks, train bookkeeping reads) across the batch and fall
  back to :func:`drive_batch` whenever fusion is not licensed.
* **Schedulers** route their activation batches through ``bulk_step``
  when the protocol declares it (``bulk=False`` keeps the scalar loops):
  the synchronous schedulers hand over one whole round of active nodes;
  the asynchronous scheduler hands over multi-node daemon batches — the
  locality daemon's closed neighbourhoods are the natural unit — for
  protocols that additionally declare ``bulk_live`` (live batches never
  fuse, so routing them is worthwhile only for a protocol with a
  genuinely batched live path).  Skip logic, activation accounting, and
  stop conditions stay in the scheduler, threaded through the
  callbacks.
* **Storage backends** supply the fused primitives.  On columnar
  storage (:class:`ColumnarBulkOps`) a fused read-modify-write is a
  single sweep over an ``array('q')`` column with one dirty mark per
  batch (:meth:`~repro.sim.columnar.ColumnStore.inc_nat_batch`,
  :meth:`~repro.sim.columnar.ColumnStore.gather_values`); dict and
  schema storage have no vectorizable layout, so ``batch.ops`` is None
  there and protocols run the generic per-node fallback driver — which
  is what keeps all three backends bit-for-bit equivalent
  (``tests/test_bulk_plane.py`` proves bulk == scalar on every backend
  under every scheduler kind).

Fusion licenses: ``batch.ops.fused`` is True only when the scheduler
guarantees that (a) no activation of the batch can observe a
batchmate's write, and (b) the batch cannot be aborted between
activations.  Under those two facts, hoisting *own-register* writes of
distinct nodes past each other is unobservable, so a protocol may run
one column sweep for the whole batch.  Two schedules grant it:

* **synchronous rounds** — neighbour reads go to a snapshot (never the
  live store) and ``stop_when`` is checked at round boundaries; the
  batch carries no callbacks (PR 4's license);
* **conflict-free asynchronous batches** (``batch.conflict_free``) — a
  daemon such as :class:`~repro.sim.schedulers.ConflictFreeDaemon`
  *pre-declares* that the batch's activated nodes have pairwise
  disjoint closed neighbourhoods, so even *live* reads (each activation
  reads exactly N[v]) cannot observe a batchmate's own-register write,
  and the scheduler resolves stop conditions at batch boundaries (a
  conflict-free batch models the distributed daemon's *simultaneous*
  activation of an independent set — checking a stop "between" two
  indistinguishable orderings is meaningless).  Such batches carry the
  scheduler's ``gate``/``after`` callbacks, but the same disjointness
  makes them **commute** across the batch: a gate reads only the
  scheduler's per-node tracking of N[v] and an after writes only node
  v's, so a fused implementation may run *all* gates first, one fused
  sweep over the gated survivors, then *all* afters in activation order
  — exactly what :func:`~repro.verification.verifier.
  fused_verifier_sweep` does.  The after of a conflict-free batch never
  aborts (the scheduler checks ``stop_when`` once per batch), so the
  hoisted writes of later activations are never observably premature.

Other asynchronous batches (the locality daemon's overlapping closed
neighbourhoods) run live with activation-granular stop conditions, so
they never license fusion — they still benefit from the plane's
per-batch caches and from the locality daemon's amortized skip.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

#: gate callback: ``gate(k, ctx) -> bool`` — False skips activation k
#: (the scheduler counts it as skipped); True performs any pre-step
#: setup (write trackers) and licenses the step.
GateFn = Callable[[int, Any], bool]
#: after callback: ``after(k, ctx, stepped) -> bool`` — runs the
#: scheduler's per-activation accounting; True aborts the batch
#: (stop condition fired).
#:
#: INTERLEAVING CONTRACT: the callbacks carry per-activation state
#: (the async scheduler's logical tick) between a gate call and its
#: matching after call, so a bulk_step implementation MUST drive them
#: strictly interleaved per activation — ``gate(k)``, then the step,
#: then ``after(k)``, before ``gate(k+1)`` — exactly as
#: :func:`drive_batch` does.  Batching all gates up front (e.g. to
#: precompute a skip set) hands every ``after`` the final gate's tick
#: and silently corrupts the dirty-aware skip accounting.
#:
#: Exception: a batch carrying the ``conflict_free`` license may be
#: driven gates-first / sweep / afters-last.  Batchmates with pairwise
#: disjoint closed neighbourhoods never appear in each other's skip
#: scope, so no gate reads what a batchmate's after wrote; and because
#: the scheduler's activations of one batch are contiguous in tick
#: order, collapsing the batch's recorded ticks onto the final gate's
#: tick preserves every cross-batch ``changed_at``/``stepped_at``
#: comparison (any other node's tick lies strictly before or strictly
#: after the whole batch).
AfterFn = Callable[[int, Any, bool], bool]
#: boundary callback: ``boundary(i) -> bool`` — runs after segment i of
#: a *coalesced* batch (see :attr:`BulkBatch.segments`) completes its
#: afters; it replays everything the issuing scheduler would have done
#: between the original batches (stop-condition checks, round/budget
#: limits).  True aborts the remaining segments: the scheduler requeues
#: them, so observable semantics stay bit-for-bit identical to issuing
#: the original batches one at a time.
BoundaryFn = Callable[[int], bool]


class BulkBatch:
    """One scheduler-issued batch of activations.

    ``contexts`` are the per-node contexts in activation order;
    ``indices`` the matching dense node indices on columnar storage
    (None elsewhere); ``ops`` the backend's fused primitives (None when
    only per-node semantics are licensed).  A protocol whose bulk sweep
    wrote every node of the batch sets ``wrote_all`` so the scheduler
    can mark the whole batch dirty in one pass instead of consuming
    per-context ``wrote`` flags.

    ``conflict_free`` is the asynchronous fusion license (see the
    module docstring): the issuing scheduler vouches that the batch's
    activated nodes have pairwise disjoint closed neighbourhoods, that
    its ``after`` never aborts mid-batch, and that ``gate``/``after``
    commute across the batch — so a protocol may fuse the batch's
    own-register column sweeps even though neighbour reads are live.

    ``segments`` marks a *coalesced* conflict-free batch: a scheduler
    that fused several consecutive same-sweep batches into this one
    records their lengths here (in issue order; they sum to
    ``len(contexts)``) and supplies ``boundary``, called after each
    segment's afters.  The license is per *segment*: members of
    distinct segments may share neighbourhoods, so an implementation
    must drive segments strictly in order — segment i's gates run only
    after segment i-1's afters (and its fused sweep observes segment
    i-1's writes), with ``boundary(i-1)`` in between; ``boundary``
    returning True aborts the remaining segments.  ``segments is
    None`` (the default) is the ordinary single-batch case.

    ``plan_key`` identifies the daemon sweep this batch belongs to
    (None: no sweep identity).  Batches carrying equal consecutive
    keys let a fused implementation reuse a sweep-lifetime vector plan
    (classification state) across them; the key changes whenever
    registers may have been written outside the batch stream (a new
    ``run()`` call, a new sweep, a protocol round-end hook).

    ``vec_min_batch`` threads the scheduler's configured minimum
    vector-tier batch size to the fused kernels (None: kernel
    default) — an implementation-only knob, never semantics.
    """

    __slots__ = ("contexts", "indices", "ops", "gate", "after",
                 "wrote_all", "conflict_free", "segments", "boundary",
                 "plan_key", "vec_min_batch")

    def __init__(self, contexts: List[Any],
                 indices: Optional[List[int]] = None,
                 ops: Optional["ColumnarBulkOps"] = None,
                 gate: Optional[GateFn] = None,
                 after: Optional[AfterFn] = None,
                 conflict_free: bool = False,
                 segments: Optional[List[int]] = None,
                 boundary: Optional[BoundaryFn] = None,
                 plan_key: Optional[Any] = None,
                 vec_min_batch: Optional[int] = None) -> None:
        self.contexts = contexts
        self.indices = indices
        self.ops = ops
        self.gate = gate
        self.after = after
        self.wrote_all = False
        self.conflict_free = conflict_free
        self.segments = segments
        self.boundary = boundary
        self.plan_key = plan_key
        self.vec_min_batch = vec_min_batch


def drive_batch(step: Callable[[Any], None], batch: BulkBatch) -> None:
    """The generic per-node fallback driver.

    Executes the batch exactly like the scalar loops — one ``step(ctx)``
    per context, in order, honouring ``gate``/``after`` (and, on a
    coalesced batch, ``boundary`` at the original batch boundaries) —
    so a protocol that cannot (or may not) fuse simply delegates here
    and stays bit-for-bit equivalent on every backend.
    """
    gate = batch.gate
    after = batch.after
    if gate is None and after is None:
        for ctx in batch.contexts:
            step(ctx)
        return
    segments = batch.segments
    if segments is None:
        for k, ctx in enumerate(batch.contexts):
            stepped = gate is None or gate(k, ctx)
            if stepped:
                step(ctx)
            if after is not None and after(k, ctx, stepped):
                return
        return
    boundary = batch.boundary
    contexts = batch.contexts
    k = 0
    for i, seg_len in enumerate(segments):
        for _ in range(seg_len):
            ctx = contexts[k]
            stepped = gate is None or gate(k, ctx)
            if stepped:
                step(ctx)
            if after is not None and after(k, ctx, stepped):
                return
            k += 1
        if boundary is not None and boundary(i):
            return


class ColumnarBulkOps:
    """Fused batch primitives over a :class:`~repro.sim.columnar.ColumnStore`.

    Handed to protocols by the *synchronous* schedulers on columnar
    storage (``fused=True``: neighbour reads come from ``snap``, the
    batch cannot abort mid-round), and by the asynchronous scheduler
    with ``snap=None`` (so ``snap is store``: reads are live) on
    batches carrying the ``conflict_free`` license — the only
    asynchronous batches that may fuse.  The per-value semantics of
    every primitive replicate the scalar context API exactly —
    including sentinel encodings, boxed-overflow junk, and
    stable-version bookkeeping — so fusing is a pure reordering of
    own-register writes.
    """

    __slots__ = ("store", "snap")

    #: fusion license (see module docstring); the asynchronous
    #: scheduler passes ops only on conflict-free batches, so an
    #: unlicensed live batch cannot fuse by construction.
    fused = True

    def __init__(self, store, snap=None) -> None:
        self.store = store
        self.snap = store if snap is None else snap

    def inc_nat(self, batch: BulkBatch, handle: int,
                cap: int = 1 << 30) -> List[int]:
        """Fused ``(nat(own) or 0) + 1`` read-modify-write over the
        batch; returns the new per-node values in batch order and marks
        the column dirty once.  The caller is responsible for write
        tracking (typically ``batch.wrote_all = True``)."""
        return self.store.inc_nat_batch(batch.indices, handle, cap)

    def gather(self, batch: BulkBatch, handle: int,
               default: Any = None) -> List[Any]:
        """Batch read of an own-register column in batch order — the
        values a scalar ``ctx.get`` loop would return (see
        :meth:`~repro.sim.columnar.ColumnStore.gather_values`); the
        verifier/hybrid sweeps read their budget ghost registers for
        the whole batch through this."""
        return self.store.gather_values(batch.indices, handle, default)
