"""Columnar register storage: pack the hot state into arrays.

The third storage backend (after the legacy per-node dicts and the typed
register files of :mod:`repro.sim.registers`): instead of one slot list
per node, the network keeps one **column** per register, indexed by a
dense node index.

* ``nat``-kind registers pack into ``array('q')`` columns — the raw
  value *is* the stored int64, so numeric reads need no separate
  coercion cache and per-round snapshots are C-level ``memcpy``;
* ``str``/``tuple`` kinds go through an **interning pool**
  (:class:`PoolColumn`): the column stores an int id into a shared
  append-only value table, so a write pays one hash, every snapshot
  copy moves 8 bytes per node, and decoded values (validated train
  observations, convergecast cars) are memoized *per pool id* — a piece
  that circulates a whole part is decoded once ever, not once per node
  per write;
* ``opaque`` kinds stay boxed in plain Python list columns.

Values that do not fit their column's encoding — an adversary planting
a string in a nat register, a bool (which must keep its type for the
bit accounting), an int beyond int64, an unhashable object — degrade
gracefully to a boxed per-column overflow dict; nothing ever raises out
of ``array('q')``.

Sentinel encoding (int columns): stored values live in
``(INT_LO, INT_HI)``; reserved values far below ``INT_LO`` mark a
never-written slot (``UNSET_S``), an explicit ``None`` (``NONE_S``), and
a boxed overflow value (``BOX_S``).

Dirty handling is **column + node** grained instead of per-slot sets:
a write flags its column in a bytearray, and the scheduler marks the
stepping node once per activation off the context's ``wrote`` flag; the
synchronous fast path's snapshot refresh then bulk-copies exactly the
dirty columns (slice assignment — ``memcpy`` for arrays, a C pointer
copy for lists) instead of walking per-node mark sets.  Write tracking
is *conservative* (every write marks, no previous-value comparison):
skipping stays sound — a node is skipped only when no write at all
happened in its closed neighbourhood, in which case its deterministic
step would rewrite exactly the current state — and the quiescent
fast-forward still fires because an accepting verifier performs no
writes at all.

A store-level ``stable_epoch`` counter (bumped on every write to a
``stable``-declared register anywhere) lets
:meth:`ColumnarNodeContext.stable_sentinel` answer in O(1) while no
label anywhere changed — the common case on every settled network —
instead of summing the closed neighbourhood per step.

Equivalence: the backend is observably identical to the other two —
same mapping contents, same alarms, rounds, activations, and memory
bits (``tests/test_storage_differential.py`` proves it three ways).
The interning pool verifies every hit with :func:`same_shape` (deep
type equality) and diverts ``==``-equal values of different types
(``True`` vs ``1``, ``(1, 1)`` vs ``(1, True)``) to a secondary
typed-key pool: Python's ``True == 1`` would otherwise hand a later
bool write back as the earlier int, silently changing register
contents and the bit accounting relative to the other backends.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Mapping, Optional

from ..graphs.weighted import NodeId
from .registers import (CompiledSchema, KIND_NAT, KIND_STR, KIND_TUPLE,
                        NO_DECODE, UNSET, bit_size, is_ghost, nat_value)

#: int-column sentinels; any *stored* int must satisfy INT_LO < x < INT_HI,
#: so the sentinels (far below INT_LO) can never collide with a value.
UNSET_S = -(1 << 62)
NONE_S = UNSET_S + 1
BOX_S = UNSET_S + 2
SENT_CEIL = UNSET_S + 8      # v <= SENT_CEIL  <=>  v is a sentinel
INT_LO = -(1 << 61)
INT_HI = 1 << 61


class PoolColumn(array):
    """An int64 column whose entries are interning-pool ids (or
    sentinels).  A distinct type so the contexts dispatch on
    ``type(col)`` alone — ``array`` means "the int is the value",
    ``PoolColumn`` means "the int indexes the pool", ``list`` means
    boxed.  (``array`` slicing drops subclasses, so copies must be
    rebuilt via ``PoolColumn("q", source)``.)"""

    __slots__ = ()


def _is_pooled(kind: str) -> bool:
    return kind in (KIND_STR, KIND_TUPLE)


def _make_column(kind: str, n: int):
    if kind == KIND_NAT:
        return array("q", [UNSET_S] * n)
    if _is_pooled(kind):
        return PoolColumn("q", [UNSET_S] * n)
    return [UNSET] * n


def _copy_column(col):
    if type(col) is PoolColumn:
        return PoolColumn("q", col)
    return col[:]


def same_shape(a: Any, b: Any) -> bool:
    """Deep type equality of two ``==``-equal values.

    ``True == 1`` and ``2.0 == 2`` in Python, so raw equality alone
    would let the interning pool hand one back as the other — changing
    register contents, bit accounting, and nat coercion relative to the
    other backends.  Tuples recurse element-wise (``==``-equal tuples
    pair up positionally); ``==``-equal but non-identical frozensets
    iterate in unrelated orders, so they conservatively report False
    and intern separately."""
    ta = a.__class__
    if ta is not b.__class__:
        return False
    if ta is tuple:
        for x, y in zip(a, b):
            if x is not y and not same_shape(x, y):
                return False
        return True
    if ta is frozenset:
        return False
    return True


def typed_key(value: Any):
    """The value tagged with its type, recursively — the key of the
    secondary pool for values that are ``==``-equal to an already
    interned value of a different (possibly nested) type.  Only built
    on that rare adversarial path, never per ordinary write."""
    t = value.__class__
    if t is tuple or t is frozenset:
        return (t, tuple(typed_key(x) for x in value))
    return (t, value)


class ColumnStore:
    """One network's registers as per-register columns.

    A store is either the *live* state or a scheduler *snapshot*; both
    share the schema, the node indexing, the interning pool, and the
    per-pool-id decode memos (ids in a snapshot stay valid because the
    pool is append-only and values are immutable; decode results are
    pure functions of the value, so they are shareable too).
    """

    __slots__ = ("schema", "nodes", "index", "n", "data",
                 "decoded", "decode_memo", "none_decode", "overflow",
                 "stable_versions", "stable_epoch",
                 "extras", "pool_values", "pool_index", "pool_typed",
                 "detached",
                 "dirty_cols", "dirty_nodes", "dirty_node_list",
                 "extras_dirty", "_zero_cols", "_zero_nodes")

    def __init__(self, schema: CompiledSchema,
                 nodes: List[NodeId]) -> None:
        self.schema = schema
        self.nodes = list(nodes)
        n = self.n = len(self.nodes)
        #: node -> dense index; a plain list when the ids already *are*
        #: 0..n-1 (the common case), which indexes ~3x faster than a dict
        if self.nodes == list(range(n)):
            self.index = list(range(n))
        else:
            self.index = {v: i for i, v in enumerate(self.nodes)}
        size = schema.size
        self.data: List[Any] = [_make_column(k, n) for k in schema.kinds]
        #: per-slot per-node decode caches for *boxed* columns (created
        #: lazily); pooled columns use the per-id memo instead
        self.decoded: List[Optional[List[Any]]] = [None] * size
        #: per-slot decode memos for pooled columns, indexed by pool id
        #: (shared with snapshots; grown lazily to the pool's size); one
        #: extra per-slot cache holds the decode of None/UNSET
        self.decode_memo: List[Optional[List[Any]]] = [None] * size
        self.none_decode: List[Any] = [NO_DECODE] * size
        #: per-slot boxed values that do not fit the int encoding
        self.overflow: List[Optional[Dict[int, Any]]] = [None] * size
        self.stable_versions = array("q", [0] * n)
        self.stable_epoch = 0
        #: undeclared registers, per node index (lazy)
        self.extras: List[Optional[Dict[str, Any]]] = [None] * n
        #: interning pool shared with every snapshot of this store;
        #: ``pool_typed`` holds the rare ==-equal-but-differently-typed
        #: entries (see :meth:`intern`)
        self.pool_values: List[Any] = []
        self.pool_index: Dict[Any, int] = {}
        self.pool_typed: Dict[Any, int] = {}
        #: dense-index freelist for churned nodes: node id -> the dense
        #: row it vacated.  Columns never change length and survivors
        #: never move, so live handles (facades, numpy views) stay valid
        #: across crash/rejoin; a rejoining node reclaims its exact
        #: original row.
        self.detached: Dict[NodeId, int] = {}
        # -- write tracking (conservative: every write marks) ----------
        self.dirty_cols = bytearray(size)
        self.dirty_nodes = bytearray(n)
        self.dirty_node_list: List[NodeId] = []
        self.extras_dirty: set = set()
        self._zero_cols = bytes(size)
        self._zero_nodes = bytes(n)

    # -- value encoding -------------------------------------------------
    def intern(self, value: Any) -> int:
        """The pool id of ``value`` (interning it on first sight).

        Keyed by raw equality but *verified* by :func:`same_shape`
        (identity short-circuits): a hit whose stored value is
        ``==``-equal yet differently typed (``True`` vs ``1``,
        ``(1, 1)`` vs ``(1, True)``) must not be handed back — such
        values divert to a secondary :func:`typed_key` pool, so the
        common path pays no typed-key construction and the pool index
        stores no typed-key memory."""
        pid = self.pool_index.get(value)
        if pid is not None:
            stored = self.pool_values[pid]
            if stored is value or same_shape(stored, value):
                return pid
            key = typed_key(value)
            pid = self.pool_typed.get(key)
            if pid is None:
                pid = len(self.pool_values)
                self.pool_values.append(value)
                self.pool_typed[key] = pid
            return pid
        pid = len(self.pool_values)
        self.pool_values.append(value)
        self.pool_index[value] = pid
        return pid

    def _box(self, slot: int, i: int, value: Any) -> int:
        ovf = self.overflow[slot]
        if ovf is None:
            ovf = self.overflow[slot] = {}
        ovf[i] = value
        return BOX_S

    # -- generic (index, slot) access -----------------------------------
    # The hot paths live in ColumnarNodeContext; these are the shared
    # slow-path primitives used by name fallbacks, facades, and the
    # memory accounting.
    def get_value(self, i: int, slot: int, default: Any = None) -> Any:
        col = self.data[slot]
        v = col[i]
        if type(col) is list:
            return default if v is UNSET else v
        if v > SENT_CEIL:
            return self.pool_values[v] if type(col) is PoolColumn else v
        if v == NONE_S:
            return None
        if v == UNSET_S:
            return default
        return self.overflow[slot][i]

    def has_value(self, i: int, slot: int) -> bool:
        col = self.data[slot]
        v = col[i]
        if type(col) is list:
            return v is not UNSET
        return v != UNSET_S

    def set_value(self, i: int, slot: int, value: Any) -> None:
        """Slow-path write with full bookkeeping (dirty, stable, decode).

        Never raises out of the int encoding: out-of-range ints, bools
        (whose type the bit accounting must preserve), and unhashable
        values all degrade to the boxed per-column overflow."""
        col = self.data[slot]
        if type(col) is list:
            col[i] = value
        else:
            ovf = self.overflow[slot]
            if ovf:                  # drop a stale boxed entry (re-boxed
                ovf.pop(i, None)     # below when the new value needs it)
            if type(col) is PoolColumn:
                if value is None:
                    col[i] = NONE_S
                else:
                    try:
                        col[i] = self.intern(value)
                    except TypeError:   # unhashable adversarial junk
                        col[i] = self._box(slot, i, value)
            elif type(value) is int and INT_LO < value < INT_HI:
                col[i] = value
            elif value is None:
                col[i] = NONE_S
            else:
                col[i] = self._box(slot, i, value)
        dec = self.decoded[slot]
        if dec is not None:
            dec[i] = NO_DECODE
        self.mark_dirty(i, slot)
        if self.schema.stable_mask[slot]:
            self.stable_versions[i] += 1
            self.stable_epoch += 1

    def unset_value(self, i: int, slot: int) -> None:
        col = self.data[slot]
        col[i] = UNSET if type(col) is list else UNSET_S
        ovf = self.overflow[slot]
        if ovf:
            ovf.pop(i, None)
        dec = self.decoded[slot]
        if dec is not None:
            dec[i] = NO_DECODE
        self.mark_dirty(i, slot)
        if self.schema.stable_mask[slot]:
            self.stable_versions[i] += 1
            self.stable_epoch += 1

    def mark_dirty(self, i: int, slot: int) -> None:
        self.dirty_cols[slot] = 1
        if not self.dirty_nodes[i]:
            self.dirty_nodes[i] = 1
            self.dirty_node_list.append(self.nodes[i])

    def mark_node(self, i: int) -> None:
        """Node-only dirt (extras changes, which refresh separately)."""
        if not self.dirty_nodes[i]:
            self.dirty_nodes[i] = 1
            self.dirty_node_list.append(self.nodes[i])

    def clear_dirty(self) -> None:
        self.dirty_cols[:] = self._zero_cols
        self.dirty_nodes[:] = self._zero_nodes
        self.dirty_node_list.clear()
        self.extras_dirty.clear()

    # -- batch entry points (the bulk-activation plane) ------------------
    def inc_nat_batch(self, idx: List[int], slot: int,
                      cap: int = 1 << 30) -> List[int]:
        """Fused read-modify-write: apply the scalar context semantics
        of ``new = (nat(value) or 0) + 1; set(new)`` to every node index
        of ``idx`` in one column sweep, marking the column dirty once.

        Matches :class:`ColumnarNodeContext` bit for bit: sentinel
        entries (UNSET/None), boxed junk, bools, and over-cap ints all
        coerce to 0 and restart at 1; stale boxed-overflow entries are
        dropped exactly as a scalar write would drop them.  Node-level
        dirty tracking is the caller's job (the bulk driver marks the
        whole batch).  Returns the new values in ``idx`` order."""
        col = self.data[slot]
        out: List[int] = []
        append = out.append
        if type(col) is array:
            ovf = self.overflow[slot]
            if ovf:
                pop = ovf.pop
                for i in idx:
                    v = col[i]
                    v = v + 1 if 0 <= v <= cap else 1
                    col[i] = v
                    append(v)
                    pop(i, None)
            else:
                for i in idx:
                    v = col[i]
                    v = v + 1 if 0 <= v <= cap else 1
                    col[i] = v
                    append(v)
            self.dirty_cols[slot] = 1
            if self.schema.stable_mask[slot]:
                sv = self.stable_versions
                for i in idx:
                    sv[i] += 1
                self.stable_epoch += len(idx)
            return out
        # pooled/boxed columns (a nat-semantics register declared with a
        # non-nat kind): the slow-path write keeps full bookkeeping
        for i in idx:
            v = nat_value(self.get_value(i, slot), cap)
            v = (v or 0) + 1
            self.set_value(i, slot, v)
            append(v)
        return out

    def gather_values(self, idx: List[int], slot: int,
                      default: Any = None) -> List[Any]:
        """Batch read of one column at the given node indices (the
        values a scalar ``ctx.get`` loop would return, in order) in a
        single sweep — pooled ids resolve straight off the shared pool,
        sentinels and boxed overflow decode inline, with none of the
        per-node context dispatch a scalar read loop pays."""
        col = self.data[slot]
        if type(col) is list:
            return [default if (v := col[i]) is UNSET else v for i in idx]
        out: List[Any] = []
        append = out.append
        if type(col) is PoolColumn:
            pool = self.pool_values
            for i in idx:
                v = col[i]
                if v > SENT_CEIL:
                    append(pool[v])
                elif v == NONE_S:
                    append(None)
                elif v == UNSET_S:
                    append(default)
                else:
                    append(self.overflow[slot][i])
            return out
        for i in idx:
            v = col[i]
            if v > SENT_CEIL:
                append(v)
            elif v == NONE_S:
                append(None)
            elif v == UNSET_S:
                append(default)
            else:
                append(self.overflow[slot][i])
        return out

    def make_nat_writer(self, slot: int):
        """A closure replicating the array-column branch of
        :meth:`ColumnarNodeContext.set` — the single source of truth
        for fused nat writes (range check, ``None`` sentinel, boxed
        overflow pop/re-box, dirty-column mark).  The bulk plane's
        fused sweeps (:meth:`TrainComponent.make_bulk_step
        <repro.trains.train.TrainComponent.make_bulk_step>`,
        :meth:`ComparisonComponent.make_bulk_sync
        <repro.trains.comparison.ComparisonComponent.make_bulk_sync>`)
        bind one per written column; per-context ``wrote`` flags are
        the caller's contract (``batch.wrote_all``)."""
        col = self.data[slot]
        overflow = self.overflow
        box = self._box
        dc = self.dirty_cols

        def write(i: int, val) -> None:
            ovf = overflow[slot]
            if ovf:
                ovf.pop(i, None)
            if type(val) is int and INT_LO < val < INT_HI:
                col[i] = val
            elif val is None:
                col[i] = NONE_S
            else:
                col[i] = box(slot, i, val)
            dc[slot] = 1

        return write

    def decode_col(self, slot: int) -> List[Any]:
        dec = self.decoded[slot]
        if dec is None:
            dec = self.decoded[slot] = [NO_DECODE] * self.n
        return dec

    def memo_for(self, slot: int, pid: int) -> List[Any]:
        """The pool-id-indexed decode memo of ``slot``, grown to cover
        ``pid`` (entries beyond the previous pool size start empty)."""
        memo = self.decode_memo[slot]
        if memo is None:
            memo = self.decode_memo[slot] = []
        if pid >= len(memo):
            memo.extend([NO_DECODE] * (len(self.pool_values) - len(memo)))
        return memo

    # -- per-node operations --------------------------------------------
    def clear_node(self, i: int) -> None:
        for slot, col in enumerate(self.data):
            col[i] = UNSET if type(col) is list else UNSET_S
            ovf = self.overflow[slot]
            if ovf:
                ovf.pop(i, None)
            dec = self.decoded[slot]
            if dec is not None:
                dec[i] = NO_DECODE
            self.dirty_cols[slot] = 1
        self.extras[i] = None
        self.extras_dirty.add(i)
        self.mark_node(i)
        self.stable_versions[i] += 1
        self.stable_epoch += 1

    # -- dynamic node membership (churn) --------------------------------
    def detach_node(self, node: NodeId) -> None:
        """Remove ``node`` from the store without reindexing: its row is
        cleared and parked on the :attr:`detached` freelist.  Column
        lengths and the dense indices of every other node are untouched,
        so live handles (contexts are rebuilt by the schedulers'
        ``topology_changed``; facades and numpy column views need no
        rebuild) stay valid."""
        index = self.index
        if type(index) is list:
            index = self.index = {v: i for i, v in enumerate(self.nodes)}
        i = index.pop(node)
        self.clear_node(i)
        self.nodes[i] = None
        self.detached[node] = i

    def attach_node(self, node: NodeId) -> None:
        """Re-admit a node parked by :meth:`detach_node` at its exact
        original dense row (all registers unset).  The store cannot
        grow: attaching a node it never held is an error."""
        try:
            i = self.detached.pop(node)
        except KeyError:
            raise ValueError(
                f"node {node!r} is not detached from this store; "
                f"columns cannot grow") from None
        self.nodes[i] = node
        self.index[node] = i

    def node_dict(self, i: int) -> Dict[str, Any]:
        out = {}
        for slot, name in enumerate(self.schema.names):
            if self.has_value(i, slot):
                out[name] = self.get_value(i, slot)
        extra = self.extras[i]
        if extra:
            out.update(extra)
        return out

    def node_bits(self, i: int) -> int:
        total = 0
        for slot in self.schema.nonghost_slots:
            if self.has_value(i, slot):
                total += bit_size(self.get_value(i, slot))
        extra = self.extras[i]
        if extra:
            total += sum(bit_size(v) for name, v in extra.items()
                         if not is_ghost(name))
        return total

    # -- snapshots -------------------------------------------------------
    def fork(self) -> "ColumnStore":
        """A full snapshot copy sharing schema, indexing, pool, and
        decode memos.  Subclass-preserving: a numpy-tier store forks a
        numpy-tier snapshot, so snapshot-side batch gathers and masked
        refreshes stay vectorized."""
        cls = type(self)
        snap = cls.__new__(cls)
        snap.schema = self.schema
        snap.nodes = self.nodes
        snap.index = self.index
        snap.n = self.n
        snap.pool_values = self.pool_values
        snap.pool_index = self.pool_index
        snap.pool_typed = self.pool_typed
        snap.detached = dict(self.detached)
        snap.decode_memo = self.decode_memo
        snap.none_decode = self.none_decode
        snap.data = [_copy_column(col) for col in self.data]
        snap.decoded = [dec[:] if dec is not None else None
                        for dec in self.decoded]
        snap.overflow = [dict(ovf) if ovf else None
                         for ovf in self.overflow]
        snap.stable_versions = self.stable_versions[:]
        snap.stable_epoch = self.stable_epoch
        snap.extras = [dict(e) if e else None for e in self.extras]
        snap.dirty_cols = bytearray(self.schema.size)
        snap.dirty_nodes = bytearray(self.n)
        snap.dirty_node_list = []
        snap.extras_dirty = set()
        snap._zero_cols = self._zero_cols
        snap._zero_nodes = self._zero_nodes
        return snap

    # -- checkpoint serialization (:mod:`repro.sim.snapshot`) ------------
    def serialize(self) -> Dict[str, Any]:
        """The store's full state as one picklable dict: raw column
        bytes for the packed kinds, the interning-pool value table, the
        boxed overflow, extras, and the stable-version state.  The pool
        *indexes* are not shipped — :meth:`restore_serialized` rebuilds
        them from the value table, which keeps the payload small and
        the restored ids exact."""
        cols: List[Any] = []
        for col in self.data:
            if type(col) is PoolColumn:
                cols.append(("pool", col.tobytes()))
            elif type(col) is array:
                cols.append(("nat", col.tobytes()))
            else:
                cols.append(("box", col[:]))
        return {
            "names": tuple(self.schema.names),
            "nodes": list(self.nodes),
            "cols": cols,
            "overflow": [dict(o) if o else None for o in self.overflow],
            "pool": list(self.pool_values),
            "extras": [dict(e) if e else None for e in self.extras],
            "stable_versions": self.stable_versions.tobytes(),
            "stable_epoch": self.stable_epoch,
            "detached": dict(self.detached),
        }

    def _check_serialized(self, state: Mapping[str, Any]) -> None:
        """Reject a payload that does not fit this store *before* any
        mutation, so a failed restore leaves the store untouched."""
        if tuple(state["names"]) != tuple(self.schema.names) or \
                list(state["nodes"]) != self.nodes:
            raise ValueError("serialized state does not match this "
                             "store's schema/node layout")
        if (state.get("detached") or {}) != self.detached:
            raise ValueError("serialized state does not match this "
                             "store's detached-node freelist")
        cols = state["cols"]
        if len(cols) != self.schema.size:
            raise ValueError("serialized column count mismatch")
        for (tag, data), col in zip(cols, self.data):
            want = ("pool" if type(col) is PoolColumn
                    else "nat" if type(col) is array else "box")
            if tag != want:
                raise ValueError(f"serialized column kind {tag!r} does "
                                 f"not match the store's {want!r}")
            if len(data) != (self.n if tag == "box"
                             else self.n * col.itemsize):
                raise ValueError("serialized column length mismatch")
        if len(state["stable_versions"]) != \
                self.n * self.stable_versions.itemsize or \
                len(state["overflow"]) != self.schema.size or \
                len(state["extras"]) != self.n:
            raise ValueError("serialized per-node state length mismatch")

    def restore_serialized(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`serialize` payload **in place**, exactly:
        column contents, boxed overflow, extras, stable versions, and —
        bit for bit — the interning-pool ids.

        The pool indexes are rebuilt from the value table with the same
        first-occurrence / typed-key split :meth:`intern` produced, so
        a circulating piece re-interned after the restore resolves to
        its original id instead of re-validating into a duplicate.  All
        mutation is in place (contexts and snapshots alias the pool
        lists and columns); derived decode caches are dropped (pool ids
        changed meaning wholesale) and dirty tracking is reset (run
        boundaries re-snapshot fully anyway)."""
        self._check_serialized(state)
        pool = self.pool_values
        pool[:] = state["pool"]
        index = self.pool_index
        typed = self.pool_typed
        index.clear()
        typed.clear()
        for pid, value in enumerate(pool):
            prev = index.get(value)
            if prev is None:
                index[value] = pid
            elif not (pool[prev] is value or same_shape(pool[prev], value)):
                typed.setdefault(typed_key(value), pid)
        for slot, (tag, data) in enumerate(state["cols"]):
            col = self.data[slot]
            if tag == "box":
                col[:] = data
            else:
                fresh = array("q")
                fresh.frombytes(data)
                col[:] = fresh
        self.overflow[:] = [dict(o) if o else None
                            for o in state["overflow"]]
        self.extras[:] = [dict(e) if e else None for e in state["extras"]]
        sv = array("q")
        sv.frombytes(state["stable_versions"])
        self.stable_versions[:] = sv
        self.stable_epoch = state["stable_epoch"]
        size = self.schema.size
        self.decoded[:] = [None] * size
        self.decode_memo[:] = [None] * size
        self.none_decode[:] = [NO_DECODE] * size
        self.clear_dirty()

    def refresh_from(self, live: "ColumnStore", full: bool = False) -> None:
        """Bulk-refresh this snapshot from ``live``'s dirty state.

        ``full=True`` recopies everything (run boundaries, where external
        writes may be untracked).  Otherwise only the dirty columns are
        copied — slice assignment, so arrays are a single ``memcpy``.
        Boxed columns' per-node decode caches follow the live side's
        (live entries for rewritten slots are already invalidated;
        decode results are pure functions of the value, so sharing or
        recomputing them is observationally identical); pooled columns
        need nothing, their decode memo is value-keyed.
        """
        dirty = range(self.schema.size) if full else [
            s for s in range(self.schema.size) if live.dirty_cols[s]]
        for s in dirty:
            self.data[s][:] = live.data[s]
            ldec = live.decoded[s]
            if ldec is not None:
                sdec = self.decoded[s]
                if sdec is None:
                    self.decoded[s] = ldec[:]
                else:
                    sdec[:] = ldec
            elif self.decoded[s] is not None:
                self.decoded[s][:] = [NO_DECODE] * self.n
            lovf = live.overflow[s]
            if lovf or self.overflow[s]:
                self.overflow[s] = dict(lovf) if lovf else None
        if full:
            self.extras = [dict(e) if e else None for e in live.extras]
            self.stable_versions[:] = live.stable_versions
            self.stable_epoch = live.stable_epoch
        else:
            for i in live.extras_dirty:
                e = live.extras[i]
                self.extras[i] = dict(e) if e else None
            if live.stable_epoch != self.stable_epoch:
                self.stable_versions[:] = live.stable_versions
                self.stable_epoch = live.stable_epoch


class ColumnarNodeFacade:
    """The per-node ``RegisterFile``-shaped face over a column store.

    Everything that treats node registers as a per-node object — the
    dict-compatible :class:`~repro.sim.registers.RegisterView`, fault
    injection, markers, the bit accounting — works against this facade
    exactly as it does against a register file.
    """

    __slots__ = ("store", "node", "i")

    def __init__(self, store: ColumnStore, node: NodeId) -> None:
        self.store = store
        self.node = node
        # a list index maps dense ids to themselves, so plain
        # subscription works for both index representations
        self.i = store.index[node]

    @property
    def schema(self) -> CompiledSchema:
        return self.store.schema

    # -- name access ----------------------------------------------------
    def get_name(self, name: str, default: Any = None) -> Any:
        store = self.store
        slot = store.schema.slots.get(name)
        if slot is not None:
            return store.get_value(self.i, slot, default)
        extra = store.extras[self.i]
        if extra is not None:
            return extra.get(name, default)
        return default

    def set_name(self, name: str, value: Any) -> None:
        store = self.store
        slot = store.schema.slots.get(name)
        if slot is not None:
            store.set_value(self.i, slot, value)
        else:
            extra = store.extras[self.i]
            if extra is None:
                extra = store.extras[self.i] = {}
            extra[name] = value
            store.extras_dirty.add(self.i)
            store.mark_node(self.i)

    def del_name(self, name: str) -> None:
        store = self.store
        slot = store.schema.slots.get(name)
        if slot is not None:
            if not store.has_value(self.i, slot):
                raise KeyError(name)
            store.unset_value(self.i, slot)
            return
        extra = store.extras[self.i]
        if extra is not None and name in extra:
            del extra[name]
            store.extras_dirty.add(self.i)
            store.mark_node(self.i)
        else:
            raise KeyError(name)

    def has_name(self, name: str) -> bool:
        store = self.store
        slot = store.schema.slots.get(name)
        if slot is not None:
            return store.has_value(self.i, slot)
        extra = store.extras[self.i]
        return bool(extra) and name in extra

    # -- bulk -----------------------------------------------------------
    def clear(self) -> None:
        self.store.clear_node(self.i)

    def update(self, mapping: Mapping[str, Any]) -> None:
        for name, value in mapping.items():
            self.set_name(name, value)

    def to_dict(self) -> Dict[str, Any]:
        return self.store.node_dict(self.i)

    def names(self) -> Iterator[str]:
        store = self.store
        for slot, name in enumerate(store.schema.names):
            if store.has_value(self.i, slot):
                yield name
        extra = store.extras[self.i]
        if extra:
            yield from extra

    def __len__(self) -> int:
        store = self.store
        n = sum(1 for slot in range(store.schema.size)
                if store.has_value(self.i, slot))
        extra = store.extras[self.i]
        return n + (len(extra) if extra else 0)

    def bits(self) -> int:
        return self.store.node_bits(self.i)


class ColumnarNodeContext:
    """The columnar counterpart of
    :class:`~repro.sim.network.SlotNodeContext`: the same handle API
    (int slot indices resolved by ``Protocol.bind_registers``, str names
    as the storage-agnostic fallback), backed by column loads.

    Own registers are read and written live; neighbour reads go to the
    ``snap`` store (a scheduler snapshot under the synchronous fast
    path, the live store itself under asynchronous execution).  Every
    write flags its column dirty and sets :attr:`wrote`; the schedulers
    mark the node dirty once per activation off that flag (writes
    outside a scheduler step — markers, fault injection, facade pokes —
    are covered by the run-boundary full refresh, exactly as on the
    other backends).
    """

    __slots__ = ("network", "node", "neighbors", "store", "snap",
                 "_i", "_index", "_data", "_snap_data", "_pool",
                 "_memos", "_decs", "_snap_decs", "_stable", "_dc",
                 "_nbr_idx", "wrote", "_sent_key", "_sent_val")

    def __init__(self, network, node: NodeId, store: ColumnStore,
                 snap: Optional[ColumnStore] = None,
                 neighbors: Optional[List[NodeId]] = None) -> None:
        self.network = network
        self.node = node
        self.neighbors = network.graph.neighbors(node) \
            if neighbors is None else neighbors
        self.store = store
        if snap is None:
            snap = store
        self.snap = snap
        self._i = store.index[node]
        self._index = store.index
        self._data = store.data
        self._snap_data = snap.data
        self._pool = store.pool_values
        self._memos = store.decode_memo
        self._decs = store.decoded
        self._snap_decs = snap.decoded
        self._stable = store.schema.stable_mask
        self._dc = store.dirty_cols
        self._nbr_idx = tuple(self._index[u] for u in self.neighbors)
        self.wrote = False
        self._sent_key = None
        self._sent_val = 0

    # -- own state ------------------------------------------------------
    def get(self, handle, default: Any = None) -> Any:
        if type(handle) is not int:
            return self._get_name(handle, default)
        col = self._data[handle]
        v = col[self._i]
        t = type(col)
        if t is list:
            return default if v is UNSET else v
        if v > SENT_CEIL:
            return v if t is array else self._pool[v]
        if v == NONE_S:
            return None
        if v == UNSET_S:
            return default
        return self.store.overflow[handle][self._i]

    def nat(self, handle, cap: int = 1 << 30) -> Optional[int]:
        if type(handle) is not int:
            return nat_value(self._get_name(handle), cap)
        col = self._data[handle]
        v = col[self._i]
        if type(col) is array:
            return v if 0 <= v <= cap else None
        if type(col) is list:
            return nat_value(v, cap)
        # pooled: an adversary may plant an int in a str/tuple column;
        # boxed overflow values are unhashable, hence never ints
        return nat_value(self._pool[v], cap) if v > SENT_CEIL else None

    def get_decoded(self, handle, decoder) -> Any:
        if type(handle) is not int:
            return decoder(self._get_name(handle))
        col = self._data[handle]
        if type(col) is PoolColumn:
            v = col[self._i]
            if v >= 0:
                try:
                    d = self._memos[handle][v]
                except (TypeError, IndexError):
                    d = NO_DECODE
                if d is NO_DECODE:
                    d = decoder(self._pool[v])
                    self.store.memo_for(handle, v)[v] = d
                return d
            return self._decode_sentinel(v, self._i, handle, decoder,
                                         self.store)
        if type(col) is array:
            # nat columns carry no decode cache (nothing in the repo
            # decodes a numeric register; correctness over a cache that
            # every write would have to invalidate)
            return decoder(self.store.get_value(self._i, handle))
        dec = self._decs[handle]
        if dec is None:
            dec = self.store.decode_col(handle)
        i = self._i
        d = dec[i]
        if d is NO_DECODE:
            d = decoder(self.store.get_value(i, handle))
            dec[i] = d
        return d

    def _decode_sentinel(self, v: int, i: int, handle: int, decoder,
                         store: ColumnStore) -> Any:
        """Decode a pooled column's sentinel entry at node index ``i``
        of ``store``.  UNSET and None share one cache line — both decode
        ``decoder(None)``, like the other backends; boxed values decode
        uncached (adversarial rarities)."""
        if v == BOX_S:
            return decoder(store.overflow[handle][i])
        d = store.none_decode[handle]
        if d is NO_DECODE:
            d = store.none_decode[handle] = decoder(None)
        return d

    def set(self, handle, value: Any) -> None:
        if type(handle) is not int:
            self._set_name(handle, value)
            return
        i = self._i
        col = self._data[handle]
        t = type(col)
        if t is array:
            ovf = self.store.overflow[handle]
            if ovf:              # drop a stale boxed entry (re-boxed
                ovf.pop(i, None)     # below when still needed)
            if type(value) is int and INT_LO < value < INT_HI:
                col[i] = value
            elif value is None:
                col[i] = NONE_S
            else:
                col[i] = self.store._box(handle, i, value)
        elif t is list:
            col[i] = value
            dec = self._decs[handle]
            if dec is not None:
                dec[i] = NO_DECODE
        else:
            ovf = self.store.overflow[handle]
            if ovf:
                ovf.pop(i, None)
            if value is None:
                col[i] = NONE_S
            else:
                try:
                    col[i] = self.store.intern(value)
                except TypeError:   # unhashable adversarial junk
                    col[i] = self.store._box(handle, i, value)
        self._dc[handle] = 1
        self.wrote = True
        if self._stable[handle]:
            store = self.store
            store.stable_versions[i] += 1
            store.stable_epoch += 1

    def unset(self, handle) -> None:
        if type(handle) is not int:
            name_slot = self.store.schema.slots.get(handle)
            if name_slot is None:
                extra = self.store.extras[self._i]
                if extra and handle in extra:
                    del extra[handle]
                    self.store.extras_dirty.add(self._i)
                    self.store.mark_node(self._i)
                    self.wrote = True
                return
            handle = name_slot
        if self.store.has_value(self._i, handle):
            self.store.unset_value(self._i, handle)
            self.wrote = True

    def alarm(self, reason: str) -> None:
        """Raise (and latch) an alarm at this node.

        Cold path (protocols call it only when actually alarming), so it
        resolves through ``get_value`` — correct for any declared kind
        of the alarm register, not just the usual ``opaque``."""
        a = self.store.schema.alarm_slot
        if self.store.get_value(self._i, a) is None:
            self.set(a, reason)

    # -- name fallbacks --------------------------------------------------
    def _get_name(self, name: str, default: Any = None) -> Any:
        slot = self.store.schema.slots.get(name)
        if slot is not None:
            return self.store.get_value(self._i, slot, default)
        extra = self.store.extras[self._i]
        if extra is not None:
            return extra.get(name, default)
        return default

    def _set_name(self, name: str, value: Any) -> None:
        slot = self.store.schema.slots.get(name)
        if slot is not None:
            self.set(slot, value)
            return
        extra = self.store.extras[self._i]
        if extra is None:
            extra = self.store.extras[self._i] = {}
        extra[name] = value
        self.store.extras_dirty.add(self._i)
        self.store.mark_node(self._i)
        self.wrote = True

    # -- neighbour state --------------------------------------------------
    def read(self, neighbor: NodeId, handle, default: Any = None) -> Any:
        if type(handle) is not int:
            slot = self.snap.schema.slots.get(handle)
            if slot is None:
                extra = self.snap.extras[self._index[neighbor]]
                return extra.get(handle, default) if extra else default
            return self.snap.get_value(self._index[neighbor], slot, default)
        col = self._snap_data[handle]
        v = col[self._index[neighbor]]
        t = type(col)
        if t is list:
            return default if v is UNSET else v
        if v > SENT_CEIL:
            return v if t is array else self._pool[v]
        if v == NONE_S:
            return None
        if v == UNSET_S:
            return default
        return self.snap.overflow[handle][self._index[neighbor]]

    def read_nat(self, neighbor: NodeId, handle,
                 cap: int = 1 << 30) -> Optional[int]:
        if type(handle) is not int:
            return nat_value(self.read(neighbor, handle), cap)
        col = self._snap_data[handle]
        v = col[self._index[neighbor]]
        if type(col) is array:
            return v if 0 <= v <= cap else None
        if type(col) is list:
            return nat_value(v, cap)
        return nat_value(self._pool[v], cap) if v > SENT_CEIL else None

    def read_decoded(self, neighbor: NodeId, handle, decoder) -> Any:
        if type(handle) is not int:
            return decoder(self.read(neighbor, handle))
        col = self._snap_data[handle]
        i = self._index[neighbor]
        if type(col) is PoolColumn:
            v = col[i]
            if v >= 0:
                try:
                    d = self._memos[handle][v]
                except (TypeError, IndexError):
                    d = NO_DECODE
                if d is NO_DECODE:
                    d = decoder(self._pool[v])
                    self.snap.memo_for(handle, v)[v] = d
                return d
            return self._decode_sentinel(v, i, handle, decoder, self.snap)
        snap = self.snap
        if type(col) is array:
            return decoder(snap.get_value(i, handle))
        dec = self._snap_decs[handle]
        if dec is None:
            dec = snap.decode_col(handle)
        d = dec[i]
        if d is NO_DECODE:
            d = decoder(snap.get_value(i, handle))
            dec[i] = d
        return d

    # -- label sentinel ----------------------------------------------------
    def stable_sentinel(self) -> int:
        """Version sentinel of the closed neighbourhood's stable (label)
        registers, O(1) while no stable register anywhere changed (the
        store-level epoch is monotone, so an unchanged epoch pair
        implies every constituent version is unchanged)."""
        store = self.store
        snap = self.snap
        # both epochs are monotone non-decreasing, so their sum is
        # unchanged iff both are unchanged
        key = store.stable_epoch + snap.stable_epoch
        if key == self._sent_key:
            return self._sent_val
        sv = snap.stable_versions
        s = store.stable_versions[self._i]
        for j in self._nbr_idx:
            s += sv[j]
        self._sent_key = key
        self._sent_val = s
        return s

    # -- topology ---------------------------------------------------------
    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def weight(self, neighbor: NodeId):
        return self.network.graph.weight(self.node, neighbor)

    def port(self, neighbor: NodeId) -> int:
        return self.network.graph.port(self.node, neighbor)
