"""Message-passing emulation over shared registers (Section 2.2).

The paper reuses the Awerbuch–Varghese transformer, designed for message
passing, inside a shared-memory model.  Synchronously a written register
simply *is* the delivered message; asynchronously a reader could observe
one write many times (duplication), so the emulation runs the toggle
discipline of Afek–Kutten–Yung's data link: the sender attaches a
sequence toggle taking one of **three** values, re-"sends" until the
receiver's acknowledgement toggle matches, and the receiver consumes a
message exactly once per toggle change.

This module implements that unidirectional link as a register protocol:

* sender registers: ``dl_msg`` (payload), ``dl_tog`` (0/1/2);
* receiver registers: ``dl_ack`` (the last toggle consumed), plus the
  delivery callback collecting consumed payloads.

Self-stabilization: from arbitrary toggle/ack values the link delivers
each subsequent message exactly once after at most one spurious
delivery — the property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..graphs.weighted import NodeId, WeightedGraph
from .network import Network, NodeContext, Protocol
from .schedulers import AsynchronousScheduler, Daemon

TOGGLE_VALUES = 3


@dataclass
class LinkEndpoints:
    """One unidirectional link inside a network."""

    sender: NodeId
    receiver: NodeId


class DataLinkProtocol(Protocol):
    """Sender/receiver pair running the toggle discipline.

    The sender drains ``outbox`` (a Python-side queue — the application
    handing messages to the link); the receiver appends consumed payloads
    to ``inbox``.  Both queues are harness state; everything the nodes
    exchange flows through the O(log n)-bit registers.
    """

    def __init__(self, link: LinkEndpoints, outbox: List[Any],
                 inbox: List[Any]) -> None:
        self.link = link
        self.outbox = outbox
        self.inbox = inbox

    def init_node(self, ctx: NodeContext) -> None:
        if ctx.node == self.link.sender:
            ctx.set("dl_msg", None)
            ctx.set("dl_tog", 0)
        if ctx.node == self.link.receiver:
            ctx.set("dl_ack", 0)

    def step(self, ctx: NodeContext) -> None:
        if ctx.node == self.link.sender:
            self._sender_step(ctx)
        elif ctx.node == self.link.receiver:
            self._receiver_step(ctx)

    # -- sender ----------------------------------------------------------
    def _sender_step(self, ctx: NodeContext) -> None:
        tog = ctx.get("dl_tog")
        if not isinstance(tog, int) or not 0 <= tog < TOGGLE_VALUES:
            tog = 0
            ctx.set("dl_tog", 0)
        ack = ctx.read(self.link.receiver, "dl_ack")
        if ack == tog and self.outbox:
            # previous message acknowledged: send the next one
            ctx.set("dl_msg", self.outbox.pop(0))
            ctx.set("dl_tog", (tog + 1) % TOGGLE_VALUES)
        # otherwise keep re-exposing the current message (the "resend")

    # -- receiver ---------------------------------------------------------
    def _receiver_step(self, ctx: NodeContext) -> None:
        ack = ctx.get("dl_ack")
        if not isinstance(ack, int) or not 0 <= ack < TOGGLE_VALUES:
            ack = 0
        tog = ctx.read(self.link.sender, "dl_tog")
        if not isinstance(tog, int) or not 0 <= tog < TOGGLE_VALUES:
            return
        if tog != ack:
            # exactly one consumption per toggle change
            self.inbox.append(ctx.read(self.link.sender, "dl_msg"))
            ctx.set("dl_ack", tog)


@dataclass
class DataLinkRun:
    delivered: List[Any]
    rounds: int


def run_data_link(graph: WeightedGraph, sender: NodeId, receiver: NodeId,
                  messages: List[Any],
                  daemon: Optional[Daemon] = None,
                  corrupt_toggles: Optional[Tuple[int, int]] = None,
                  max_rounds: int = 10_000) -> DataLinkRun:
    """Ship ``messages`` across one link under an asynchronous daemon.

    ``corrupt_toggles`` optionally sets adversarial initial (toggle, ack)
    values to exercise self-stabilization; at most one spurious delivery
    (a stale payload) may precede the correct stream.
    """
    if not graph.has_edge(sender, receiver):
        raise ValueError("sender and receiver must be adjacent")
    network = Network(graph)
    outbox = list(messages)
    inbox: List[Any] = []
    protocol = DataLinkProtocol(LinkEndpoints(sender, receiver),
                                outbox, inbox)
    sched = AsynchronousScheduler(network, protocol, daemon)
    sched.initialize()
    if corrupt_toggles is not None:
        network.registers[sender]["dl_tog"] = corrupt_toggles[0]
        network.registers[receiver]["dl_ack"] = corrupt_toggles[1]

    def done(net: Network) -> bool:
        return not outbox and \
            net.registers[receiver].get("dl_ack") == \
            net.registers[sender].get("dl_tog")

    rounds = sched.run(max_rounds, stop_when=done)
    return DataLinkRun(delivered=inbox, rounds=rounds)
