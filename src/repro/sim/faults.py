"""Transient-fault injection (the adversary of Sections 2.4 and 8).

Faults corrupt node registers arbitrarily: marker labels, train pieces,
verifier working state — anything but the immutable topology/weights and
the node identities (the paper's model: identities and edge weights are
read-only inputs; everything stored is corruptible).

Injectors record which nodes were hit (as ghost state) so the harness can
compute detection distances.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..graphs.weighted import NodeId
from .network import Network
from .registers import is_ghost

FAULT_MARK = "_faulty"

#: sentinel returned by :func:`_perturb_value` for values of a kind it
#: cannot meaningfully alter (opaque payloads: floats, lists, dicts...).
#: Callers must skip such registers — writing the value back unchanged
#: and still marking the node faulty would claim a corruption that
#: never happened, skewing detection-distance metrics.
UNPERTURBABLE = object()


def _perturb_value(value: Any, rng: random.Random) -> Any:
    """Return a value of the same general shape but different content,
    or :data:`UNPERTURBABLE` for kinds the perturber does not know."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        delta = rng.choice([-1, 1]) * rng.randint(1, max(2, abs(value) + 1))
        return value + delta
    if isinstance(value, str):
        if not value:
            return "x"
        i = rng.randrange(len(value))
        alphabet = "01*updownne"
        return value[:i] + rng.choice(alphabet) + value[i + 1:]
    if isinstance(value, tuple):
        if not value:
            return (0,)
        i = rng.randrange(len(value))
        elem = _perturb_value(value[i], rng)
        if elem is UNPERTURBABLE:
            return UNPERTURBABLE
        return value[:i] + (elem,) + value[i + 1:]
    if value is None:
        return 0
    return UNPERTURBABLE


class FaultInjector:
    """Corrupts registers at chosen nodes and records the fault set."""

    def __init__(self, network: Network, seed: int = 0) -> None:
        self.network = network
        self.rng = random.Random(seed)
        self.faulty_nodes: List[NodeId] = []

    def _mark(self, node: NodeId) -> None:
        self.network.registers[node][FAULT_MARK] = True
        if node not in self.faulty_nodes:
            self.faulty_nodes.append(node)

    def corrupt_register(self, node: NodeId, name: str,
                         value: Any = None) -> None:
        """Set one register to ``value`` (or a random perturbation).

        Perturbation mode (``value=None``) requires the register to exist:
        corrupting stored state must not *invent* registers the protocol
        never wrote (an invented register silently changes the memory
        accounting and can shadow a protocol default).  Pass an explicit
        ``value`` to model an adversary that plants new state.
        """
        regs = self.network.registers[node]
        if value is None:
            if name not in regs:
                raise KeyError(
                    f"node {node!r} has no register {name!r} to perturb; "
                    "pass an explicit value to plant new state")
            value = _perturb_value(regs[name], self.rng)
            if value is UNPERTURBABLE:
                raise ValueError(
                    f"register {name!r} at node {node!r} holds an opaque "
                    "value the perturber cannot alter; pass an explicit "
                    "value to corrupt it")
        regs[name] = value
        self._mark(node)

    def corrupt_node(self, node: NodeId, fraction: float = 0.5,
                     protect: Sequence[str] = ()) -> List[str]:
        """Perturb a random subset of the node's non-ghost registers.

        Returns the names of the registers that actually changed.  A
        register whose value the perturber cannot alter (an opaque
        payload) is skipped rather than rewritten unchanged, and a node
        where *nothing* changed is not marked faulty — the ghost fault
        set must never claim a corruption that did not happen.
        """
        regs = self.network.registers[node]
        # sorted, not iteration order: the rng's draw sequence must not
        # depend on the storage backend (dict insertion order vs register
        # file slot order)
        names = sorted(n for n in regs
                       if not is_ghost(n) and n not in protect
                       and n != "alarm")
        if not names:
            return []
        k = max(1, int(len(names) * fraction))
        chosen = self.rng.sample(names, min(k, len(names)))
        corrupted = []
        for name in chosen:
            value = _perturb_value(regs[name], self.rng)
            if value is UNPERTURBABLE:
                continue
            regs[name] = value
            corrupted.append(name)
        if corrupted:
            self._mark(node)
        return corrupted

    def corrupt_random_nodes(self, count: int,
                             fraction: float = 0.5) -> List[NodeId]:
        """Corrupt ``count`` distinct random nodes; returns them."""
        nodes = self.network.graph.nodes()
        chosen = self.rng.sample(nodes, min(count, len(nodes)))
        for v in chosen:
            self.corrupt_node(v, fraction)
        return chosen

    def scramble_node(self, node: NodeId) -> None:
        """Adversarial wipe: perturb *every* register of the node."""
        self.corrupt_node(node, fraction=1.0)


def detection_distance(network: Network,
                       faulty: Sequence[NodeId]) -> Optional[int]:
    """max over faults of (hop distance to the closest alarming node),
    or None when no node raised an alarm."""
    alarming = list(network.alarms().keys())
    if not alarming or not faulty:
        return None
    worst = 0
    for f in faulty:
        dist = network.graph.bfs_distances(f)
        best = min((dist[a] for a in alarming if a in dist), default=None)
        if best is None:
            return None
        worst = max(worst, best)
    return worst
