"""Sustained-churn events and re-stabilization tracking (ROADMAP 4(b)).

Every fault recipe elsewhere in the repo is a one-shot register hit on a
frozen topology.  This module makes the topology itself a fault axis: a
:class:`ChurnScript` is a deterministic, seed-derived stream of
``crash(node)`` / ``rejoin(node)`` / ``reweight(edge)`` events, and
:func:`run_with_churn` drives a scheduler through it, measuring — per
event — how the verifier *re*-stabilizes:

* ``rounds_to_redetect`` — rounds until some node raises an alarm after
  the event (None: the event went undetected within its window; benign
  events, like a non-tree edge reweight, *should* go undetected);
* ``rounds_to_quiesce`` — rounds until the protocol's settle predicate
  holds alarm-free after the event (None: never within the window, or
  the protocol has no settle predicate);
* ``alarms_per_event`` — alarming nodes at the detection point;
* ``availability`` — fraction of alarm-free rounds across all windows.

Event semantics:

* ``crash(v)`` removes the node from the graph (survivor ports are
  tombstoned, never renumbered — labels bake port numbers in) and from
  the storage backend (columnar rows are parked on a freelist, columns
  never change length).  At most one node is down at a time, and the
  victim is never a cut vertex, so the surviving network stays
  connected.
* ``rejoin(v)`` restores the node's edges at their exact original ports
  and wakes the node up *wiped*: only its stable (label) registers are
  restored — the marker's labels are part of the input assignment — and
  ``init_node`` rebuilds the working registers from scratch.
* ``reweight(u, v, w)`` bumps a non-MST edge to a fresh distinct weight
  strictly above every existing one.  This preserves the unique MST, so
  a sound verifier must *not* alarm — the reweight windows double as a
  false-alarm immunity check.

Fencing: events apply strictly *between* ``scheduler.run()`` calls.
Run boundaries already fence super-batch coalescing and retire
per-sweep vector plans (the async scheduler's plan keys embed a per-run
serial, and every run rebuilds contexts and re-snapshots); the
scheduler's ``topology_changed()`` adds the cross-run invalidation —
adjacency maps, daemon ball memos and in-flight sweeps, round-coverage
sets, fused-ops identities, and the protocol's label-derived verdict
caches (via a forced re-bind).

Determinism: scripts derive only from the graph and the seed; the
driver's metrics are pure round/alarm-count arithmetic over quantities
the storage-differential matrices already prove backend-equal, so a
churn run is bit-for-bit identical on dict, schema, columnar, and numpy
storage.  Callers that run one script against several backends must
hand each run its own ``graph.copy()`` — the driver mutates the
network's graph in place.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..graphs.weighted import GraphError, NodeId, WeightedGraph, edge_key
from .network import Network
from .registers import ALARM, compile_schema, is_ghost

__all__ = ["ChurnEvent", "ChurnScript", "ChurnReport", "run_with_churn",
           "clear_alarms"]


class ChurnEvent:
    """One topology event: ``kind`` is ``"crash"``, ``"rejoin"`` or
    ``"reweight"``; ``mark`` is the event's position in the script.
    Crash/rejoin carry ``node``; reweight carries ``edge`` (canonical
    ``(u, v)``) and the new ``weight``."""

    __slots__ = ("mark", "kind", "node", "edge", "weight")

    def __init__(self, mark: int, kind: str,
                 node: Optional[NodeId] = None,
                 edge: Optional[Tuple[NodeId, NodeId]] = None,
                 weight: Any = None) -> None:
        self.mark = mark
        self.kind = kind
        self.node = node
        self.edge = edge
        self.weight = weight

    def key(self) -> tuple:
        return (self.mark, self.kind, self.node, self.edge, self.weight)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ChurnEvent) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        if self.kind == "reweight":
            return (f"ChurnEvent({self.mark}, reweight, edge={self.edge}, "
                    f"weight={self.weight!r})")
        return f"ChurnEvent({self.mark}, {self.kind}, node={self.node})"


def _articulation_points(graph: WeightedGraph) -> set:
    """Cut vertices of a connected graph (iterative Tarjan DFS)."""
    nodes = graph.nodes()
    if not nodes:
        return set()
    disc: Dict[NodeId, int] = {}
    low: Dict[NodeId, int] = {}
    parent: Dict[NodeId, Optional[NodeId]] = {}
    cuts: set = set()
    timer = 0
    for root in nodes:
        if root in disc:
            continue
        parent[root] = None
        stack: List[Tuple[NodeId, int]] = [(root, 0)]
        disc[root] = low[root] = timer = timer + 1
        root_children = 0
        order: List[NodeId] = [root]
        while stack:
            v, i = stack[-1]
            nbrs = graph.neighbors(v)
            if i < len(nbrs):
                stack[-1] = (v, i + 1)
                u = nbrs[i]
                if u not in disc:
                    parent[u] = v
                    if v == root:
                        root_children += 1
                    disc[u] = low[u] = timer = timer + 1
                    stack.append((u, 0))
                    order.append(u)
                elif u != parent[v]:
                    if disc[u] < low[v]:
                        low[v] = disc[u]
            else:
                stack.pop()
                p = parent[v]
                if p is not None:
                    if low[v] < low[p]:
                        low[p] = low[v]
                    if p != root and low[v] >= disc[p]:
                        cuts.add(p)
        if root_children > 1:
            cuts.add(root)
    return cuts


def _mst_edges(graph: WeightedGraph) -> set:
    """The unique MST's edge set (Kruskal; weights must be distinct)."""
    parent: Dict[NodeId, NodeId] = {v: v for v in graph.nodes()}

    def find(v: NodeId) -> NodeId:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    tree: set = set()
    for u, v, _w in sorted(graph.edges(), key=lambda e: e[2]):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.add(edge_key(u, v))
    return tree


class ChurnScript:
    """A deterministic, seed-derived event stream over one graph.

    :meth:`generate` draws events with ``random.Random(seed)`` against a
    scratch copy of the graph, so the same (graph, seed, params) always
    yields the identical stream — the determinism the storage
    differential matrices rely on.  Invariants enforced:

    * at most one node is down at any point, and every ``crash`` is
      immediately followed by its ``rejoin`` (next event), so a stub's
      neighbours are always present at restore time;
    * crash victims are never cut vertices (survivors stay connected)
      and never drop the live node count below 4;
    * reweights touch only non-MST int-weighted edges, with fresh
      weights strictly above every existing one — weight distinctness
      and the unique MST are preserved.
    """

    __slots__ = ("events", "seed")

    def __init__(self, events: Sequence[ChurnEvent], seed: int) -> None:
        self.events: Tuple[ChurnEvent, ...] = tuple(events)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def key(self) -> tuple:
        return tuple(e.key() for e in self.events)

    @classmethod
    def generate(cls, graph: WeightedGraph, seed: int, events: int = 6,
                 crash: bool = True, reweight: bool = True) -> "ChurnScript":
        rng = random.Random(seed)
        work = graph.copy()
        pool: List[Tuple[NodeId, NodeId]] = []
        if reweight:
            weights = [w for _, _, w in work.edges()]
            if weights and all(isinstance(w, int) and
                               not isinstance(w, bool) for w in weights):
                tree = _mst_edges(work)
                pool = sorted(e for e in (edge_key(u, v)
                                          for u, v, _ in work.edges())
                              if e not in tree)
        next_weight = (max((w for _, _, w in work.edges()), default=0) + 1
                       if pool else None)
        out: List[ChurnEvent] = []
        down: Optional[NodeId] = None
        stub: Optional[dict] = None
        while len(out) < events:
            if down is not None:
                out.append(ChurnEvent(len(out), "rejoin", node=down))
                work.restore_node(down, stub)
                down = stub = None
                continue
            kinds: List[str] = []
            if crash and work.n >= 5:
                kinds.append("crash")
            if pool:
                kinds.append("reweight")
            if not kinds:
                break
            kind = rng.choice(kinds)
            if kind == "crash":
                cuts = _articulation_points(work)
                cands = [v for v in work.nodes() if v not in cuts]
                if not cands:
                    if not pool:
                        break
                    kind = "reweight"
                else:
                    victim = rng.choice(cands)
                    stub = work.remove_node(victim)
                    down = victim
                    out.append(ChurnEvent(len(out), "crash", node=victim))
                    continue
            u, v = rng.choice(pool)
            w = next_weight
            next_weight += 1
            work.set_weight(u, v, w)
            out.append(ChurnEvent(len(out), "reweight", edge=(u, v),
                                  weight=w))
        if down is not None:
            # never leave a node down past the script's end
            out.append(ChurnEvent(len(out), "rejoin", node=down))
        return cls(out, seed)


class ChurnReport:
    """Per-event re-stabilization metrics of one churned run."""

    __slots__ = ("events", "rounds", "redetect", "quiesce", "alarms",
                 "availability")

    def __init__(self, events: Tuple[tuple, ...], rounds: int,
                 redetect: Tuple[Optional[int], ...],
                 quiesce: Tuple[Optional[int], ...],
                 alarms: Tuple[int, ...], availability: float) -> None:
        #: the executed events' keys (mark, kind, node, edge, weight)
        self.events = events
        #: total rounds driven across all event windows
        self.rounds = rounds
        self.redetect = redetect
        self.quiesce = quiesce
        self.alarms = alarms
        self.availability = availability

    def as_tuple(self) -> tuple:
        return (self.events, self.rounds, self.redetect, self.quiesce,
                self.alarms, self.availability)


def clear_alarms(network: Network) -> None:
    """Reset latched alarms (the operator acknowledging an alert): the
    alarm register is written back to None at every alarming node, on
    any storage backend."""
    for v in list(network.alarms()):
        network.registers[v][ALARM] = None


def _stable_names(protocol) -> Optional[List[str]]:
    """The protocol's stable (label) register names — what survives a
    node's crash, the way the marker's input assignment does.  None for
    schema-less protocols (everything non-ghost survives)."""
    schema = protocol.register_schema()
    if schema is None:
        return None
    compiled = compile_schema(schema)
    return [n for n, s in zip(compiled.names, compiled.stable_mask) if s]


def run_with_churn(network: Network, scheduler, protocol,
                   script: ChurnScript, window: int,
                   settled: Optional[Callable[[Network], bool]] = None
                   ) -> ChurnReport:
    """Drive ``scheduler`` through ``script``, running up to ``window``
    rounds after each event and measuring re-stabilization.

    Per event: apply it, call ``scheduler.topology_changed()``, then run
    until the first alarm (``rounds_to_redetect``; None if the window
    passes alarm-free), record the alarming nodes, clear the latch, and
    spend the window's remainder re-settling — re-clearing any further
    alarms — until ``settled(network)`` holds alarm-free
    (``rounds_to_quiesce``) or the window is exhausted.  Once settled,
    the window's tail is not simulated (a settled protocol's rounds are
    no-ops) but counts as available.

    Round accounting: asynchronous schedulers stop mid-round when the
    stop condition fires between activations and report only *completed*
    rounds, so a run that stopped on an alarm is charged
    ``max(rounds, 1)`` against the window (the partial round happened);
    that round counts as unavailable.  A benign event (no alarm, settle
    predicate held before and after its window) reports
    ``rounds_to_quiesce = 0``.

    The caller owns initial settling; the network's graph is mutated in
    place.
    """
    if window < 1:
        raise ValueError("churn window must be >= 1 round")
    stable = _stable_names(protocol)
    down: Dict[NodeId, dict] = {}
    redetect: List[Optional[int]] = []
    quiesce: List[Optional[int]] = []
    alarms: List[int] = []
    executed: List[tuple] = []
    total_rounds = 0
    avail_rounds = 0

    def alarm_free(n: int, ended_alarmed: bool) -> int:
        # a run that stopped on an alarm spent its final round alarmed
        return n - 1 if ended_alarmed else n

    for event in script:
        if event.kind == "crash":
            down[event.node] = network.remove_node(event.node)
        elif event.kind == "rejoin":
            stub = down.pop(event.node)
            network.add_node(event.node, stub)
            regs = stub["registers"]
            view = network.registers[event.node]
            if stable is None:
                for name in sorted(regs):
                    if not is_ghost(name) and name != ALARM:
                        view[name] = regs[name]
            else:
                for name in stable:
                    if name in regs:
                        view[name] = regs[name]
            protocol.init_node(network.local_context(event.node))
        elif event.kind == "reweight":
            u, v = event.edge
            network.graph.set_weight(u, v, event.weight)
        else:
            raise GraphError(f"unknown churn event kind {event.kind!r}")
        scheduler.topology_changed()
        executed.append(event.key())
        pre_settled = settled is not None and settled(network)

        det = scheduler.run(window, stop_when=_first_alarm)
        detected = network.has_alarm()
        # a mid-round async stop reports 0 completed rounds; the partial
        # round happened, so charge it as one
        det_rounds = max(det, 1) if detected else det
        total_rounds += det_rounds
        avail_rounds += alarm_free(det_rounds, detected)
        redetect.append(det_rounds if detected else None)
        alarms.append(len(network.alarms()) if detected else 0)
        clear_alarms(network)

        spent = det_rounds
        settled_at: Optional[int] = None
        if not detected and settled is not None and settled(network):
            settled_at = 0 if pre_settled else det_rounds
        stop = (_settle_stop if settled is None
                else _settle_or_alarm(settled))
        while settled_at is None and spent < window:
            q = scheduler.run(window - spent, stop_when=stop)
            realarmed = network.has_alarm()
            q_rounds = max(q, 1) if realarmed else q
            spent += q_rounds
            total_rounds += q_rounds
            avail_rounds += alarm_free(q_rounds, realarmed)
            if realarmed:
                clear_alarms(network)
                continue
            if settled is not None and settled(network):
                settled_at = spent
                # the settled tail is alarm-free by determinism; count
                # it without simulating no-op rounds
                avail_rounds += window - spent
                total_rounds += window - spent
            elif q == 0:
                break  # no progress and nothing left to wait for
        quiesce.append(settled_at)

    return ChurnReport(tuple(executed), total_rounds, tuple(redetect),
                       tuple(quiesce), tuple(alarms),
                       (avail_rounds / total_rounds) if total_rounds
                       else 1.0)


def _first_alarm(network: Network) -> bool:
    return network.has_alarm()


def _settle_stop(network: Network) -> bool:
    # no settle predicate: the remainder window only watches for alarms
    return network.has_alarm()


def _settle_or_alarm(settled: Callable[[Network], bool]
                     ) -> Callable[[Network], bool]:
    def stop(network: Network) -> bool:
        return network.has_alarm() or settled(network)
    return stop
