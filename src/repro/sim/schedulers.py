"""Synchronous and asynchronous execution of protocols.

Synchronous model: all nodes step simultaneously each round, reading the
registers their neighbours exposed at the end of the previous round.

Asynchronous model: a *daemon* picks batches of nodes to activate; an
activated node performs one atomic read-all-neighbours/update step against
the live registers.  Time is measured in **asynchronous rounds**: a round
completes when every node has been activated at least once since the
previous round boundary (the standard self-stabilization measure, matching
the paper's strongly fair distributed daemon).

Storage: when the protocol declares a register schema
(:meth:`Protocol.register_schema`) both schedulers back the network with
typed register storage (:meth:`Network.adopt_schema`), bind the
protocol's register names to integer slot handles once, and drive steps
through a slot-addressed context.  The ``storage`` parameter selects
the backend: ``"schema"`` (default) keeps per-node slot lists and
:class:`~repro.sim.network.SlotNodeContext`; ``"columnar"`` packs the
network into per-register columns (:mod:`repro.sim.columnar` —
``array('q')`` nat columns, interning pool, bulk-copy snapshots) driven
through :class:`~repro.sim.columnar.ColumnarNodeContext`; ``"dict"``
(or an undeclared protocol) keeps the legacy dict storage.  All three
representations are bit-for-bit equivalent
(``tests/test_storage_differential.py``).

Bulk-activation plane: when the protocol declares
:meth:`Protocol.bulk_step` (and ``bulk=True``, the default), both
schedulers route activation batches through it instead of stepping node
by node — the synchronous scheduler hands over whole rounds of active
nodes (with fused column ops licensed on columnar storage), the
asynchronous scheduler every multi-node daemon batch (skip logic and
accounting threaded through the batch callbacks).  Asynchronous batches
fuse only under the *conflict-free license*: a
:class:`ConflictFreeDaemon` batch activates nodes with pairwise
disjoint closed neighbourhoods, so live reads cannot observe a
batchmate's write and the columnar kernels run off the
synchronous-only path.  ``bulk=False`` keeps the scalar loops; both
modes are bit-for-bit equivalent (``tests/test_bulk_plane.py``).  See
:mod:`repro.sim.bulk`.
"""

from __future__ import annotations

import random
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from ..graphs.weighted import NodeId
from .bulk import BulkBatch, ColumnarBulkOps
from .columnar import ColumnarNodeContext
from .network import (Network, NodeContext, Protocol, SlotNodeContext,
                      StopCondition)

#: storage backends a scheduler can run a schema-declaring protocol on
STORAGE_DICT = "dict"
STORAGE_SCHEMA = "schema"
STORAGE_COLUMNAR = "columnar"
STORAGE_NUMPY = "numpy"
STORAGE_KINDS = (STORAGE_DICT, STORAGE_SCHEMA, STORAGE_COLUMNAR,
                 STORAGE_NUMPY)

#: the column-backed kinds (shared representation, different batch ops)
_COLUMN_STORAGES = (STORAGE_COLUMNAR, STORAGE_NUMPY)


def _storage_mode(storage, use_schema: bool) -> str:
    """Normalize the scheduler storage selection: the ``storage`` name
    wins when given; otherwise the legacy ``use_schema`` flag picks
    between ``schema`` and ``dict``.  ``numpy`` without numpy installed
    degrades to ``columnar`` with a one-shot warning — the tiers are
    bit-for-bit identical, so this is an implementation substitution,
    never a semantic one."""
    if storage is None:
        return STORAGE_SCHEMA if use_schema else STORAGE_DICT
    if storage not in STORAGE_KINDS:
        raise ValueError(f"unknown storage {storage!r} "
                         f"(expected one of {STORAGE_KINDS})")
    if storage == STORAGE_NUMPY:
        from .npcolumnar import numpy_or_none, warn_fallback_once
        if numpy_or_none() is None:
            warn_fallback_once()
            return STORAGE_COLUMNAR
    return storage


def _bind_storage(network: Network, protocol: Protocol, storage: str):
    """Adopt the protocol's schema (if any) and bind its handles.

    Returns the compiled schema backing the run, or None for legacy dict
    storage (or an undeclared protocol, which keeps dict storage under
    every mode).  Binding always happens — a protocol previously bound
    to slots by another scheduler must be re-bound to names before a
    dict run."""
    compiled = None
    if storage != STORAGE_DICT:
        schema = protocol.register_schema()
        if schema is not None:
            compiled = network.adopt_schema(
                schema, columnar=("numpy" if storage == STORAGE_NUMPY
                                  else storage == STORAGE_COLUMNAR))
    protocol.bind_registers(compiled)
    protocol._storage_binding = compiled
    return compiled


def _ensure_storage(network: Network, protocol: Protocol,
                    storage: str, compiled):
    """Re-adopt the scheduler's storage layout if another scheduler
    switched the shared network's backing since the last run; returns
    the compiled schema now backing it (``compiled`` when unchanged)."""
    if compiled is None:
        return None
    want_columns = storage in _COLUMN_STORAGES
    if want_columns != (network.columns is not None):
        return _bind_storage(network, protocol, storage)
    if want_columns:
        from .npcolumnar import NumpyColumnStore
        if (type(network.columns) is NumpyColumnStore) != \
                (storage == STORAGE_NUMPY):
            return _bind_storage(network, protocol, storage)
    return compiled


def _ensure_binding(protocol: Protocol, compiled) -> None:
    """Re-bind before running if another scheduler re-bound the protocol
    since construction.  Binding clears the protocol's label-derived
    caches, so a protocol shared across schedulers/networks (legal, if
    unusual) never runs with another network's handles or serves another
    network's cached verdicts — at the cost of a cache flush per
    hand-over."""
    if getattr(protocol, "_storage_binding", _UNBOUND) is not compiled:
        protocol.bind_registers(compiled)
        protocol._storage_binding = compiled


_UNBOUND = object()


class SynchronousScheduler:
    """Lock-step rounds over a network (ideal time complexity).

    By default the scheduler runs with a *fast path* that is bit-for-bit
    equivalent to the naive lock-step loop (``fast_path=False``, and
    proven so by ``tests/test_scheduler_equivalence.py``):

    * **dirty-set snapshot** — instead of deep-copying every node's
      registers each round, only the state of nodes whose registers
      actually changed last round is re-copied into the read snapshot
      (under register files the refresh is *slot-level*: only the slots
      that changed are copied);
    * **quiescence skip** — a node whose closed neighbourhood's registers
      were untouched last round would read exactly the inputs of its
      previous step and, since ``Protocol.step`` must be a deterministic
      function of the visible registers, rewrite exactly its current
      state; such nodes are not re-stepped.  When *every* node is
      quiescent the remaining rounds are fast-forwarded in O(1).

    The fast path assumes (a) ``step`` is deterministic in the
    ctx-visible state (all protocols in this repo are — randomness lives
    in the daemons and fault injectors, not the protocols), (b) register
    writes go through the context API, and (c) ``stop_when``
    is a pure function of the network state.  A protocol that overrides
    ``on_round_end`` may mutate registers behind the dirty tracking, so
    it silently falls back to the naive loop.  External register writes
    (fault injection) between ``run()`` calls are always safe: every
    ``run()`` starts from a full snapshot and a full step round.
    """

    def __init__(self, network: Network, protocol: Protocol,
                 fast_path: bool = True, use_schema: bool = True,
                 storage: Optional[str] = None,
                 bulk: bool = True,
                 vec_min_batch: Optional[int] = None) -> None:
        self.network = network
        self.protocol = protocol
        self.rounds = 0
        self._initialized = False
        #: minimum batch size for the numpy vector tier (None: kernel
        #: default) — implementation-only, threaded through BulkBatch
        self.vec_min_batch = vec_min_batch
        self.fast_path = bool(fast_path) and (
            type(protocol).on_round_end is Protocol.on_round_end)
        #: bulk-activation plane: hand whole rounds to the protocol's
        #: declared ``bulk_step`` (``bulk=False`` keeps the scalar loop)
        self._bulk_step = protocol.bulk_step if bulk else None
        self._storage = _storage_mode(storage, use_schema)
        self._compiled = _bind_storage(network, protocol, self._storage)
        self._adjacency: Optional[Dict[NodeId, List[NodeId]]] = None
        self._snap_store = None
        self._col_contexts = None
        self._bulk_ops = None

    def _neighbors_of(self) -> Dict[NodeId, List[NodeId]]:
        if self._adjacency is None:
            graph = self.network.graph
            self._adjacency = {v: graph.neighbors(v) for v in graph.nodes()}
        return self._adjacency

    def topology_changed(self) -> None:
        """Invalidate every topology-derived cache after a churn event
        (:mod:`repro.sim.churn`): the adjacency map, the columnar
        snapshot/context pair, and the fused batch ops are rebuilt on
        the next ``run()``, and the protocol is re-bound (binding
        clears its label-derived verdict caches, whose stable-version
        keys are not collision-free across a change of read scope).
        Churn events apply *between* ``run()`` calls, which already
        fence the fast path: every run starts from a full snapshot and
        a full step round."""
        self._adjacency = None
        self._snap_store = None
        self._col_contexts = None
        self._bulk_ops = None
        self.protocol._storage_binding = _UNBOUND

    def _columnar_state(self):
        """(snapshot store, per-node contexts), rebuilt when the network's
        column store was replaced (storage switch, re-adoption)."""
        store = self.network.columns
        snap = self._snap_store
        if snap is None or snap.schema is not store.schema or \
                self._col_contexts is None or \
                self._col_contexts[0] is not store:
            snap = store.fork()
            adjacency = self._neighbors_of()
            contexts = {v: ColumnarNodeContext(self.network, v, store, snap,
                                               adjacency[v])
                        for v in self.network.graph.nodes()}
            self._snap_store = snap
            self._col_contexts = (store, contexts)
        return self._snap_store, self._col_contexts[1]

    def _bulk_ops_for(self, store, snap):
        """The fused batch ops for (store, snap), cached so protocols
        can key their fused closures on the ops object's identity."""
        ops = self._bulk_ops
        if ops is None or ops.store is not store or ops.snap is not snap:
            ops = self._bulk_ops = ColumnarBulkOps(store, snap)
        return ops

    def initialize(self) -> None:
        """Run ``init_node`` at every node (idempotent)."""
        if self._initialized:
            return
        if self.network.columns is not None and self._compiled is not None:
            snap, contexts = self._columnar_state()
            snap.refresh_from(self.network.columns, full=True)
            for v in self.network.graph.nodes():
                self.protocol.init_node(contexts[v])
        elif self._compiled is not None:
            files = self.network.files
            snapshot = {v: f.copy() for v, f in files.items()}
            adjacency = self._neighbors_of()
            for v in self.network.graph.nodes():
                self.protocol.init_node(SlotNodeContext(
                    self.network, v, snapshot, None, adjacency[v]))
        else:
            snapshot = self._snapshot()
            for v in self.network.graph.nodes():
                self.protocol.init_node(NodeContext(self.network, v, snapshot))
        self._initialized = True

    def _snapshot(self):
        return {v: dict(regs) for v, regs in self.network.registers.items()}

    def run(self, max_rounds: int,
            stop_when: Optional[StopCondition] = None) -> int:
        """Run up to ``max_rounds`` rounds; return rounds executed.

        Stops early (after completing a round) when ``stop_when(network)``
        becomes true.
        """
        _ensure_binding(self.protocol, self._compiled)
        self._compiled = _ensure_storage(self.network, self.protocol,
                                         self._storage, self._compiled)
        self.initialize()
        if self._compiled is not None and self.network.columns is not None:
            if self.fast_path:
                return self._run_fast_columns(max_rounds, stop_when)
            return self._run_naive_columns(max_rounds, stop_when)
        if self._compiled is not None:
            if self.fast_path:
                return self._run_fast_slots(max_rounds, stop_when)
            return self._run_naive_slots(max_rounds, stop_when)
        if self.fast_path:
            return self._run_fast(max_rounds, stop_when)
        executed = 0
        bulk_step = self._bulk_step
        for _ in range(max_rounds):
            snapshot = self._snapshot()
            if bulk_step is not None:
                bulk_step(BulkBatch([
                    NodeContext(self.network, v, snapshot)
                    for v in self.network.graph.nodes()]))
            else:
                for v in self.network.graph.nodes():
                    self.protocol.step(NodeContext(self.network, v,
                                                   snapshot))
            self.rounds += 1
            executed += 1
            self.protocol.on_round_end(self.network, self.rounds)
            if stop_when is not None and stop_when(self.network):
                break
        return executed

    def _run_fast(self, max_rounds: int,
                  stop_when: Optional[StopCondition]) -> int:
        network = self.network
        protocol = self.protocol
        bulk_step = self._bulk_step
        nodes = network.graph.nodes()
        neighbors = network.graph.neighbors
        registers = network.registers
        node_order = {v: i for i, v in enumerate(nodes)}
        executed = 0
        snapshot: dict = {}
        # registers may have been rewritten externally since the last call
        # (fault injection, resets): the first round re-snapshots and
        # re-steps everything, exactly like the naive loop.
        changed_prev: Optional[Set[NodeId]] = None
        while executed < max_rounds:
            if changed_prev is None:
                snapshot = {v: dict(regs) for v, regs in registers.items()}
                active: Sequence[NodeId] = nodes
            else:
                for v in changed_prev:
                    snapshot[v] = dict(registers[v])
                if not changed_prev:
                    # global quiescence: every remaining round is a no-op
                    # (and stop_when stayed false after the last change).
                    self.rounds += max_rounds - executed
                    return max_rounds
                if len(changed_prev) == len(nodes):
                    # full churn (e.g. the train verifier): skip the
                    # stale-set construction entirely
                    active = nodes
                else:
                    stale: Set[NodeId] = set()
                    for u in changed_prev:
                        stale.add(u)
                        stale.update(neighbors(u))
                    # O(|stale| log |stale|), not O(n): localized churn
                    # must not pay a full-network scan every round
                    active = (nodes if len(stale) >= len(nodes)
                              else sorted(stale,
                                          key=node_order.__getitem__))
            changed: Set[NodeId] = set()
            if bulk_step is not None:
                bulk_step(BulkBatch([
                    NodeContext(network, v, snapshot, changed)
                    for v in active]))
            else:
                for v in active:
                    protocol.step(NodeContext(network, v, snapshot,
                                              changed))
            self.rounds += 1
            executed += 1
            self.protocol.on_round_end(network, self.rounds)
            changed_prev = changed
            if stop_when is not None and stop_when(network):
                break
        return executed

    # -- register-file (slot) paths -------------------------------------
    def _run_naive_slots(self, max_rounds: int,
                         stop_when: Optional[StopCondition]) -> int:
        network = self.network
        protocol = self.protocol
        nodes = network.graph.nodes()
        files = network.files
        adjacency = self._neighbors_of()
        executed = 0
        bulk_step = self._bulk_step
        for _ in range(max_rounds):
            snapshot = {v: f.copy() for v, f in files.items()}
            if bulk_step is not None:
                bulk_step(BulkBatch([
                    SlotNodeContext(network, v, snapshot, None,
                                    adjacency[v]) for v in nodes]))
            else:
                for v in nodes:
                    protocol.step(SlotNodeContext(network, v, snapshot,
                                                  None, adjacency[v]))
            self.rounds += 1
            executed += 1
            protocol.on_round_end(network, self.rounds)
            if stop_when is not None and stop_when(network):
                break
        return executed

    def _run_fast_slots(self, max_rounds: int,
                        stop_when: Optional[StopCondition]) -> int:
        network = self.network
        protocol = self.protocol
        bulk_step = self._bulk_step
        nodes = network.graph.nodes()
        files = network.files
        adjacency = self._neighbors_of()
        node_order = {v: i for i, v in enumerate(nodes)}
        executed = 0
        snapshot: Dict[NodeId, object] = {}
        # one context per node, reused across rounds (the snapshot dict
        # is filled in place so the contexts' reference stays valid)
        contexts = {v: SlotNodeContext(network, v, snapshot, None,
                                       adjacency[v]) for v in nodes}
        changed_prev: Optional[Dict[NodeId, set]] = None
        while executed < max_rounds:
            if changed_prev is None:
                snapshot.clear()
                for v, f in files.items():
                    snapshot[v] = f.copy()
                active: Sequence[NodeId] = nodes
            else:
                if not changed_prev:
                    self.rounds += max_rounds - executed
                    return max_rounds
                for v, marks in changed_prev.items():
                    live = files[v]
                    if -1 in marks:
                        # an undeclared (extras) register changed: the
                        # slot-level refresh cannot express it, recopy
                        snapshot[v] = live.copy()
                    else:
                        snap = snapshot[v]
                        ss, sn, sd = snap.slots, snap.nats, snap.decoded
                        ls, ln, ld = live.slots, live.nats, live.decoded
                        for i in marks:
                            ss[i] = ls[i]
                            sn[i] = ln[i]
                            sd[i] = ld[i]
                        snap.stable_version = live.stable_version
                if len(changed_prev) == len(nodes):
                    active = nodes
                else:
                    stale: Set[NodeId] = set()
                    for u in changed_prev:
                        stale.add(u)
                        stale.update(adjacency[u])
                    active = (nodes if len(stale) >= len(nodes)
                              else sorted(stale,
                                          key=node_order.__getitem__))
            changed: Dict[NodeId, set] = {}
            if bulk_step is not None:
                batch_ctxs = []
                append = batch_ctxs.append
                for v in active:
                    ctx = contexts[v]
                    ctx._dirty = changed
                    ctx._marks = None
                    append(ctx)
                bulk_step(BulkBatch(batch_ctxs))
            else:
                for v in active:
                    ctx = contexts[v]
                    ctx._dirty = changed
                    ctx._marks = None
                    protocol.step(ctx)
            self.rounds += 1
            executed += 1
            protocol.on_round_end(network, self.rounds)
            changed_prev = changed
            if stop_when is not None and stop_when(network):
                break
        return executed

    # -- columnar paths --------------------------------------------------
    def _run_naive_columns(self, max_rounds: int,
                           stop_when: Optional[StopCondition]) -> int:
        network = self.network
        protocol = self.protocol
        bulk_step = self._bulk_step
        nodes = network.graph.nodes()
        store = network.columns
        snap, contexts = self._columnar_state()
        if bulk_step is not None:
            ops = self._bulk_ops_for(store, snap)
            ctx_list = [contexts[v] for v in nodes]
            idx_list = [c._i for c in ctx_list]
        executed = 0
        for _ in range(max_rounds):
            snap.refresh_from(store, full=True)
            store.clear_dirty()
            if bulk_step is not None:
                bulk_step(BulkBatch(ctx_list, idx_list, ops,
                                    vec_min_batch=self.vec_min_batch))
            else:
                for v in nodes:
                    protocol.step(contexts[v])
            self.rounds += 1
            executed += 1
            protocol.on_round_end(network, self.rounds)
            if stop_when is not None and stop_when(network):
                break
        return executed

    def _run_fast_columns(self, max_rounds: int,
                          stop_when: Optional[StopCondition]) -> int:
        """The fast path over columns: snapshot refresh is a bulk copy of
        exactly the dirty columns (slice assignment, not per-slot loops),
        and the quiescence skip keys off the store's conservative dirty
        node list — sound because a node is only skipped when *no write
        at all* happened in its closed neighbourhood last round, in which
        case its deterministic step would rewrite its current state."""
        network = self.network
        protocol = self.protocol
        bulk_step = self._bulk_step
        nodes = network.graph.nodes()
        store = network.columns
        adjacency = self._neighbors_of()
        node_order = {v: i for i, v in enumerate(nodes)}
        snap, contexts = self._columnar_state()
        ops = self._bulk_ops_for(store, snap) if bulk_step is not None \
            else None
        executed = 0
        # external writes (fault injection, resets) since the last call
        # are not round-tracked: the first round re-snapshots and
        # re-steps everything, exactly like the naive loop.
        first = True
        while executed < max_rounds:
            if first:
                snap.refresh_from(store, full=True)
                store.clear_dirty()
                active: Sequence[NodeId] = nodes
                first = False
            else:
                dirty = store.dirty_node_list
                if not dirty:
                    # global quiescence: every remaining round is a no-op
                    self.rounds += max_rounds - executed
                    return max_rounds
                snap.refresh_from(store)
                if len(dirty) == len(nodes):
                    active = nodes
                else:
                    stale: Set[NodeId] = set()
                    for u in dirty:
                        stale.add(u)
                        stale.update(adjacency[u])
                    active = (nodes if len(stale) >= len(nodes)
                              else sorted(stale,
                                          key=node_order.__getitem__))
                store.clear_dirty()
            dn = store.dirty_nodes
            dlist = store.dirty_node_list
            if bulk_step is not None:
                batch_ctxs = []
                batch_idx = []
                capp = batch_ctxs.append
                iapp = batch_idx.append
                for v in active:
                    ctx = contexts[v]
                    ctx.wrote = False
                    capp(ctx)
                    iapp(ctx._i)
                batch = BulkBatch(batch_ctxs, batch_idx, ops,
                                  vec_min_batch=self.vec_min_batch)
                bulk_step(batch)
                if batch.wrote_all:
                    # the protocol's fused sweep wrote every node of the
                    # batch: mark the round dirty in one pass
                    if len(batch_ctxs) == len(nodes):
                        dn[:] = b"\x01" * len(dn)
                        dlist[:] = nodes
                    else:
                        for ctx in batch_ctxs:
                            i = ctx._i
                            if not dn[i]:
                                dn[i] = 1
                                dlist.append(ctx.node)
                else:
                    for ctx in batch_ctxs:
                        if ctx.wrote:
                            i = ctx._i
                            if not dn[i]:
                                dn[i] = 1
                                dlist.append(ctx.node)
            else:
                for v in active:
                    ctx = contexts[v]
                    ctx.wrote = False
                    protocol.step(ctx)
                    if ctx.wrote:
                        i = ctx._i
                        if not dn[i]:
                            dn[i] = 1
                            dlist.append(v)
            self.rounds += 1
            executed += 1
            protocol.on_round_end(network, self.rounds)
            if stop_when is not None and stop_when(network):
                break
        return executed


# ---------------------------------------------------------------------------
# daemons
# ---------------------------------------------------------------------------

class Daemon:
    """Chooses which nodes to activate next (asynchronous adversary).

    Daemons that want to support exact checkpoint/restore (see
    :mod:`repro.sim.snapshot`) additionally implement ``state()`` /
    ``set_state(state)`` returning/accepting one picklable dict that
    captures every bit of cross-batch decision state — RNG state,
    pending permutations, in-flight batch queues — but *not* memoized
    topology caches, which are static and rebuilt on demand.  A daemon
    without the pair simply is not snapshottable: the snapshot layer
    skips caching rather than guessing."""

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        raise NotImplementedError

    def topology_changed(self) -> None:
        """Invalidate topology-derived state after a churn event
        (node crash/rejoin, edge reweight — see :mod:`repro.sim.churn`).

        The contract: after this call the daemon must issue batches
        drawn only from the *current* node set — memoized closed
        neighbourhoods and distance-2 balls are dropped, and in-flight
        sweep queues that may name removed nodes are discarded (the
        next ``next_batch`` starts a fresh sweep over the survivors).
        Decision state that is topology-independent (RNG streams,
        cycle counters) is kept, so event streams stay deterministic.
        """


class RoundRobinDaemon(Daemon):
    """Activates nodes one at a time in a fixed cyclic order."""

    def __init__(self) -> None:
        self._index = 0

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        node = nodes[self._index % len(nodes)]
        self._index += 1
        return [node]

    def state(self) -> Dict[str, Any]:
        return {"index": self._index}

    def set_state(self, state: Mapping[str, Any]) -> None:
        self._index = state["index"]


class RandomDaemon(Daemon):
    """Activates one uniformly random node per tick (fair with prob. 1)."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        return [self.rng.choice(nodes)]

    def state(self) -> Dict[str, Any]:
        return {"rng": self.rng.getstate()}

    def set_state(self, state: Mapping[str, Any]) -> None:
        self.rng.setstate(state["rng"])


class PermutationDaemon(Daemon):
    """Each round activates every node once, in a fresh random order —
    an asynchronous execution with maximal per-round interleaving."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._pending: List[NodeId] = []

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        if not self._pending:
            self._pending = list(nodes)
            self.rng.shuffle(self._pending)
        return [self._pending.pop()]

    def state(self) -> Dict[str, Any]:
        return {"rng": self.rng.getstate(), "pending": self._pending[:]}

    def set_state(self, state: Mapping[str, Any]) -> None:
        self.rng.setstate(state["rng"])
        self._pending = list(state["pending"])

    def topology_changed(self) -> None:
        # the pending permutation may name removed nodes
        self._pending = []


class LocalityBatchDaemon(Daemon):
    """Locality batching: each batch activates one whole *closed
    neighbourhood* — a center node followed by all of its neighbours —
    with centers drawn from a fresh random permutation per sweep.

    Consecutive activations then share most of their read scope, which
    is what lets the dirty-aware scheduler's reuse amortize: once the
    center's step turns out to be a no-op, its neighbours' activations
    hit the unchanged-neighbourhood skip immediately (the scheduler's
    ``steps_skipped`` counter is the visible accounting), and a columnar
    store serves the whole batch out of the same few cache-hot columns.

    Fairness: every node is its own center once per sweep, so every
    node is activated at least once per sweep regardless of topology.

    The closed-neighbourhood lists depend only on the static topology,
    so they are computed once per daemon and memoized; each sweep only
    re-permutes the centers.
    """

    def __init__(self, graph, seed: int = 0) -> None:
        self.graph = graph
        self.rng = random.Random(seed)
        self._centers: List[NodeId] = []
        #: center -> closed neighbourhood, memoized (static topology)
        self._closed: Dict[NodeId, List[NodeId]] = {}
        #: batches issued (one closed neighbourhood each)
        self.batches = 0

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        if not self._centers:
            self._centers = list(nodes)
            self.rng.shuffle(self._centers)
        center = self._centers.pop()
        self.batches += 1
        batch = self._closed.get(center)
        if batch is None:
            batch = self._closed[center] = \
                [center] + self.graph.neighbors(center)
        return batch

    def state(self) -> Dict[str, Any]:
        # `_closed` is a static-topology memo, not decision state
        return {"rng": self.rng.getstate(), "centers": self._centers[:],
                "batches": self.batches}

    def set_state(self, state: Mapping[str, Any]) -> None:
        self.rng.setstate(state["rng"])
        self._centers = list(state["centers"])
        self.batches = state["batches"]

    def topology_changed(self) -> None:
        # pending centers may name removed nodes; the closed-
        # neighbourhood memo is stale for every survivor of the event
        self._centers = []
        self._closed = {}


class _CoverDaemon(Daemon):
    """Shared machinery for daemons that issue each sweep as a
    pre-computed cover of the node set by G²-independent batches
    (pairwise disjoint closed neighbourhoods), queued and served one
    batch per ``next_batch`` call.

    Subclasses implement ``_cover(nodes)`` returning the sweep's batch
    list; the base class owns the queue, the memoized distance-2 balls,
    the greedy first-fit partitioner, issue accounting, snapshot
    ``state()/set_state()``, and the ``take_pending``/``requeue`` pair
    the coalescing scheduler uses to fuse consecutive same-sweep
    batches without perturbing daemon state.
    """

    #: schedulers read this to grant the conflict-free license
    conflict_free = True

    def __init__(self, graph, seed: int = 0) -> None:
        self.graph = graph
        self.rng = random.Random(seed)
        #: the current sweep's remaining batches (reversed: pop() serves
        #: them in cover order)
        self._queue: List[List[NodeId]] = []
        #: node -> distance-<=2 ball (the G² closed neighbourhood),
        #: as dense indices — memoized per node sequence
        self._ball2: Optional[List[List[int]]] = None
        self._order: Optional[Dict[NodeId, int]] = None
        #: the exact node sequence the ball memo was built for: dense
        #: indices are positions in this sequence, so a changed node set
        #: (or order) must rebuild the memo rather than silently serve
        #: stale balls that would corrupt covers under topology churn
        self._ball_sig: Optional[Tuple[NodeId, ...]] = None
        #: batches issued / sweeps started (accounting)
        self.batches = 0
        self.sweeps = 0

    def _balls(self, nodes: Sequence[NodeId]):
        """Dense-indexed distance-2 balls: two nodes are G²-adjacent
        (closed neighbourhoods intersect) iff one lies in the other's
        ball.  Memoized on the node sequence and rebuilt when it
        changes between sweeps.  Each ball is sorted so downstream tile
        construction is deterministic across interpreter builds."""
        sig = tuple(nodes)
        if self._ball2 is None or self._ball_sig != sig:
            graph = self.graph
            order = self._order = {v: k for k, v in enumerate(nodes)}
            ball2 = self._ball2 = []
            for v in nodes:
                ball: set = {v}
                for u in graph.neighbors(v):
                    ball.add(u)
                    ball.update(graph.neighbors(u))
                ball2.append(sorted(order[w] for w in ball))
            self._ball_sig = sig
        return self._ball2, self._order

    def _partition(self, scan: Sequence[NodeId], ball2, order,
                   blocked: Optional[Dict[int, int]] = None
                   ) -> List[List[NodeId]]:
        """Greedy first-fit partition of ``scan`` (in order) into
        G²-independent batches: a node joins the first batch containing
        no other node within distance 2.  Per-node bitmasks of blocked
        batches make it O(sum |ball2(v)|) int ops."""
        if blocked is None:
            blocked = {}
        batches: List[List[NodeId]] = []
        get = blocked.get
        for v in scan:
            k = order[v]
            m = get(k, 0)
            b = (~m & (m + 1)).bit_length() - 1   # lowest clear bit
            if b == len(batches):
                batches.append([v])
            else:
                batches[b].append(v)
            bit = 1 << b
            for w in ball2[k]:
                blocked[w] = get(w, 0) | bit
        return batches

    def _cover(self, nodes: Sequence[NodeId]) -> List[List[NodeId]]:
        raise NotImplementedError

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        if not self._queue:
            self._queue = self._cover(nodes)[::-1]
            self.sweeps += 1
        self.batches += 1
        return self._queue.pop()

    def take_pending(self) -> List[List[NodeId]]:
        """Drain the current sweep's remaining batches, in cover order,
        counting each as issued.  The coalescing scheduler uses this to
        fuse consecutive same-sweep batches into one super-batch while
        keeping ``batches`` and ``state()`` bit-for-bit identical to
        one-at-a-time issue; batches it does not execute come back via
        :meth:`requeue`."""
        taken = self._queue[::-1]
        self._queue = []
        self.batches += len(taken)
        return taken

    def requeue(self, batches: Sequence[List[NodeId]]) -> None:
        """Return un-executed batches taken by :meth:`take_pending`
        (in cover order), un-counting them; subsequent calls serve them
        again, in order, before anything else."""
        if batches:
            self._queue.extend(reversed(batches))
            self.batches -= len(batches)

    def state(self) -> Dict[str, Any]:
        # ball memos are static-topology caches, rebuilt on demand
        return {"rng": self.rng.getstate(),
                "queue": [batch[:] for batch in self._queue],
                "batches": self.batches, "sweeps": self.sweeps}

    def set_state(self, state: Mapping[str, Any]) -> None:
        self.rng.setstate(state["rng"])
        self._queue = [list(batch) for batch in state["queue"]]
        self.batches = state["batches"]
        self.sweeps = state["sweeps"]

    def topology_changed(self) -> None:
        # queued batches are served *before* the ball-signature check
        # (the signature is only consulted when the queue empties), so
        # an in-flight sweep naming removed nodes must be discarded
        # here; the ball memo is invalidated outright rather than left
        # to the signature, which cannot see a pure edge reweight
        self._queue = []
        self._ball2 = None
        self._order = None
        self._ball_sig = None


class ConflictFreeDaemon(_CoverDaemon):
    """Conflict-free batching: each batch activates a set of nodes with
    **pairwise disjoint closed neighbourhoods** (an independent set of
    the square graph G² — no two batch members within distance 2), and
    each sweep covers every node exactly once with a greedy
    maximal-independent-set cover built from a fresh random permutation
    (fair on any topology, like the locality daemon's centers).

    The point is the *license*: an activated node reads exactly its
    closed neighbourhood N[v] and writes only its own registers, so
    inside a batch with pairwise disjoint N[v] no activation can
    observe a batchmate's write — live executions of the batch members
    in any order (or fused into one column sweep) are indistinguishable
    from the sequential one.  The daemon therefore *pre-declares* the
    batch conflict-free, and the asynchronous scheduler stamps the
    ``conflict_free`` license onto each
    :class:`~repro.sim.bulk.BulkBatch`, which is what lets the fused
    columnar kernels of the bulk plane run off the synchronous-only
    path (see :mod:`repro.sim.bulk`).

    Semantics: a conflict-free batch models the distributed daemon
    activating a whole independent set *simultaneously*; the scheduler
    accordingly resolves stop conditions at batch boundaries (exactly
    as synchronous rounds resolve them at round boundaries) — for every
    storage backend and for the scalar loop too, so ``bulk`` stays an
    implementation-only flag under this daemon.

    The closed neighbourhoods are memoized per node sequence (static
    topology: computed once); each sweep only re-permutes the nodes and
    re-runs the greedy first-fit cover over them.
    """

    def _cover(self, nodes: Sequence[NodeId]) -> List[List[NodeId]]:
        """Greedy first-fit cover of ``nodes`` by G²-independent sets,
        scanned in a fresh random order."""
        ball2, order = self._balls(nodes)
        perm = list(nodes)
        self.rng.shuffle(perm)
        return self._partition(perm, ball2, order)


class TiledConflictFreeDaemon(_CoverDaemon):
    """Tiled hybrid daemon (schedule kind ``"tiled"``): locality
    batching under the conflict-free license.

    Each sweep shuffles the nodes into a fresh random center order;
    each center contributes one *tile* — the not-yet-covered part of
    its distance-2 ball — and the tile is partitioned into
    G²-independent sub-batches issued consecutively.  Every batch
    therefore carries the conflict-free license (fused columnar
    execution), while consecutive batches stay inside one ball: they
    share most of their read scope, so the dirty-aware scheduler's
    unchanged-neighbourhood skip and a columnar store's cache locality
    amortize exactly as under the locality daemon — the hybrid of
    ROADMAP's "skip amortization + fusion license" item.

    Geometry: *within* one closed neighbourhood N[v] any two members
    are within distance 2 of each other through v, so conflict-free
    tiles of N[v] itself degenerate to singletons — the useful tile is
    the distance-2 ball, whose members can be pairwise G²-independent
    (e.g. the center's neighbours' neighbours avoiding each other).

    Fairness: tiles are carved from the uncovered remainder and every
    node lies in its own ball, so each sweep activates every node
    exactly once, like the other cover daemons.
    """

    def _cover(self, nodes: Sequence[NodeId]) -> List[List[NodeId]]:
        ball2, order = self._balls(nodes)
        centers = list(nodes)
        self.rng.shuffle(centers)
        covered = [False] * len(centers)
        batches: List[List[NodeId]] = []
        for c in centers:
            tile = [nodes[k] for k in ball2[order[c]] if not covered[k]]
            if not tile:
                continue
            for v in tile:
                covered[order[v]] = True
            batches.extend(self._partition(tile, ball2, order))
        return batches


class SlowNodesDaemon(Daemon):
    """Adversarial daemon: designated nodes run ``slowdown`` times less
    often than the rest (stretching asynchronous rounds)."""

    def __init__(self, slow_nodes: Iterable[NodeId], slowdown: int,
                 seed: int = 0) -> None:
        if slowdown < 1:
            raise ValueError("slowdown must be >= 1")
        self.slow: Set[NodeId] = set(slow_nodes)
        self.slowdown = slowdown
        self.rng = random.Random(seed)
        self._pending: List[NodeId] = []
        self._cycle = 0

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        if not self._pending:
            self._cycle += 1
            batch = [v for v in nodes if v not in self.slow]
            if self._cycle % self.slowdown == 0:
                batch.extend(v for v in nodes if v in self.slow)
            self.rng.shuffle(batch)
            self._pending = batch
        return [self._pending.pop()]

    def state(self) -> Dict[str, Any]:
        return {"rng": self.rng.getstate(), "pending": self._pending[:],
                "cycle": self._cycle}

    def set_state(self, state: Mapping[str, Any]) -> None:
        self.rng.setstate(state["rng"])
        self._pending = list(state["pending"])
        self._cycle = state["cycle"]

    def topology_changed(self) -> None:
        # the pending cycle may name removed nodes; the slow set and
        # cycle counter are semantic (a slow node stays slow across a
        # crash/rejoin), so they survive
        self._pending = []


class AsynchronousScheduler:
    """Daemon-driven execution with asynchronous-round accounting.

    The scheduler is *dirty-aware* by default: per-node contexts over the
    live registers are built once per ``run()`` and reused across
    activations (no per-activation mapping rebuild), every activation
    tracks whether the step actually changed a register, and an
    activation of a node whose closed neighbourhood is unchanged since
    the node's own last (no-op) step is *skipped* — by protocol
    determinism the step would rewrite exactly the current state.
    Skipped activations still count toward activations, round coverage,
    and the stop condition, so the execution is bit-for-bit equivalent
    to the naive activation loop (``dirty_aware=False``); protocols that
    override ``on_round_end`` fall back automatically, and every
    ``run()`` restarts the tracking, so external register writes between
    runs (fault injection) are always observed.
    """

    def __init__(self, network: Network, protocol: Protocol,
                 daemon: Optional[Daemon] = None,
                 use_schema: bool = True,
                 dirty_aware: bool = True,
                 storage: Optional[str] = None,
                 bulk: bool = True,
                 coalesce: bool = True,
                 vec_min_batch: Optional[int] = None) -> None:
        self.network = network
        self.protocol = protocol
        self.daemon = daemon if daemon is not None else PermutationDaemon()
        self.rounds = 0
        self.activations = 0
        self.steps_skipped = 0
        #: coalesced super-batches issued / original batches they fused
        #: (accounting; zero when coalescing never engaged)
        self.super_batches = 0
        self.batches_coalesced = 0
        #: coalesce consecutive conflict-free batches of one daemon
        #: sweep into a single fused super-batch (implementation-only:
        #: gate/after/stop checks are replayed at the original batch
        #: boundaries, so traces are bit-for-bit identical either way).
        #: Engages only when the conflict-free fused route is live and
        #: both the daemon (``take_pending``/``requeue``) and the
        #: protocol (``bulk_segments``) support it.
        self.coalesce = bool(coalesce)
        #: minimum batch size for the numpy vector tier (None: kernel
        #: default) — implementation-only, threaded through BulkBatch
        self.vec_min_batch = vec_min_batch
        #: run() serial number: part of the sweep identity stamped on
        #: conflict-free batches (``plan_key``), so registers written
        #: between runs (fault injection) can never alias a reused plan
        self._run_serial = 0
        self._covered: Set[NodeId] = set()
        self._initialized = False
        self.dirty_aware = bool(dirty_aware) and (
            type(protocol).on_round_end is Protocol.on_round_end)
        #: bulk-activation plane: multi-node daemon batches go to the
        #: protocol's declared ``bulk_step``; skip logic and accounting
        #: stay here, threaded through the batch callbacks.  Unlicensed
        #: live batches carry no fused ops — activation-granular stop
        #: conditions forbid cross-node write hoisting — so that route
        #: engages only for protocols that declare ``bulk_live``
        #: (otherwise it would be pure per-activation callback overhead
        #: on the skip-heavy hot path).  A *conflict-free* daemon
        #: (:class:`ConflictFreeDaemon`) changes the license: its
        #: batches have pairwise disjoint closed neighbourhoods and
        #: batch-granular stops, so on columnar storage they are routed
        #: with live fused column ops and the ``conflict_free`` stamp
        #: to protocols declaring ``bulk_conflict_free``.
        self._bulk_step = protocol.bulk_step \
            if bulk and getattr(protocol, "bulk_live", False) else None
        self._bulk_cf = protocol.bulk_step \
            if bulk and getattr(protocol, "bulk_conflict_free", False) \
            else None
        self._live_ops = None
        self._storage = _storage_mode(storage, use_schema)
        self._compiled = _bind_storage(network, protocol, self._storage)

    def topology_changed(self) -> None:
        """Invalidate topology-derived state after a churn event
        (:mod:`repro.sim.churn`).  Per-run state (contexts, neighbour
        maps, skip tracking, coalescing queues, vector plan keys) is
        already rebuilt every ``run()`` — churn events apply *between*
        runs, so run boundaries fence super-batch coalescing and retire
        per-sweep vector plans by construction.  What persists across
        runs is handled here: the round-coverage set drops removed
        nodes (a crashed node can never complete a round), the live
        fused ops are rebuilt, the daemon drops its memoized balls and
        in-flight sweeps, and the protocol is re-bound (clearing its
        label-derived verdict caches)."""
        self._covered.intersection_update(self.network.graph.nodes())
        self._live_ops = None
        self.daemon.topology_changed()
        self.protocol._storage_binding = _UNBOUND

    def initialize(self) -> None:
        if self._initialized:
            return
        if self._compiled is not None and self.network.columns is not None:
            graph = self.network.graph
            store = self.network.columns
            for v in graph.nodes():
                ctx = ColumnarNodeContext(self.network, v, store, None,
                                          graph.neighbors(v))
                self.protocol.init_node(ctx)
        elif self._compiled is not None:
            files = self.network.files
            graph = self.network.graph
            for v in graph.nodes():
                ctx = SlotNodeContext(self.network, v, files, None,
                                      graph.neighbors(v))
                self.protocol.init_node(ctx)
        else:
            for v in self.network.graph.nodes():
                ctx = NodeContext(self.network, v, self.network.registers)
                self.protocol.init_node(ctx)
        self._initialized = True

    def _contexts(self) -> Dict[NodeId, object]:
        """Fresh reusable per-node contexts over the live registers."""
        network = self.network
        graph = network.graph
        if self._compiled is not None and network.columns is not None:
            store = network.columns
            return {v: ColumnarNodeContext(network, v, store, None,
                                           graph.neighbors(v))
                    for v in graph.nodes()}
        if self._compiled is not None:
            files = network.files
            return {v: SlotNodeContext(network, v, files, None,
                                       graph.neighbors(v))
                    for v in graph.nodes()}
        return {v: NodeContext(network, v, network.registers)
                for v in graph.nodes()}

    def run(self, max_rounds: int,
            stop_when: Optional[StopCondition] = None,
            max_activations: Optional[int] = None) -> int:
        """Run until ``max_rounds`` asynchronous rounds complete (or the
        stop condition fires — checked at activation granularity, except
        under a conflict-free daemon, whose batches model simultaneous
        activations and resolve stops at batch boundaries).  Returns
        the number of asynchronous rounds completed."""
        _ensure_binding(self.protocol, self._compiled)
        self._compiled = _ensure_storage(self.network, self.protocol,
                                         self._storage, self._compiled)
        self.initialize()
        self._run_serial += 1
        network = self.network
        protocol = self.protocol
        nodes = network.graph.nodes()
        all_nodes = set(nodes)
        neighbors = {v: network.graph.neighbors(v) for v in nodes}
        contexts = self._contexts()
        columnar = self._compiled is not None and network.columns is not None
        slot_mode = self._compiled is not None and not columnar
        dirty_aware = self.dirty_aware
        # per-run dirty tracking: registers may have been rewritten
        # externally since the last call, so no skip survives a run()
        # boundary.
        stepped_at: Dict[NodeId, int] = {}
        changed_at: Dict[NodeId, int] = {}
        tick = 0
        start_rounds = self.rounds
        budget = max_activations if max_activations is not None else (
            max_rounds * len(nodes) * 4 + 64)
        bulk_step = self._bulk_step
        stopped = False
        # conflict-free daemons: batches are simultaneous activations,
        # so stop conditions resolve at batch boundaries (for every
        # storage and for the scalar loop alike — the semantics belong
        # to the daemon, not to the bulk flag), and on columnar storage
        # the batches route to ``bulk_step`` with live fused ops under
        # the ``conflict_free`` license.
        batch_stop = getattr(self.daemon, "conflict_free", False)
        cf_step = self._bulk_cf if (batch_stop and columnar) else None
        if cf_step is not None:
            store = network.columns
            cf_ops = self._live_ops
            if cf_ops is None or cf_ops.store is not store:
                cf_ops = self._live_ops = ColumnarBulkOps(store)
        daemon = self.daemon
        # coalescing (implementation-only): fuse the rest of the daemon
        # sweep into one super-batch, replaying gate/after/stop checks
        # at the original batch boundaries via ``boundary``; engages
        # only when the fused conflict-free route is live and both the
        # daemon and the protocol support the segment contract.
        coalesce = (cf_step is not None and self.coalesce and
                    getattr(protocol, "bulk_segments", False) and
                    hasattr(daemon, "take_pending"))
        # a sweep-lifetime vector plan is sound only while nothing
        # outside the batch stream writes registers mid-sweep: a
        # protocol round-end hook may, so it disables the key.
        plan_ok = cf_step is not None and \
            type(protocol).on_round_end is Protocol.on_round_end
        seg_done = [0]

        def boundary(i):
            # everything the uncoalesced loop does between consecutive
            # conflict-free batches: the batch-boundary stop-condition
            # check and the while-condition (rounds/budget) re-check.
            nonlocal stopped
            seg_done[0] = i + 1
            if stop_when is not None and stop_when(network):
                stopped = True
                return True
            return (self.rounds - start_rounds >= max_rounds or
                    budget <= 0)

        # bulk-plane callbacks: the exact per-activation semantics of the
        # scalar loop below (skip check + write-tracker setup in ``gate``,
        # tracking/accounting/stop in ``after``), threaded through
        # Protocol.bulk_step for multi-node daemon batches.
        def gate(k, ctx):
            nonlocal tick
            tick += 1
            if not dirty_aware:
                return True
            v = ctx.node
            st = stepped_at.get(v)
            if st is not None and changed_at.get(v, 0) < st:
                skip = True
                for u in neighbors[v]:
                    if changed_at.get(u, 0) >= st:
                        skip = False
                        break
                if skip:
                    return False
            if columnar:
                ctx.wrote = False
            else:
                ctx._dirty = {} if slot_mode else set()
                if slot_mode:
                    ctx._marks = None
            return True

        def after(k, ctx, stepped):
            nonlocal budget, stopped
            v = ctx.node
            if not stepped:
                self.steps_skipped += 1
            elif dirty_aware:
                if columnar:
                    if ctx.wrote:
                        changed_at[v] = tick
                else:
                    tracker = ctx._dirty
                    ctx._dirty = None
                    if tracker:
                        changed_at[v] = tick
                stepped_at[v] = tick
            self.activations += 1
            budget -= 1
            self._covered.add(v)
            if self._covered == all_nodes:
                self.rounds += 1
                self._covered = set()
                self.protocol.on_round_end(self.network, self.rounds)
            if not batch_stop and stop_when is not None and \
                    stop_when(self.network):
                stopped = True
                return True
            return False

        while self.rounds - start_rounds < max_rounds and budget > 0:
            batch_nodes = self.daemon.next_batch(nodes)
            multi = len(batch_nodes) > 1
            if cf_step is not None and (multi or coalesce or plan_ok):
                # the conflict-free license: live fused column ops,
                # commuting gate/after, stop at the batch boundary.
                # Singletons route here too whenever a sweep plan may
                # be live — a scalar-loop activation would bypass the
                # plan's write tracking and stale it.
                plan_key = (self._run_serial, getattr(daemon, "sweeps", 0)) \
                    if plan_ok else None
                segs = ([batch_nodes] + daemon.take_pending()) \
                    if coalesce else None
                if segs is not None and len(segs) > 1:
                    seg_done[0] = 0
                    self.super_batches += 1
                    self.batches_coalesced += len(segs)
                    cf_step(BulkBatch(
                        [contexts[v] for seg in segs for v in seg],
                        None, cf_ops, gate=gate, after=after,
                        conflict_free=True,
                        segments=[len(seg) for seg in segs],
                        boundary=boundary, plan_key=plan_key,
                        vec_min_batch=self.vec_min_batch))
                    if seg_done[0] < len(segs):
                        # boundary aborted (or the protocol stopped
                        # early): hand the un-executed tail back so the
                        # daemon's queue and issue accounting match the
                        # uncoalesced execution exactly
                        daemon.requeue(segs[seg_done[0]:])
                    if stopped:
                        return self.rounds - start_rounds
                    continue
                cf_step(BulkBatch([contexts[v] for v in batch_nodes],
                                  None, cf_ops, gate=gate, after=after,
                                  conflict_free=True, plan_key=plan_key,
                                  vec_min_batch=self.vec_min_batch))
                if stop_when is not None and stop_when(network):
                    return self.rounds - start_rounds
                continue
            if bulk_step is not None and multi:
                bulk_step(BulkBatch([contexts[v] for v in batch_nodes],
                                    gate=gate, after=after))
                if stopped:
                    return self.rounds - start_rounds
                if batch_stop and stop_when is not None and \
                        stop_when(network):
                    return self.rounds - start_rounds
                continue
            for v in batch_nodes:
                tick += 1
                skip = False
                if dirty_aware:
                    st = stepped_at.get(v)
                    if st is not None and changed_at.get(v, 0) < st:
                        skip = True
                        for u in neighbors[v]:
                            if changed_at.get(u, 0) >= st:
                                skip = False
                                break
                if skip:
                    self.steps_skipped += 1
                else:
                    ctx = contexts[v]
                    if not dirty_aware:
                        protocol.step(ctx)
                    elif columnar:
                        ctx.wrote = False
                        protocol.step(ctx)
                        if ctx.wrote:
                            changed_at[v] = tick
                        stepped_at[v] = tick
                    else:
                        tracker = {} if slot_mode else set()
                        ctx._dirty = tracker
                        if slot_mode:
                            ctx._marks = None
                        protocol.step(ctx)
                        ctx._dirty = None
                        if tracker:
                            changed_at[v] = tick
                        stepped_at[v] = tick
                self.activations += 1
                budget -= 1
                self._covered.add(v)
                if self._covered == all_nodes:
                    self.rounds += 1
                    self._covered = set()
                    self.protocol.on_round_end(self.network, self.rounds)
                # activation granularity: a daemon handing out multi-node
                # batches must not delay the stop past the activation that
                # made it true (conflict-free daemons excepted: their
                # batches are simultaneous, so the stop resolves below at
                # the batch boundary).
                if not batch_stop and stop_when is not None and \
                        stop_when(self.network):
                    return self.rounds - start_rounds
            if batch_stop and stop_when is not None and \
                    stop_when(self.network):
                return self.rounds - start_rounds
        return self.rounds - start_rounds
