"""Synchronous and asynchronous execution of protocols.

Synchronous model: all nodes step simultaneously each round, reading the
registers their neighbours exposed at the end of the previous round.

Asynchronous model: a *daemon* picks batches of nodes to activate; an
activated node performs one atomic read-all-neighbours/update step against
the live registers.  Time is measured in **asynchronous rounds**: a round
completes when every node has been activated at least once since the
previous round boundary (the standard self-stabilization measure, matching
the paper's strongly fair distributed daemon).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set

from ..graphs.weighted import NodeId
from .network import Network, NodeContext, Protocol, StopCondition


class SynchronousScheduler:
    """Lock-step rounds over a network (ideal time complexity)."""

    def __init__(self, network: Network, protocol: Protocol) -> None:
        self.network = network
        self.protocol = protocol
        self.rounds = 0
        self._initialized = False

    def initialize(self) -> None:
        """Run ``init_node`` at every node (idempotent)."""
        if self._initialized:
            return
        snapshot = self._snapshot()
        for v in self.network.graph.nodes():
            self.protocol.init_node(NodeContext(self.network, v, snapshot))
        self._initialized = True

    def _snapshot(self):
        return {v: dict(regs) for v, regs in self.network.registers.items()}

    def run(self, max_rounds: int,
            stop_when: Optional[StopCondition] = None) -> int:
        """Run up to ``max_rounds`` rounds; return rounds executed.

        Stops early (after completing a round) when ``stop_when(network)``
        becomes true.
        """
        self.initialize()
        executed = 0
        for _ in range(max_rounds):
            snapshot = self._snapshot()
            for v in self.network.graph.nodes():
                self.protocol.step(NodeContext(self.network, v, snapshot))
            self.rounds += 1
            executed += 1
            self.protocol.on_round_end(self.network, self.rounds)
            if stop_when is not None and stop_when(self.network):
                break
        return executed


# ---------------------------------------------------------------------------
# daemons
# ---------------------------------------------------------------------------

class Daemon:
    """Chooses which nodes to activate next (asynchronous adversary)."""

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        raise NotImplementedError


class RoundRobinDaemon(Daemon):
    """Activates nodes one at a time in a fixed cyclic order."""

    def __init__(self) -> None:
        self._index = 0

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        node = nodes[self._index % len(nodes)]
        self._index += 1
        return [node]


class RandomDaemon(Daemon):
    """Activates one uniformly random node per tick (fair with prob. 1)."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        return [self.rng.choice(nodes)]


class PermutationDaemon(Daemon):
    """Each round activates every node once, in a fresh random order —
    an asynchronous execution with maximal per-round interleaving."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._pending: List[NodeId] = []

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        if not self._pending:
            self._pending = list(nodes)
            self.rng.shuffle(self._pending)
        return [self._pending.pop()]

class SlowNodesDaemon(Daemon):
    """Adversarial daemon: designated nodes run ``slowdown`` times less
    often than the rest (stretching asynchronous rounds)."""

    def __init__(self, slow_nodes: Iterable[NodeId], slowdown: int,
                 seed: int = 0) -> None:
        if slowdown < 1:
            raise ValueError("slowdown must be >= 1")
        self.slow: Set[NodeId] = set(slow_nodes)
        self.slowdown = slowdown
        self.rng = random.Random(seed)
        self._pending: List[NodeId] = []
        self._cycle = 0

    def next_batch(self, nodes: Sequence[NodeId]) -> List[NodeId]:
        if not self._pending:
            self._cycle += 1
            batch = [v for v in nodes if v not in self.slow]
            if self._cycle % self.slowdown == 0:
                batch.extend(v for v in nodes if v in self.slow)
            self.rng.shuffle(batch)
            self._pending = batch
        return [self._pending.pop()]


class AsynchronousScheduler:
    """Daemon-driven execution with asynchronous-round accounting."""

    def __init__(self, network: Network, protocol: Protocol,
                 daemon: Optional[Daemon] = None) -> None:
        self.network = network
        self.protocol = protocol
        self.daemon = daemon if daemon is not None else PermutationDaemon()
        self.rounds = 0
        self.activations = 0
        self._covered: Set[NodeId] = set()
        self._initialized = False

    def initialize(self) -> None:
        if self._initialized:
            return
        for v in self.network.graph.nodes():
            ctx = NodeContext(self.network, v, self.network.registers)
            self.protocol.init_node(ctx)
        self._initialized = True

    def run(self, max_rounds: int,
            stop_when: Optional[StopCondition] = None,
            max_activations: Optional[int] = None) -> int:
        """Run until ``max_rounds`` asynchronous rounds complete (or the
        stop condition fires, checked at activation granularity).  Returns
        the number of asynchronous rounds completed."""
        self.initialize()
        nodes = self.network.graph.nodes()
        all_nodes = set(nodes)
        start_rounds = self.rounds
        budget = max_activations if max_activations is not None else (
            max_rounds * len(nodes) * 4 + 64)
        while self.rounds - start_rounds < max_rounds and budget > 0:
            for v in self.daemon.next_batch(nodes):
                ctx = NodeContext(self.network, v, self.network.registers)
                self.protocol.step(ctx)
                self.activations += 1
                budget -= 1
                self._covered.add(v)
                if self._covered == all_nodes:
                    self.rounds += 1
                    self._covered = set()
                    self.protocol.on_round_end(self.network, self.rounds)
            if stop_when is not None and stop_when(self.network):
                break
        return self.rounds - start_rounds
