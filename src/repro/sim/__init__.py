"""Simulation substrate: the shared-memory network model, synchronous and
asynchronous schedulers with pluggable daemons, typed register files with
bit accounting, and transient-fault injection."""

from .bulk import BulkBatch, ColumnarBulkOps, drive_batch
from .columnar import ColumnStore, ColumnarNodeContext, ColumnarNodeFacade
from .network import (ALARM, Network, NodeContext, Protocol, SlotNodeContext,
                      first_alarm)
from .registers import (KIND_NAT, KIND_OPAQUE, KIND_STR, KIND_TUPLE,
                        CompiledSchema, RegisterFile, RegisterSchema,
                        RegisterView, bit_size, compile_schema, is_ghost,
                        nat_value, register_bits)
from .npcolumnar import (NumpyColumnStore, NumpyFallbackWarning,
                         numpy_or_none)
from .schedulers import (STORAGE_COLUMNAR, STORAGE_DICT, STORAGE_KINDS,
                         STORAGE_NUMPY, STORAGE_SCHEMA,
                         AsynchronousScheduler,
                         ConflictFreeDaemon, Daemon, LocalityBatchDaemon,
                         PermutationDaemon, RandomDaemon, RoundRobinDaemon,
                         SlowNodesDaemon, SynchronousScheduler,
                         TiledConflictFreeDaemon)
from .faults import FAULT_MARK, FaultInjector, detection_distance
from .churn import (ChurnEvent, ChurnReport, ChurnScript, clear_alarms,
                    run_with_churn)
from .snapshot import (SnapshotError, capture_network, capture_run_state,
                       capture_scheduler, decode_snapshot, encode_snapshot,
                       restore_network, restore_run_state,
                       restore_scheduler)

__all__ = [
    "ALARM", "Network", "NodeContext", "Protocol", "SlotNodeContext",
    "first_alarm",
    "BulkBatch", "ColumnarBulkOps", "drive_batch",
    "ColumnStore", "ColumnarNodeContext", "ColumnarNodeFacade",
    "KIND_NAT", "KIND_OPAQUE", "KIND_STR", "KIND_TUPLE",
    "CompiledSchema", "RegisterFile", "RegisterSchema", "RegisterView",
    "bit_size", "compile_schema", "is_ghost", "nat_value", "register_bits",
    "NumpyColumnStore", "NumpyFallbackWarning", "numpy_or_none",
    "STORAGE_COLUMNAR", "STORAGE_DICT", "STORAGE_KINDS", "STORAGE_NUMPY",
    "STORAGE_SCHEMA",
    "AsynchronousScheduler", "ConflictFreeDaemon", "Daemon",
    "LocalityBatchDaemon", "PermutationDaemon", "RandomDaemon",
    "RoundRobinDaemon", "SlowNodesDaemon", "SynchronousScheduler",
    "TiledConflictFreeDaemon",
    "FAULT_MARK", "FaultInjector", "detection_distance",
    "ChurnEvent", "ChurnReport", "ChurnScript", "clear_alarms",
    "run_with_churn",
    "SnapshotError", "capture_network", "capture_run_state",
    "capture_scheduler", "decode_snapshot", "encode_snapshot",
    "restore_network", "restore_run_state", "restore_scheduler",
]
