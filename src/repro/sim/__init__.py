"""Simulation substrate: the shared-memory network model, synchronous and
asynchronous schedulers with pluggable daemons, register bit accounting,
and transient-fault injection."""

from .network import ALARM, Network, NodeContext, Protocol, first_alarm
from .registers import bit_size, is_ghost, register_bits
from .schedulers import (AsynchronousScheduler, Daemon, PermutationDaemon,
                         RandomDaemon, RoundRobinDaemon, SlowNodesDaemon,
                         SynchronousScheduler)
from .faults import FAULT_MARK, FaultInjector, detection_distance

__all__ = [
    "ALARM", "Network", "NodeContext", "Protocol", "first_alarm",
    "bit_size", "is_ghost", "register_bits",
    "AsynchronousScheduler", "Daemon", "PermutationDaemon", "RandomDaemon",
    "RoundRobinDaemon", "SlowNodesDaemon", "SynchronousScheduler",
    "FAULT_MARK", "FaultInjector", "detection_distance",
]
