"""The shared-memory network model (Section 2.1 / 2.2).

Each node owns a set of registers readable by its neighbours.  In one
*ideal time* unit a node reads all of its neighbours' registers and
rewrites its own (the paper's ideal time complexity; the stricter
contention model costs an extra Delta factor, which our asynchronous
daemons can emulate).

A :class:`Protocol` provides two callbacks:

* ``init_node(ctx)`` — set up the node's working registers (labels
  installed by a marker are left untouched);
* ``step(ctx)`` — one atomic step: read neighbours through ``ctx.read``
  and update own registers through ``ctx.set``.

Protocols signal fault detection by setting the ``alarm`` register to a
non-None reason string; the harness collects alarms via
:meth:`Network.alarms`.

Storage: a network starts on the legacy per-node dict store.  When a
protocol declares a :class:`~repro.sim.registers.RegisterSchema`
(:meth:`Protocol.register_schema`), the schedulers compile it once and
call :meth:`Network.adopt_schema`, which converts every node to a
slot-addressed :class:`~repro.sim.registers.RegisterFile` (or, with
``columnar=True``, the whole network to per-register columns —
:mod:`repro.sim.columnar`); ``registers`` then maps nodes to
dict-compatible views, so storage-agnostic code (fault injection,
markers, tests) is unaffected.  Protocol hot paths run against
:class:`SlotNodeContext` (or its columnar counterpart), whose accessors
take integer slot handles and are O(1) loads with write-time-cached
``nat`` coercion.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from ..graphs.weighted import NodeId, WeightedGraph
from .registers import (ALARM, CompiledSchema, NO_DECODE, RegisterFile,
                        RegisterSchema, RegisterView, UNSET, compile_schema,
                        nat_value, register_bits)

_MISSING = object()


class RegisterTable(dict):
    """``node -> RegisterView`` with dict-style write-through.

    Legacy code replaces a node's registers wholesale
    (``network.registers[v] = {...}``); on a schema-backed network that
    must rewrite the node's register *file* in place, not shadow it with
    a plain dict."""

    def __setitem__(self, node: NodeId, value: Any) -> None:
        current = dict.get(self, node)
        if isinstance(current, RegisterView) \
                and not isinstance(value, RegisterView):
            current.file.clear()
            current.file.update(value)
        else:
            dict.__setitem__(self, node, value)


class Network:
    """A set of nodes with registers, built over a :class:`WeightedGraph`."""

    def __init__(self, graph: WeightedGraph,
                 schema: Optional[RegisterSchema] = None) -> None:
        self.graph = graph
        self.schema: Optional[CompiledSchema] = None
        self.files: Optional[Dict[NodeId, RegisterFile]] = None
        #: columnar backing (:class:`~repro.sim.columnar.ColumnStore`)
        #: when ``adopt_schema(..., columnar=True)`` was used
        self.columns = None
        self.registers: Dict[NodeId, Dict[str, Any]] = {
            v: {} for v in graph.nodes()
        }
        if schema is not None:
            self.adopt_schema(schema)

    def adopt_schema(self, schema, columnar: bool = False) -> CompiledSchema:
        """Convert node storage to register files of ``schema`` — per-node
        slot lists by default, network-wide columns under
        ``columnar=True`` (see :mod:`repro.sim.columnar`), numpy-tier
        columns under ``columnar="numpy"`` (same representation, vector
        batch ops — see :mod:`repro.sim.npcolumnar`).

        Idempotent for an equal schema on the same layout; re-adopting a
        different schema or switching layout (including columnar <->
        numpy, which differ only by store class) rebuilds the storage
        from the current register contents (values are preserved,
        undeclared names land in the extras).  Returns the compiled
        schema now backing the network.
        """
        compiled = compile_schema(schema)
        if columnar == "numpy":
            from .npcolumnar import NumpyColumnStore
            store_cls = NumpyColumnStore
        else:
            from .columnar import ColumnStore
            store_cls = ColumnStore
        if self.schema is not None and self.schema == compiled and \
                (self.columns is not None) == bool(columnar) and \
                (self.columns is None or type(self.columns) is store_cls):
            return self.schema
        if columnar:
            from .columnar import ColumnarNodeFacade
            nodes = self.graph.nodes()
            store = store_cls(compiled, nodes)
            table = RegisterTable()
            for v in nodes:
                facade = ColumnarNodeFacade(store, v)
                facade.update(self.registers[v])
                dict.__setitem__(table, v, RegisterView(facade))
            self.schema = compiled
            self.files = None
            self.columns = store
            self.registers = table
            return compiled
        files: Dict[NodeId, RegisterFile] = {}
        table = RegisterTable()
        for v in self.graph.nodes():
            f = RegisterFile(compiled)
            f.update(self.registers[v])
            files[v] = f
            dict.__setitem__(table, v, RegisterView(f))
        self.schema = compiled
        self.files = files
        self.columns = None
        self.registers = table
        return compiled

    def install(self, assignments: Mapping[NodeId, Mapping[str, Any]]) -> None:
        """Write marker-produced labels into node registers."""
        for v, regs in assignments.items():
            self.registers[v].update(regs)

    # -- dynamic topology (churn) ---------------------------------------
    def remove_node(self, v: NodeId) -> Dict[str, Any]:
        """Crash node ``v``: drop it from the graph (surviving ports are
        tombstoned, not renumbered) and from the storage backend, and
        return a stub from which :meth:`add_node` can rebuild it.  The
        stub carries the node's final register contents so callers can
        model either a wiped rejoin or a state-preserving one.

        On columnar storage the node's dense row is parked on the
        store's freelist (:meth:`~repro.sim.columnar.ColumnStore.
        detach_node`) — columns never change length and no live handle
        is reindexed.  Schedulers driving the network must be told via
        their ``topology_changed()`` after any call here."""
        regs = dict(self.registers[v])
        stub = {"graph": self.graph.remove_node(v), "registers": regs}
        if self.columns is not None:
            self.columns.detach_node(v)
            dict.pop(self.registers, v)
        elif self.files is not None:
            del self.files[v]
            dict.pop(self.registers, v)
        else:
            del self.registers[v]
        return stub

    def add_node(self, v: NodeId, stub: Mapping[str, Any]) -> None:
        """Rejoin a node crashed by :meth:`remove_node`: the graph edges
        come back at their exact original ports on both endpoints, and
        the node's registers start *empty* (a rejoining node wakes up
        wiped; callers restore whatever survives — e.g. the stable
        label registers from ``stub["registers"]`` — and re-run the
        protocol's ``init_node``)."""
        self.graph.restore_node(v, stub["graph"])
        if self.columns is not None:
            from .columnar import ColumnarNodeFacade
            self.columns.attach_node(v)
            facade = ColumnarNodeFacade(self.columns, v)
            dict.__setitem__(self.registers, v, RegisterView(facade))
        elif self.files is not None:
            f = RegisterFile(self.schema)
            self.files[v] = f
            dict.__setitem__(self.registers, v, RegisterView(f))
        else:
            self.registers[v] = {}

    def clear(self) -> None:
        """Erase all registers (fresh adversarial start)."""
        if self.columns is not None:
            for i in range(self.columns.n):
                self.columns.clear_node(i)
        elif self.files is not None:
            for f in self.files.values():
                f.clear()
        else:
            for v in self.registers:
                self.registers[v] = {}

    def alarms(self) -> Dict[NodeId, str]:
        """Nodes currently raising an alarm, with their reasons."""
        store = self.columns
        if store is not None:
            a = self.schema.alarm_slot
            col = store.data[a]
            if type(col) is list:
                return {store.nodes[i]: reason
                        for i, reason in enumerate(col)
                        if reason is not UNSET and reason is not None}
            # alarm declared with a packed kind: resolve per node
            return {store.nodes[i]: reason for i in range(store.n)
                    if (reason := store.get_value(i, a)) is not None}
        files = self.files
        if files is not None:
            a = self.schema.alarm_slot
            out = {}
            for v, f in files.items():
                reason = f.slots[a]
                if reason is not UNSET and reason is not None:
                    out[v] = reason
            return out
        return {
            v: regs[ALARM]
            for v, regs in self.registers.items()
            if regs.get(ALARM) is not None
        }

    def has_alarm(self) -> bool:
        """Whether any node currently raises an alarm (O(n), no dict)."""
        store = self.columns
        if store is not None:
            a = self.schema.alarm_slot
            col = store.data[a]
            if type(col) is list:
                for reason in col:
                    if reason is not UNSET and reason is not None:
                        return True
                return False
            return any(store.get_value(i, a) is not None
                       for i in range(store.n))
        files = self.files
        if files is not None:
            a = self.schema.alarm_slot
            for f in files.values():
                reason = f.slots[a]
                if reason is not UNSET and reason is not None:
                    return True
            return False
        for regs in self.registers.values():
            if regs.get(ALARM) is not None:
                return True
        return False

    def local_context(self, node: NodeId):
        """A context over the live registers, matching the storage.

        Harness code that pokes a protocol outside a scheduler (budget
        probes, examples) must use this instead of constructing a
        :class:`NodeContext` directly: a protocol bound to slot handles
        needs a slot-addressed context."""
        if self.columns is not None:
            from .columnar import ColumnarNodeContext
            return ColumnarNodeContext(self, node, self.columns)
        if self.files is not None:
            return SlotNodeContext(self, node, self.files)
        return NodeContext(self, node, self.registers)

    def max_memory_bits(self) -> int:
        """max over nodes of the bits of non-ghost registers (the paper's
        memory-size measure); 0 for an empty graph."""
        if self.columns is not None:
            store = self.columns
            return max((store.node_bits(i) for i in range(store.n)),
                       default=0)
        if self.files is not None:
            return max((f.bits() for f in self.files.values()), default=0)
        return max((register_bits(regs) for regs in self.registers.values()),
                   default=0)

    def total_memory_bits(self) -> int:
        """Sum over nodes of non-ghost register bits."""
        if self.columns is not None:
            store = self.columns
            return sum(store.node_bits(i) for i in range(store.n))
        if self.files is not None:
            return sum(f.bits() for f in self.files.values())
        return sum(register_bits(regs) for regs in self.registers.values())


class NodeContext:
    """Read/write access for one atomic step of one node (dict storage).

    Own registers are read and written *live*; neighbour registers are read
    from ``snapshot`` (the previous round's state under the synchronous
    scheduler, the current state under asynchronous ones).

    When ``dirty`` is given, the context records the node into it on the
    first write that actually changes a register value — the fast-path
    synchronous scheduler uses this to rebuild only the stale slice of its
    snapshot and to skip re-stepping quiescent neighbourhoods.
    """

    __slots__ = ("network", "node", "_snapshot", "_own", "_dirty")

    def __init__(self, network: Network, node: NodeId,
                 snapshot: Mapping[NodeId, Mapping[str, Any]],
                 dirty: Optional[set] = None) -> None:
        self.network = network
        self.node = node
        self._snapshot = snapshot
        self._own = network.registers[node]
        self._dirty = dirty

    # -- own state ------------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        return self._own.get(name, default)

    def nat(self, name: str, cap: int = 1 << 30) -> Optional[int]:
        """Own register as a bounded non-negative int, else None."""
        return nat_value(self._own.get(name), cap)

    def get_decoded(self, name: str, decoder) -> Any:
        """``decoder(own register value)`` — uncached on dict storage."""
        return decoder(self._own.get(name))

    def set(self, name: str, value: Any) -> None:
        dirty = self._dirty
        if dirty is not None and self.node not in dirty:
            prev = self._own.get(name, _MISSING)
            # the type check keeps equal-but-distinct writes (True -> 1)
            # from silently going stale in the fast-path snapshot
            if prev != value or type(prev) is not type(value):
                dirty.add(self.node)
        self._own[name] = value

    def unset(self, name: str) -> None:
        if name in self._own:
            if self._dirty is not None:
                self._dirty.add(self.node)
            del self._own[name]

    def alarm(self, reason: str) -> None:
        """Raise (and latch) an alarm at this node."""
        if self._own.get(ALARM) is None:
            self.set(ALARM, reason)

    # -- neighbour state --------------------------------------------------
    def read(self, neighbor: NodeId, name: str, default: Any = None) -> Any:
        """Read a neighbour's register from the step's snapshot."""
        return self._snapshot[neighbor].get(name, default)

    def read_nat(self, neighbor: NodeId, name: str,
                 cap: int = 1 << 30) -> Optional[int]:
        """A neighbour's register as a bounded non-negative int."""
        return nat_value(self._snapshot[neighbor].get(name), cap)

    def read_decoded(self, neighbor: NodeId, name: str, decoder) -> Any:
        """``decoder(neighbour register value)`` — uncached on dicts."""
        return decoder(self._snapshot[neighbor].get(name))

    # -- topology ---------------------------------------------------------
    @property
    def neighbors(self) -> List[NodeId]:
        return self.network.graph.neighbors(self.node)

    @property
    def degree(self) -> int:
        return self.network.graph.degree(self.node)

    def weight(self, neighbor: NodeId):
        return self.network.graph.weight(self.node, neighbor)

    def port(self, neighbor: NodeId) -> int:
        return self.network.graph.port(self.node, neighbor)


class SlotNodeContext:
    """The register-file counterpart of :class:`NodeContext`.

    Accessors take *handles*: an ``int`` slot index (resolved once per
    run by :meth:`Protocol.bind_registers`) gives an O(1) list load; a
    ``str`` name falls back to the schema lookup, so storage-agnostic
    code (static label checks, instrumentation) runs unchanged.  ``nat``
    and ``read_nat`` return the write-time-cached coercion instead of
    re-parsing the value on every read.

    ``dirty`` is slot-level: a dict mapping the node to the set of slot
    indices whose value actually changed (``-1`` marks a change in the
    undeclared-extras dict), which lets the fast-path synchronous
    scheduler refresh only the stale slots of its snapshot.

    ``neighbors`` is a plain attribute (the schedulers pass the cached
    adjacency list), not a property.
    """

    __slots__ = ("network", "node", "neighbors", "_own", "_slots", "_nats",
                 "_decoded", "_stable_mask", "_snapshot", "_dirty", "_marks")

    def __init__(self, network: Network, node: NodeId,
                 snapshot: Mapping[NodeId, RegisterFile],
                 dirty: Optional[dict] = None,
                 neighbors: Optional[List[NodeId]] = None) -> None:
        self.network = network
        self.node = node
        self.neighbors = network.graph.neighbors(node) \
            if neighbors is None else neighbors
        own = network.files[node]
        self._own = own
        self._slots = own.slots
        self._nats = own.nats
        self._decoded = own.decoded
        self._stable_mask = own.schema.stable_mask
        self._snapshot = snapshot
        self._dirty = dirty
        #: the node's slot-mark set inside ``_dirty``, looked up once per
        #: step; whoever reassigns ``_dirty`` must reset this to None
        self._marks = None

    def stable_sentinel(self) -> int:
        """Version sentinel of the closed neighbourhood's stable (label)
        registers: own live file plus the neighbours as visible through
        this step's snapshot.  Protocols key label-derived caches on it —
        the counters are monotone, so the sum changes iff some label in
        the read scope changed."""
        s = self._own.stable_version
        snapshot = self._snapshot
        for u in self.neighbors:
            s += snapshot[u].stable_version
        return s

    # -- own state ------------------------------------------------------
    def get(self, handle, default: Any = None) -> Any:
        if type(handle) is int:
            v = self._slots[handle]
            return default if v is UNSET else v
        return self._own.get_name(handle, default)

    def nat(self, handle, cap: int = 1 << 30) -> Optional[int]:
        if type(handle) is int:
            v = self._nats[handle]
            return v if v is not None and v <= cap else None
        return nat_value(self._own.get_name(handle), cap)

    def get_decoded(self, handle, decoder) -> Any:
        """``decoder(own register value)``, decoded once per write.

        The decoder must be a pure function of the raw value, and a slot
        must always be decoded by the same decoder (one cache line per
        slot)."""
        if type(handle) is int:
            d = self._decoded[handle]
            if d is NO_DECODE:
                v = self._slots[handle]
                d = decoder(None if v is UNSET else v)
                self._decoded[handle] = d
            return d
        return decoder(self._own.get_name(handle))

    def set(self, handle, value: Any) -> None:
        if type(handle) is not int:
            i = self._own.schema.slots.get(handle)
            if i is None:
                self._set_extra(handle, value)
                return
            handle = i
        slots = self._slots
        if self._dirty is not None:
            prev = slots[handle]
            if prev != value or type(prev) is not type(value):
                marks = self._marks
                if marks is not None:
                    marks.add(handle)
                else:
                    self._mark(handle)
        slots[handle] = value
        # inlined registers.nat_cache_value (hot path) — keep in sync
        self._nats[handle] = value if isinstance(value, int) \
            and not isinstance(value, bool) and value >= 0 else None
        self._decoded[handle] = NO_DECODE
        if self._stable_mask[handle]:
            self._own.stable_version += 1

    def _set_extra(self, name: str, value: Any) -> None:
        own = self._own
        if self._dirty is not None:
            prev = own.extra.get(name, _MISSING) if own.extra else _MISSING
            if prev != value or type(prev) is not type(value):
                self._mark(-1)
        if own.extra is None:
            own.extra = {}
        own.extra[name] = value

    def _mark(self, slot: int) -> None:
        marks = self._marks
        if marks is None:
            dirty = self._dirty
            marks = dirty.get(self.node)
            if marks is None:
                dirty[self.node] = marks = set()
            self._marks = marks
        marks.add(slot)

    def unset(self, handle) -> None:
        own = self._own
        if type(handle) is not int:
            i = own.schema.slots.get(handle)
            if i is None:
                if own.extra and handle in own.extra:
                    if self._dirty is not None:
                        self._mark(-1)
                    del own.extra[handle]
                return
            handle = i
        if self._slots[handle] is not UNSET:
            if self._dirty is not None:
                self._mark(handle)
            self._slots[handle] = UNSET
            self._nats[handle] = None
            self._decoded[handle] = NO_DECODE
            if self._stable_mask[handle]:
                self._own.stable_version += 1

    def alarm(self, reason: str) -> None:
        """Raise (and latch) an alarm at this node."""
        a = self._own.schema.alarm_slot
        current = self._slots[a]
        if current is UNSET or current is None:
            self.set(a, reason)

    # -- neighbour state --------------------------------------------------
    def read(self, neighbor: NodeId, handle, default: Any = None) -> Any:
        f = self._snapshot[neighbor]
        if type(handle) is int:
            v = f.slots[handle]
            return default if v is UNSET else v
        return f.get_name(handle, default)

    def read_nat(self, neighbor: NodeId, handle,
                 cap: int = 1 << 30) -> Optional[int]:
        f = self._snapshot[neighbor]
        if type(handle) is int:
            v = f.nats[handle]
            return v if v is not None and v <= cap else None
        return nat_value(f.get_name(handle), cap)

    def read_decoded(self, neighbor: NodeId, handle, decoder) -> Any:
        """``decoder(neighbour register value)``, decoded once per write
        (the cache lives in the snapshot's register file)."""
        f = self._snapshot[neighbor]
        if type(handle) is int:
            d = f.decoded[handle]
            if d is NO_DECODE:
                v = f.slots[handle]
                d = decoder(None if v is UNSET else v)
                f.decoded[handle] = d
            return d
        return decoder(f.get_name(handle))

    # -- topology ---------------------------------------------------------
    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def weight(self, neighbor: NodeId):
        return self.network.graph.weight(self.node, neighbor)

    def port(self, neighbor: NodeId) -> int:
        return self.network.graph.port(self.node, neighbor)


class Protocol:
    """Base class for distributed protocols run by the schedulers.

    Contract required by the fast-path synchronous scheduler: ``step``
    must be a *deterministic pure function* of the state visible through
    its :class:`NodeContext` (own registers plus the neighbour snapshot),
    and all register writes must go through the context API.  Randomness
    belongs in daemons, fault injectors, and markers — not in ``step``.
    Change detection treats ``==``-equal values of the same top-level
    type as unchanged, so protocols must not rely on distinctions ``==``
    cannot see (``(1, True)`` vs ``(1, 1)``, ``-0.0`` vs ``0.0``); the
    repo convention of plain immutable register values already rules
    these out.

    A protocol may declare its registers by returning a
    :class:`~repro.sim.registers.RegisterSchema` from
    :meth:`register_schema`; the schedulers then back the network with
    array-based register files and call :meth:`bind_registers` with the
    compiled schema so the protocol can resolve its register names to
    integer slot handles once (``bind_registers(None)`` restores
    name-string handles for dict storage).  Protocols without a schema
    keep the legacy dict behaviour everywhere.

    **Bulk-activation plane** (:mod:`repro.sim.bulk`): a protocol may
    additionally declare that it can execute a whole scheduler batch at
    once by overriding :attr:`bulk_step` with a method
    ``bulk_step(batch)`` — the schedulers then hand it entire rounds
    (synchronous) or daemon batches (asynchronous) instead of stepping
    node by node.  The contract is strict: ``bulk_step(batch)`` must be
    observationally identical to ``for ctx in batch.contexts:
    self.step(ctx)`` honouring the batch's ``gate``/``after`` callbacks
    strictly interleaved per activation (see the interleaving contract
    in :mod:`repro.sim.bulk`); :func:`repro.sim.bulk.drive_batch` is
    the always-correct fallback driver, and fused column sweeps are
    licensed only by ``batch.ops``.  ``bulk_step = None`` (the base
    default) keeps the scalar loops.
    """

    #: bulk-activation capability: None (scalar-only) on the base class;
    #: protocols that can run whole batches override this with a method.
    bulk_step = None

    #: whether ``bulk_step`` is worth calling on *live* multi-node
    #: batches (asynchronous daemons).  Unlicensed live batches never
    #: fuse — activation-granular stops and live neighbour reads
    #: forbid write hoisting — so routing them through the per-node
    #: fallback driver is pure callback overhead unless the protocol
    #: has a genuinely batched live path; the asynchronous scheduler
    #: only routes such batches when this is True.
    bulk_live = False

    #: whether ``bulk_step`` can fuse batches carrying the
    #: ``conflict_free`` license (:class:`~repro.sim.schedulers.
    #: ConflictFreeDaemon` batches: pairwise disjoint closed
    #: neighbourhoods, batch-granular stops).  The asynchronous
    #: scheduler routes conflict-free daemon batches — with live fused
    #: column ops — only to protocols declaring this; a declaring
    #: ``bulk_step`` must handle ``batch.conflict_free`` batches per
    #: the commuting gate/after contract in :mod:`repro.sim.bulk`.
    bulk_conflict_free = False

    #: whether ``bulk_step`` honours *coalesced* conflict-free batches
    #: (``batch.segments``/``batch.boundary``, see
    #: :class:`~repro.sim.bulk.BulkBatch`): segments driven strictly in
    #: order with ``boundary`` replayed at the original batch
    #: boundaries.  The asynchronous scheduler only coalesces
    #: consecutive same-sweep batches for protocols declaring this;
    #: :func:`repro.sim.bulk.drive_batch` already honours the contract,
    #: so a ``bulk_step`` delegating every callback-carrying batch
    #: there may declare it for free.
    bulk_segments = False

    def register_schema(self) -> Optional[RegisterSchema]:
        """The protocol's register declaration (None: undeclared)."""
        return None

    def bind_registers(self, compiled: Optional[CompiledSchema]) -> None:
        """Resolve register handles for the given storage (no-op here)."""

    def init_node(self, ctx: NodeContext) -> None:  # pragma: no cover
        """Initialize working registers (default: nothing)."""

    def step(self, ctx: NodeContext) -> None:
        raise NotImplementedError

    def on_round_end(self, network: Network, round_index: int) -> None:
        """Optional hook called by schedulers after each full round."""


StopCondition = Callable[[Network], bool]


def first_alarm(network: Network) -> bool:
    """Stop condition: some node raised an alarm."""
    return network.has_alarm()
