"""The shared-memory network model (Section 2.1 / 2.2).

Each node owns a set of registers readable by its neighbours.  In one
*ideal time* unit a node reads all of its neighbours' registers and
rewrites its own (the paper's ideal time complexity; the stricter
contention model costs an extra Delta factor, which our asynchronous
daemons can emulate).

A :class:`Protocol` provides two callbacks:

* ``init_node(ctx)`` — set up the node's working registers (labels
  installed by a marker are left untouched);
* ``step(ctx)`` — one atomic step: read neighbours through ``ctx.read``
  and update own registers through ``ctx.set``.

Protocols signal fault detection by setting the ``alarm`` register to a
non-None reason string; the harness collects alarms via
:meth:`Network.alarms`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from ..graphs.weighted import NodeId, WeightedGraph
from .registers import register_bits

ALARM = "alarm"


class Network:
    """A set of nodes with registers, built over a :class:`WeightedGraph`."""

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.registers: Dict[NodeId, Dict[str, Any]] = {
            v: {} for v in graph.nodes()
        }

    def install(self, assignments: Mapping[NodeId, Mapping[str, Any]]) -> None:
        """Write marker-produced labels into node registers."""
        for v, regs in assignments.items():
            self.registers[v].update(regs)

    def clear(self) -> None:
        """Erase all registers (fresh adversarial start)."""
        for v in self.registers:
            self.registers[v] = {}

    def alarms(self) -> Dict[NodeId, str]:
        """Nodes currently raising an alarm, with their reasons."""
        return {
            v: regs[ALARM]
            for v, regs in self.registers.items()
            if regs.get(ALARM) is not None
        }

    def max_memory_bits(self) -> int:
        """max over nodes of the bits of non-ghost registers (the paper's
        memory-size measure)."""
        return max(register_bits(regs) for regs in self.registers.values())

    def total_memory_bits(self) -> int:
        """Sum over nodes of non-ghost register bits."""
        return sum(register_bits(regs) for regs in self.registers.values())


_MISSING = object()


class NodeContext:
    """Read/write access for one atomic step of one node.

    Own registers are read and written *live*; neighbour registers are read
    from ``snapshot`` (the previous round's state under the synchronous
    scheduler, the current state under asynchronous ones).

    When ``dirty`` is given, the context records the node into it on the
    first write that actually changes a register value — the fast-path
    synchronous scheduler uses this to rebuild only the stale slice of its
    snapshot and to skip re-stepping quiescent neighbourhoods.
    """

    __slots__ = ("network", "node", "_snapshot", "_own", "_dirty")

    def __init__(self, network: Network, node: NodeId,
                 snapshot: Mapping[NodeId, Mapping[str, Any]],
                 dirty: Optional[set] = None) -> None:
        self.network = network
        self.node = node
        self._snapshot = snapshot
        self._own = network.registers[node]
        self._dirty = dirty

    # -- own state ------------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        return self._own.get(name, default)

    def set(self, name: str, value: Any) -> None:
        dirty = self._dirty
        if dirty is not None and self.node not in dirty:
            prev = self._own.get(name, _MISSING)
            # the type check keeps equal-but-distinct writes (True -> 1)
            # from silently going stale in the fast-path snapshot
            if prev != value or type(prev) is not type(value):
                dirty.add(self.node)
        self._own[name] = value

    def unset(self, name: str) -> None:
        if name in self._own:
            if self._dirty is not None:
                self._dirty.add(self.node)
            del self._own[name]

    def alarm(self, reason: str) -> None:
        """Raise (and latch) an alarm at this node."""
        if self._own.get(ALARM) is None:
            self.set(ALARM, reason)

    # -- neighbour state --------------------------------------------------
    def read(self, neighbor: NodeId, name: str, default: Any = None) -> Any:
        """Read a neighbour's register from the step's snapshot."""
        return self._snapshot[neighbor].get(name, default)

    # -- topology ---------------------------------------------------------
    @property
    def neighbors(self) -> List[NodeId]:
        return self.network.graph.neighbors(self.node)

    @property
    def degree(self) -> int:
        return self.network.graph.degree(self.node)

    def weight(self, neighbor: NodeId):
        return self.network.graph.weight(self.node, neighbor)

    def port(self, neighbor: NodeId) -> int:
        return self.network.graph.port(self.node, neighbor)


class Protocol:
    """Base class for distributed protocols run by the schedulers.

    Contract required by the fast-path synchronous scheduler: ``step``
    must be a *deterministic pure function* of the state visible through
    its :class:`NodeContext` (own registers plus the neighbour snapshot),
    and all register writes must go through the context API.  Randomness
    belongs in daemons, fault injectors, and markers — not in ``step``.
    Change detection treats ``==``-equal values of the same top-level
    type as unchanged, so protocols must not rely on distinctions ``==``
    cannot see (``(1, True)`` vs ``(1, 1)``, ``-0.0`` vs ``0.0``); the
    repo convention of plain immutable register values already rules
    these out.
    """

    def init_node(self, ctx: NodeContext) -> None:  # pragma: no cover
        """Initialize working registers (default: nothing)."""

    def step(self, ctx: NodeContext) -> None:
        raise NotImplementedError

    def on_round_end(self, network: Network, round_index: int) -> None:
        """Optional hook called by schedulers after each full round."""


StopCondition = Callable[[Network], bool]


def first_alarm(network: Network) -> bool:
    """Stop condition: some node raised an alarm."""
    return bool(network.alarms())
