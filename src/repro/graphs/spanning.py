"""Distributed representation of spanning structures (Section 2.1).

The network stores an object such as an MST *distributively*: the
*component* ``c(v)`` at node ``v`` is a pointer (port number) to ``v``'s
parent, or ``None`` when ``v`` is the root.  The collection of components
induces a subgraph ``H(G)``: an edge is included iff at least one of its
end-nodes points at the other.

:class:`RootedTree` is the centralized view used by markers, verifiers'
tests, and benchmarks: parent/children maps, depths, subtree sizes, DFS
orders, and tree-path queries.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .weighted import Edge, GraphError, NodeId, WeightedGraph, edge_key


class Components:
    """The per-node parent-pointer components ``c(v)`` of Section 2.1.

    ``parent_port[v]`` is the port number at ``v`` pointing at ``v``'s
    parent, or ``None`` if ``v`` has no pointer (candidate root).
    """

    def __init__(self, graph: WeightedGraph,
                 parent_port: Dict[NodeId, Optional[int]]) -> None:
        self.graph = graph
        self.parent_port = dict(parent_port)
        for v in graph.nodes():
            if v not in self.parent_port:
                raise GraphError(f"node {v} has no component entry")

    @classmethod
    def from_parent_map(cls, graph: WeightedGraph,
                        parent: Dict[NodeId, Optional[NodeId]]) -> "Components":
        """Build components from a node->parent map (None for the root)."""
        ports: Dict[NodeId, Optional[int]] = {}
        for v, p in parent.items():
            ports[v] = None if p is None else graph.port(v, p)
        return cls(graph, ports)

    def parent_of(self, v: NodeId) -> Optional[NodeId]:
        """The node pointed at by ``v``'s component (or None)."""
        port = self.parent_port[v]
        if port is None:
            return None
        return self.graph.neighbor_at_port(v, port)

    def induced_edges(self) -> Set[Edge]:
        """Edges of H(G): included iff at least one endpoint points at the
        other (paper, Section 2.1)."""
        out: Set[Edge] = set()
        for v in self.graph.nodes():
            p = self.parent_of(v)
            if p is not None:
                out.add(edge_key(v, p))
        return out

    def roots(self) -> List[NodeId]:
        """Nodes whose component holds no pointer."""
        return [v for v, port in self.parent_port.items() if port is None]


def is_spanning_tree(graph: WeightedGraph, edges: Set[Edge]) -> bool:
    """Whether ``edges`` forms a spanning tree of ``graph``."""
    if graph.n == 0:
        return True
    if len(edges) != graph.n - 1:
        return False
    adj: Dict[NodeId, List[NodeId]] = {v: [] for v in graph.nodes()}
    for (u, v) in edges:
        if not graph.has_edge(u, v):
            return False
        adj[u].append(v)
        adj[v].append(u)
    start = graph.nodes()[0]
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == graph.n


class RootedTree:
    """A rooted spanning tree of a :class:`WeightedGraph`.

    Construction validates that the parent map describes a tree spanning
    all graph nodes and that every parent edge exists in the graph.
    """

    def __init__(self, graph: WeightedGraph, root: NodeId,
                 parent: Dict[NodeId, Optional[NodeId]]) -> None:
        self.graph = graph
        self.root = root
        self.parent: Dict[NodeId, Optional[NodeId]] = dict(parent)
        if self.parent.get(root, "missing") is not None:
            raise GraphError("root must have parent None")
        self.children: Dict[NodeId, List[NodeId]] = {v: [] for v in graph.nodes()}
        for v in graph.nodes():
            if v == root:
                continue
            p = self.parent.get(v)
            if p is None:
                raise GraphError(f"non-root node {v} lacks a parent")
            if not graph.has_edge(v, p):
                raise GraphError(f"parent edge ({v}, {p}) not in graph")
            self.children[p].append(v)
        # children in port order at the parent: deterministic DFS orders.
        for p in self.children:
            self.children[p].sort(key=lambda c: graph.port(p, c))
        self.depth: Dict[NodeId, int] = {}
        self._compute_depths()
        if len(self.depth) != graph.n:
            raise GraphError("parent map does not span the graph / has cycles")

    # ------------------------------------------------------------------
    def _compute_depths(self) -> None:
        self.depth[self.root] = 0
        stack = [self.root]
        while stack:
            u = stack.pop()
            for c in self.children[u]:
                self.depth[c] = self.depth[u] + 1
                stack.append(c)

    @classmethod
    def from_edges(cls, graph: WeightedGraph, edges: Set[Edge],
                   root: NodeId) -> "RootedTree":
        """Orient an (unrooted) spanning-tree edge set away from ``root``."""
        adj: Dict[NodeId, List[NodeId]] = {v: [] for v in graph.nodes()}
        for (u, v) in edges:
            adj[u].append(v)
            adj[v].append(u)
        parent: Dict[NodeId, Optional[NodeId]] = {root: None}
        stack = [root]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v not in parent:
                    parent[v] = u
                    stack.append(v)
        if len(parent) != graph.n:
            raise GraphError("edge set does not span the graph")
        return cls(graph, root, parent)

    # ------------------------------------------------------------------
    def nodes(self) -> List[NodeId]:
        return self.graph.nodes()

    def edge_set(self) -> Set[Edge]:
        """Tree edges as canonical pairs."""
        return {edge_key(v, p) for v, p in self.parent.items() if p is not None}

    def components(self) -> Components:
        """The distributed (parent-port) representation of this tree."""
        return Components.from_parent_map(self.graph, self.parent)

    def subtree_sizes(self) -> Dict[NodeId, int]:
        """Size of the subtree hanging from each node (including itself)."""
        sizes = {v: 1 for v in self.nodes()}
        for v in self.dfs_postorder():
            p = self.parent[v]
            if p is not None:
                sizes[p] += sizes[v]
        return sizes

    def height(self) -> int:
        """Height of the tree (max depth)."""
        return max(self.depth.values(), default=0)

    def dfs_preorder(self, start: Optional[NodeId] = None) -> List[NodeId]:
        """DFS preorder from ``start`` (default: the root), children in
        port order — the order used to place train pieces (Section 6.2)."""
        start = self.root if start is None else start
        order: List[NodeId] = []
        stack = [start]
        while stack:
            u = stack.pop()
            order.append(u)
            for c in reversed(self.children[u]):
                stack.append(c)
        return order

    def dfs_postorder(self) -> List[NodeId]:
        """DFS postorder (children before parents)."""
        order = self.dfs_preorder()
        seen_children: List[NodeId] = []
        # reverse preorder with reversed child expansion = postorder reversed
        out: List[NodeId] = []
        stack: List[Tuple[NodeId, bool]] = [(self.root, False)]
        while stack:
            u, expanded = stack.pop()
            if expanded:
                out.append(u)
            else:
                stack.append((u, True))
                for c in reversed(self.children[u]):
                    stack.append((c, False))
        return out

    def subtree_nodes(self, v: NodeId) -> List[NodeId]:
        """All nodes in the subtree rooted at ``v`` (preorder)."""
        return self.dfs_preorder(start=v)

    def path_to_root(self, v: NodeId) -> List[NodeId]:
        """Nodes on the path from ``v`` up to the root, inclusive."""
        path = [v]
        cur: Optional[NodeId] = v
        while True:
            cur = self.parent[path[-1]]
            if cur is None:
                return path
            path.append(cur)

    def tree_path(self, u: NodeId, v: NodeId) -> List[NodeId]:
        """Nodes on the unique tree path between ``u`` and ``v``."""
        pu = self.path_to_root(u)
        pv = self.path_to_root(v)
        set_u = {x: i for i, x in enumerate(pu)}
        for j, x in enumerate(pv):
            if x in set_u:
                return pu[:set_u[x] + 1] + list(reversed(pv[:j]))
        raise GraphError("nodes in different trees")

    def tree_path_max_weight(self, u: NodeId, v: NodeId):
        """Maximum edge weight on the tree path between u and v."""
        path = self.tree_path(u, v)
        return max(self.graph.weight(a, b) for a, b in zip(path, path[1:]))

    def tree_neighbors(self, v: NodeId) -> List[NodeId]:
        """Tree neighbours of v: parent (if any) followed by children."""
        out: List[NodeId] = []
        if self.parent[v] is not None:
            out.append(self.parent[v])  # type: ignore[arg-type]
        out.extend(self.children[v])
        return out

    def is_ancestor(self, anc: NodeId, v: NodeId) -> bool:
        """Whether ``anc`` lies on the path from ``v`` to the root."""
        cur: Optional[NodeId] = v
        while cur is not None:
            if cur == anc:
                return True
            cur = self.parent[cur]
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RootedTree(root={self.root}, n={self.graph.n})"
