"""Workload generators: graph families used by tests and benchmarks.

All generators return connected :class:`WeightedGraph` instances with
pairwise-distinct weights by default (distinct weights guarantee a unique
MST, the standard assumption of Section 2.1).  Weight values are a random
permutation of ``1..m`` — polynomial in ``n`` as the paper assumes.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from .weighted import GraphError, NodeId, WeightedGraph, edge_key


def _apply_weights(edges: Sequence[Tuple[NodeId, NodeId]],
                   rng: random.Random,
                   distinct: bool = True) -> List[Tuple[NodeId, NodeId, int]]:
    """Assign a random permutation of 1..m (distinct) or random ints."""
    m = len(edges)
    if distinct:
        weights = list(range(1, m + 1))
        rng.shuffle(weights)
    else:
        weights = [rng.randint(1, max(2, m // 2)) for _ in range(m)]
    return [(u, v, w) for (u, v), w in zip(edges, weights)]


def _build(nodes: Iterable[NodeId],
           edges: Sequence[Tuple[NodeId, NodeId]],
           rng: random.Random,
           distinct: bool = True) -> WeightedGraph:
    g = WeightedGraph()
    for u in nodes:
        g.add_node(u)
    for u, v, w in _apply_weights(edges, rng, distinct):
        g.add_edge(u, v, w)
    return g


def path_graph(n: int, seed: int = 0) -> WeightedGraph:
    """A path on n nodes."""
    rng = random.Random(seed)
    edges = [(i, i + 1) for i in range(n - 1)]
    return _build(range(n), edges, rng)


def ring_graph(n: int, seed: int = 0) -> WeightedGraph:
    """A cycle on n nodes (n >= 3)."""
    if n < 3:
        raise GraphError("ring needs n >= 3")
    rng = random.Random(seed)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return _build(range(n), edges, rng)


def star_graph(n: int, seed: int = 0) -> WeightedGraph:
    """A star: node 0 joined to all others (max degree n-1)."""
    rng = random.Random(seed)
    edges = [(0, i) for i in range(1, n)]
    return _build(range(n), edges, rng)


def complete_graph(n: int, seed: int = 0) -> WeightedGraph:
    """The complete graph K_n."""
    rng = random.Random(seed)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _build(range(n), edges, rng)


def grid_graph(rows: int, cols: int, seed: int = 0) -> WeightedGraph:
    """A rows x cols grid (bounded degree 4)."""
    rng = random.Random(seed)
    def nid(r: int, c: int) -> int:
        return r * cols + c
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                edges.append((nid(r, c), nid(r + 1, c)))
    return _build(range(rows * cols), edges, rng)


def random_tree(n: int, seed: int = 0) -> WeightedGraph:
    """A uniformly random labelled tree (random attachment)."""
    rng = random.Random(seed)
    edges = []
    for v in range(1, n):
        edges.append((rng.randrange(v), v))
    return _build(range(n), edges, rng)


def caterpillar_graph(spine: int, legs_per_node: int, seed: int = 0) -> WeightedGraph:
    """A caterpillar: a spine path with ``legs_per_node`` leaves each —
    a high-degree, low-diameter stress case for the partitions."""
    rng = random.Random(seed)
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            edges.append((i, nxt))
            nxt += 1
    return _build(range(nxt), edges, rng)


def random_connected_graph(n: int, extra_edges: int, seed: int = 0,
                           distinct: bool = True) -> WeightedGraph:
    """A random tree plus ``extra_edges`` uniformly random non-tree edges.

    The workhorse workload of the benchmarks: connectivity guaranteed,
    density controlled, distinct weights by default.
    """
    rng = random.Random(seed)
    edges = set()
    for v in range(1, n):
        edges.add(edge_key(rng.randrange(v), v))
    max_extra = n * (n - 1) // 2 - len(edges)
    extra_edges = min(extra_edges, max_extra)
    while extra_edges > 0:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = edge_key(u, v)
        if e in edges:
            continue
        edges.add(e)
        extra_edges -= 1
    ordered = sorted(edges)
    rng.shuffle(ordered)
    return _build(range(n), ordered, rng, distinct)


def random_geometric_graph(n: int, radius: float, seed: int = 0) -> WeightedGraph:
    """Random geometric graph on the unit square, patched to connectivity
    by adding nearest-neighbour edges between components."""
    rng = random.Random(seed)
    pts = [(rng.random(), rng.random()) for _ in range(n)]
    edges = set()
    for i in range(n):
        for j in range(i + 1, n):
            dx = pts[i][0] - pts[j][0]
            dy = pts[i][1] - pts[j][1]
            if dx * dx + dy * dy <= radius * radius:
                edges.add((i, j))
    # patch connectivity: union-find over components, join closest pairs
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for (i, j) in edges:
        parent[find(i)] = find(j)
    while True:
        comps = {}
        for i in range(n):
            comps.setdefault(find(i), []).append(i)
        if len(comps) == 1:
            break
        groups = list(comps.values())
        a, b = groups[0], groups[1]
        best = None
        for i in a:
            for j in b:
                dx = pts[i][0] - pts[j][0]
                dy = pts[i][1] - pts[j][1]
                d = dx * dx + dy * dy
                if best is None or d < best[0]:
                    best = (d, i, j)
        assert best is not None
        edges.add(edge_key(best[1], best[2]))
        parent[find(best[1])] = find(best[2])
    ordered = sorted(edges)
    rng.shuffle(ordered)
    return _build(range(n), ordered, rng)


def bounded_degree_graph(n: int, degree: int, seed: int = 0) -> WeightedGraph:
    """A connected graph with maximum degree <= ``degree`` (>= 2):
    a random tree with attachment capped at ``degree - 1`` children,
    plus random extra edges respecting the cap."""
    if degree < 2:
        raise GraphError("degree must be >= 2")
    rng = random.Random(seed)
    deg = [0] * n
    edges = set()
    for v in range(1, n):
        candidates = [u for u in range(v) if deg[u] < degree - 1]
        if not candidates:
            candidates = [u for u in range(v) if deg[u] < degree]
        u = rng.choice(candidates)
        edges.add(edge_key(u, v))
        deg[u] += 1
        deg[v] += 1
    attempts = 4 * n
    while attempts > 0:
        attempts -= 1
        u, v = rng.randrange(n), rng.randrange(n)
        e = edge_key(u, v)
        if u == v or e in edges or deg[u] >= degree or deg[v] >= degree:
            continue
        edges.add(e)
        deg[u] += 1
        deg[v] += 1
    ordered = sorted(edges)
    rng.shuffle(ordered)
    return _build(range(n), ordered, rng)
