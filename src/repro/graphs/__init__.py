"""Graph substrate: weighted graphs, spanning structures, generators,
reference MST algorithms, the omega' weight modification, and the exact
paper example of Figure 1 / Table 2."""

from .weighted import Edge, GraphError, NodeId, Weight, WeightedGraph, edge_key
from .spanning import Components, RootedTree, is_spanning_tree
from .mst_reference import boruvka_mst, is_mst, kruskal_mst, mst_weight, prim_mst
from .weights import (ensure_distinct_weights, lexicographic_weight,
                      with_verification_weights)
from . import generators, paper_example

__all__ = [
    "Edge", "GraphError", "NodeId", "Weight", "WeightedGraph", "edge_key",
    "Components", "RootedTree", "is_spanning_tree",
    "boruvka_mst", "is_mst", "kruskal_mst", "mst_weight", "prim_mst",
    "ensure_distinct_weights", "lexicographic_weight",
    "with_verification_weights",
    "generators", "paper_example",
]
