"""The verification-safe distinct-weight modification (footnote 1).

The standard GHS trick of breaking weight ties by endpoint identities is
*not* sufficient for verification: the given subgraph can be an MST of the
original graph but not of the tie-broken one.  Kor, Korman and Peleg order
edges lexicographically by

    omega'(e) = ( omega(e), 1 - Y_e, IDmin(e), IDmax(e) )

where ``Y_e`` indicates whether ``e`` belongs to the candidate tree T.
Tree edges beat equal-weight non-tree edges, hence T is an MST of G under
``omega`` iff T is an MST of G under ``omega'`` — and ``omega'`` is
injective because it includes the endpoint identities.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from .weighted import Edge, NodeId, WeightedGraph, edge_key

LexWeight = Tuple


def lexicographic_weight(weight, u: NodeId, v: NodeId,
                         in_tree: bool) -> LexWeight:
    """The tuple omega'(e) for edge (u, v) with indicator ``in_tree``."""
    return (weight, 0 if in_tree else 1, min(u, v), max(u, v))


def with_verification_weights(graph: WeightedGraph,
                              tree_edges: Iterable[Edge]) -> WeightedGraph:
    """Return a copy of ``graph`` re-weighted with omega'.

    The returned graph always has distinct weights, and the candidate tree
    is an MST of the original iff it is an MST of the returned graph.
    """
    tset: Set[Edge] = {edge_key(u, v) for (u, v) in tree_edges}
    out = WeightedGraph()
    for node in graph.nodes():
        out.add_node(node)
    for u, v, w in graph.edges():
        out.add_edge(u, v, lexicographic_weight(w, u, v, edge_key(u, v) in tset))
    return out


def ensure_distinct_weights(graph: WeightedGraph,
                            tree_edges: Iterable[Edge]) -> WeightedGraph:
    """Return ``graph`` unchanged when weights are already distinct,
    otherwise the omega'-re-weighted copy (the paper's Section 2.1 rule)."""
    if graph.has_distinct_weights():
        return graph
    return with_verification_weights(graph, tree_edges)
