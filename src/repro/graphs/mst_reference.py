"""Centralized reference MST algorithms (correctness oracles).

These are the ground truth against which the distributed algorithms are
checked.  With distinct edge weights the MST is unique, so set equality of
edge sets is a complete correctness check.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from .weighted import Edge, GraphError, NodeId, WeightedGraph, edge_key


class _UnionFind:
    """Union-find with path compression and union by rank."""

    def __init__(self, items) -> None:
        self.parent = {x: x for x in items}
        self.rank = {x: 0 for x in items}

    def find(self, x):
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a, b) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True


def kruskal_mst(graph: WeightedGraph) -> Set[Edge]:
    """The unique MST edge set via Kruskal (requires distinct weights for
    uniqueness; works regardless, returning *an* MST)."""
    uf = _UnionFind(graph.nodes())
    mst: Set[Edge] = set()
    for u, v, _w in sorted(graph.edges(), key=lambda e: e[2]):
        if uf.union(u, v):
            mst.add(edge_key(u, v))
    if graph.n and len(mst) != graph.n - 1:
        raise GraphError("graph is not connected; no spanning tree exists")
    return mst


def prim_mst(graph: WeightedGraph, start: Optional[NodeId] = None) -> Set[Edge]:
    """The MST edge set via Prim's algorithm from ``start``."""
    nodes = graph.nodes()
    if not nodes:
        return set()
    start = nodes[0] if start is None else start
    in_tree = {start}
    mst: Set[Edge] = set()
    heap: List[Tuple] = []
    for v in graph.neighbors(start):
        heapq.heappush(heap, (graph.weight(start, v), start, v))
    while heap and len(in_tree) < graph.n:
        w, u, v = heapq.heappop(heap)
        if v in in_tree:
            continue
        in_tree.add(v)
        mst.add(edge_key(u, v))
        for x in graph.neighbors(v):
            if x not in in_tree:
                heapq.heappush(heap, (graph.weight(v, x), v, x))
    if len(in_tree) != graph.n:
        raise GraphError("graph is not connected; no spanning tree exists")
    return mst


def boruvka_mst(graph: WeightedGraph) -> Set[Edge]:
    """The MST edge set via Boruvka phases (distinct weights required —
    this mirrors the fragment/minimum-outgoing-edge view of GHS)."""
    if not graph.has_distinct_weights():
        raise GraphError("Boruvka requires distinct edge weights")
    uf = _UnionFind(graph.nodes())
    mst: Set[Edge] = set()
    num_components = graph.n
    while num_components > 1:
        # minimum outgoing edge per component
        best: Dict[NodeId, Tuple] = {}
        for u, v, w in graph.edges():
            ru, rv = uf.find(u), uf.find(v)
            if ru == rv:
                continue
            for r in (ru, rv):
                if r not in best or w < best[r][0]:
                    best[r] = (w, u, v)
        if not best:
            raise GraphError("graph is not connected; no spanning tree exists")
        for _w, u, v in best.values():
            if uf.union(u, v):
                mst.add(edge_key(u, v))
                num_components -= 1
    return mst


def is_mst(graph: WeightedGraph, edges: Set[Edge]) -> bool:
    """Whether ``edges`` is *the* MST (distinct weights) or *an* MST.

    Uses the cycle property: a spanning tree is minimum iff every non-tree
    edge is a maximum-weight edge on the cycle it closes.
    """
    from .spanning import RootedTree, is_spanning_tree

    if not is_spanning_tree(graph, edges):
        return False
    if graph.n <= 1:
        return True
    root = graph.nodes()[0]
    tree = RootedTree.from_edges(graph, edges, root)
    for u, v, w in graph.edges():
        if edge_key(u, v) in edges:
            continue
        if w < tree.tree_path_max_weight(u, v):
            return False
    return True


def mst_weight(graph: WeightedGraph):
    """Total weight of the MST."""
    return graph.total_weight(kruskal_mst(graph))
