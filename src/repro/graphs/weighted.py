"""Weighted undirected graphs with per-node port numbers.

This module provides the graph model assumed by the paper (Section 2.1):

* an edge-weighted graph ``G = (V, E)`` with weights polynomial in ``n``,
* each node has a unique identity ``ID(v)`` encodable in O(log n) bits,
* each incident edge of a node ``v`` carries a *port number* that is unique
  at ``v`` and independent of the port number of the same edge at the other
  endpoint.

Weights may be ints, floats, or tuples (the lexicographic weights of
:mod:`repro.graphs.weights` are tuples); they only need to be totally
ordered and mutually comparable within one graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

Weight = Hashable  # totally ordered in practice (int, float, or tuple)
NodeId = int
Edge = Tuple[NodeId, NodeId]


def edge_key(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical (sorted) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


class WeightedGraph:
    """An undirected edge-weighted graph with per-endpoint port numbers.

    Nodes are integer identities.  Ports at each node are assigned in edge
    insertion order (0, 1, 2, ...) which makes them deterministic for a
    given construction sequence, mirroring the paper's assumption that the
    port numbering is arbitrary but fixed.
    """

    def __init__(self) -> None:
        self._adj: Dict[NodeId, Dict[NodeId, Weight]] = {}
        self._ports: Dict[NodeId, List[NodeId]] = {}
        self._port_of: Dict[NodeId, Dict[NodeId, int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, u: NodeId) -> None:
        """Add an isolated node (no-op if already present)."""
        if u not in self._adj:
            self._adj[u] = {}
            self._ports[u] = []
            self._port_of[u] = {}

    def add_edge(self, u: NodeId, v: NodeId, weight: Weight) -> None:
        """Add the undirected edge ``{u, v}`` with the given weight."""
        if u == v:
            raise GraphError(f"self-loop at node {u} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u]:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._port_of[u][v] = len(self._ports[u])
        self._ports[u].append(v)
        self._port_of[v][u] = len(self._ports[v])
        self._ports[v].append(u)

    def copy(self) -> "WeightedGraph":
        """Return a structural copy (same nodes, edges, weights, ports)."""
        g = WeightedGraph()
        for u in self.nodes():
            g.add_node(u)
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._ports = {u: list(ps) for u, ps in self._ports.items()}
        g._port_of = {u: dict(pm) for u, pm in self._port_of.items()}
        return g

    # ------------------------------------------------------------------
    # dynamic topology (churn)
    # ------------------------------------------------------------------
    def remove_node(self, u: NodeId) -> dict:
        """Remove ``u`` and its incident edges, returning a restore stub.

        Surviving neighbours keep their port numbers: the slot that led
        to ``u`` is tombstoned (set to ``None``) rather than compacted,
        because labels bake port numbers in and must stay valid for the
        nodes that did not crash.  The stub passed back records enough
        to rebuild ``u`` with its exact original ports on both ends via
        :meth:`restore_node`.
        """
        if u not in self._adj:
            raise GraphError(f"no node {u}")
        edges = []
        for v, w in self._adj[u].items():
            pu = self._port_of[u][v]
            pv = self._port_of[v].pop(u)
            self._ports[v][pv] = None
            edges.append((v, pu, pv, w))
        for v, _, _, _ in edges:
            del self._adj[v][u]
        index = list(self._adj).index(u)
        del self._adj[u]
        ports = len(self._ports.pop(u))
        del self._port_of[u]
        return {"node": u, "ports": ports, "edges": edges,
                "index": index}

    def restore_node(self, u: NodeId, stub: dict) -> None:
        """Re-add a node removed by :meth:`remove_node` from its stub,
        with every edge back at the exact original port on both ends."""
        if stub["node"] != u:
            raise GraphError(f"stub is for node {stub['node']}, not {u}")
        if u in self._adj:
            raise GraphError(f"node {u} is already present")
        for v, _pu, pv, _w in stub["edges"]:
            if v not in self._adj:
                raise GraphError(
                    f"cannot restore node {u}: neighbour {v} is absent")
            if self._ports[v][pv] is not None:
                raise GraphError(
                    f"cannot restore node {u}: port {pv} at {v} is taken")
        self._adj[u] = {}
        self._ports[u] = [None] * stub["ports"]
        self._port_of[u] = {}
        for v, pu, pv, w in stub["edges"]:
            self._adj[u][v] = w
            self._adj[v][u] = w
            self._ports[u][pu] = v
            self._port_of[u][v] = pu
            self._ports[v][pv] = u
            self._port_of[v][u] = pv
        index = stub.get("index")
        if index is not None and index < len(self._adj) - 1:
            # reinsert at the original position: node *order* is
            # semantic (daemon sweeps and scheduler iteration follow
            # ``nodes()``), so a crash + rejoin cycle must leave
            # ``topology_key()`` — hence the snapshot signature —
            # exactly where it started
            order = list(self._adj)
            order.remove(u)
            order.insert(index, u)
            self._adj = {k: self._adj[k] for k in order}
            self._ports = {k: self._ports[k] for k in order}
            self._port_of = {k: self._port_of[k] for k in order}

    def set_weight(self, u: NodeId, v: NodeId, weight: Weight) -> None:
        """Re-weight the existing edge ``{u, v}`` (both directions)."""
        if not self.has_edge(u, v):
            raise GraphError(f"no edge ({u}, {v})")
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def topology_key(self) -> tuple:
        """Canonical picklable structure of the full mutable topology:
        node insertion order, every port slot (tombstones included),
        and every weight.  Order is included deliberately — daemon
        sweeps and scheduler iteration follow ``nodes()`` — which is
        why :meth:`restore_node` reinserts at the recorded position: a
        crash + rejoin cycle keys equal to the original.  Two graphs
        behave identically for schedulers, contexts, and labels iff
        their keys are equal — snapshots hash this to refuse restoring
        churned state into a mismatched network."""
        return tuple(
            (u, tuple(None if v is None else (v, self._adj[u][v])
                      for v in self._ports[u]))
            for u in self._adj)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nodes(self) -> List[NodeId]:
        """All node identities, in insertion order."""
        return list(self._adj.keys())

    def has_node(self, u: NodeId) -> bool:
        return u in self._adj

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, u: NodeId) -> List[NodeId]:
        """Neighbours of ``u`` in port order (tombstoned slots of removed
        neighbours are skipped)."""
        return [v for v in self._ports[u] if v is not None]

    def weight(self, u: NodeId, v: NodeId) -> Weight:
        """Weight of edge ``{u, v}``; raises if absent."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"no edge ({u}, {v})") from None

    def degree(self, u: NodeId) -> int:
        return len(self._adj[u])

    def max_degree(self) -> int:
        """The maximum degree Delta (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def port(self, u: NodeId, v: NodeId) -> int:
        """Port number of edge ``{u, v}`` at endpoint ``u``."""
        return self._port_of[u][v]

    def neighbor_at_port(self, u: NodeId, port: int) -> Optional[NodeId]:
        """The neighbour of ``u`` reached through the given port (``None``
        for the tombstoned slot of a removed neighbour)."""
        return self._ports[u][port]

    def port_count(self, u: NodeId) -> int:
        """Number of port slots at ``u`` (tombstones included); equals
        ``degree(u)`` until a neighbour is removed."""
        return len(self._ports[u])

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, Weight]]:
        """Iterate each undirected edge once as ``(u, v, w)`` with u < v."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def edge_set(self) -> List[Edge]:
        """All edges as canonical pairs."""
        return [edge_key(u, v) for u, v, _ in self.edges()]

    def total_weight(self, edges: Iterable[Edge]) -> Weight:
        """Sum of weights over an iterable of edges (int/float weights)."""
        return sum(self.weight(u, v) for u, v in edges)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether the graph is connected (empty graph counts as connected)."""
        nodes = self.nodes()
        if not nodes:
            return True
        seen = {nodes[0]}
        queue = deque([nodes[0]])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return len(seen) == self.n

    def has_distinct_weights(self) -> bool:
        """Whether all edge weights are pairwise distinct."""
        weights = [w for _, _, w in self.edges()]
        return len(weights) == len(set(weights))

    def bfs_distances(self, source: NodeId) -> Dict[NodeId, int]:
        """Unweighted hop distances from ``source`` to reachable nodes."""
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def diameter(self) -> int:
        """Hop diameter (exact; O(n * (n + m)), fine at simulation scale)."""
        best = 0
        for u in self.nodes():
            dist = self.bfs_distances(u)
            if len(dist) != self.n:
                raise GraphError("diameter of a disconnected graph")
            best = max(best, max(dist.values(), default=0))
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(n={self.n}, m={self.m})"
