"""Classic GHS (Gallager–Humblet–Spira) — the O(n log n)-time baseline.

SYNC_MST (Section 4) is a simplification of GHS; the paper contrasts its
O(n) time against GHS's O(n log n).  This module runs a level-based GHS
at fragment granularity with the classic timing model: every fragment
operation (find-MOE wave, root transfer, merge) charges time proportional
to the fragment size, and fragments at level ``j`` only merge with
fragments at level ``>= j`` (absorb) or ``== j`` over a shared minimum
edge (merge, level ``j + 1``).

The purpose is the construction-time *shape* comparison of benchmark E4:
GHS grows like n log n, SYNC_MST like n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..graphs.weighted import Edge, GraphError, NodeId, WeightedGraph, edge_key


@dataclass
class GhsResult:
    """MST edge set plus the charged time units."""

    edges: Set[Edge]
    time: int
    levels_used: int


def run_ghs(graph: WeightedGraph) -> GhsResult:
    """Run level-based GHS; returns the MST and charged time.

    Time accounting: in each *pulse*, every fragment at the minimum level
    currently present performs one find/merge step, charging
    ``max(fragment sizes involved)`` time (the wave length); pulses of
    independent fragments overlap, so we charge the maximum, not the sum —
    the standard O(n log n) accounting for GHS.
    """
    if not graph.is_connected():
        raise GraphError("GHS requires a connected graph")
    if not graph.has_distinct_weights():
        raise GraphError("GHS requires distinct edge weights")

    comp: Dict[NodeId, int] = {v: i for i, v in enumerate(graph.nodes())}
    members: Dict[int, Set[NodeId]] = {
        i: {v} for i, v in enumerate(graph.nodes())}
    level: Dict[int, int] = {i: 0 for i in members}
    mst: Set[Edge] = set()
    time = 0
    max_level = 0

    while len(members) > 1:
        # every fragment finds its minimum outgoing edge (parallel waves):
        # charge the largest wave in this pulse.
        moe: Dict[int, Tuple] = {}
        for cid, nodes in members.items():
            best = None
            for u in nodes:
                for v in graph.neighbors(u):
                    if comp[v] == cid:
                        continue
                    w = graph.weight(u, v)
                    if best is None or w < best[0]:
                        best = (w, u, v)
            assert best is not None
            moe[cid] = best
        time += 2 * max(len(nodes) for nodes in members.values())

        # merging rules: same level + same edge -> merge (level+1);
        # lower level -> absorbed into the neighbour fragment.
        order = sorted(members, key=lambda c: (level[c], c))
        merged_into: Dict[int, int] = {}

        def find(cid: int) -> int:
            while cid in merged_into:
                cid = merged_into[cid]
            return cid

        for cid in order:
            cid = find(cid)
            if cid not in moe:
                continue
            w, u, v = moe[cid]
            other = find(comp[v])
            if other == cid:
                continue
            if level[other] > level[cid]:
                merged_into[cid] = other           # absorb (no level change)
            elif level[other] == level[cid]:
                ow, ou, ov = moe.get(other, (None, None, None))
                if ow is not None and edge_key(ou, ov) == edge_key(u, v):
                    merged_into[cid] = other       # symmetric merge
                    level[other] += 1
                    max_level = max(max_level, level[other])
                # else: wait for ``other`` to rise — next pulse

        # apply merges
        changed = False
        for cid in list(merged_into):
            target = find(cid)
            if cid == target or cid not in members:
                continue
            w, u, v = moe[cid]
            mst.add(edge_key(u, v))
            members[target] |= members.pop(cid)
            changed = True
        for cid, nodes in members.items():
            for nvar in nodes:
                comp[nvar] = cid
        if not changed:
            # deadlock of waiting chains cannot happen with distinct
            # weights: the minimum-weight MOE pair is always mutual.
            raise GraphError("GHS made no progress")  # pragma: no cover

    return GhsResult(edges=mst, time=time, levels_used=max_level)
