"""MST construction: SYNC_MST (Section 4, O(n) time / O(log n) bits),
the classic GHS baseline, and a register-level Boruvka protocol that runs
on the simulator."""

from .sync_mst import (SYNC_MST_REGISTER_SCHEMA, PhaseRecord, SyncMstResult,
                       run_sync_mst)
from .ghs_classic import GhsResult, run_ghs
from .boruvka_protocol import BoruvkaProtocol, run_boruvka_protocol

__all__ = [
    "SYNC_MST_REGISTER_SCHEMA", "PhaseRecord", "SyncMstResult", "run_sync_mst",
    "GhsResult", "run_ghs",
    "BoruvkaProtocol", "run_boruvka_protocol",
]
