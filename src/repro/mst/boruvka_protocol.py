"""A genuinely per-node synchronous MST protocol on the simulator.

SYNC_MST itself is executed by the phase-exact engine of
:mod:`repro.mst.sync_mst`; this module complements it with a *register
level* MST construction that runs under
:class:`repro.sim.SynchronousScheduler` — every decision is taken by a
node reading only its neighbours' registers.  It follows the Boruvka
fragment-merging pattern of GHS/SYNC_MST, synchronized by round counting:

* each *super-phase* lasts exactly ``2 * horizon`` rounds (``horizon`` is
  an upper bound on n, all nodes know it);
* rounds ``0 .. horizon``: each node floods the minimum
  ``(weight, u, v)`` outgoing candidate of its component along chosen
  tree edges (component = nodes sharing ``comp`` after previous phases);
* rounds ``horizon .. 2*horizon``: the endpoints of the agreed minimum
  outgoing edge adopt it; component identifiers re-flood as
  ``min(comp ids)``.

This costs O(n log n) rounds — it is *not* the paper's O(n) algorithm; it
exists to validate the simulator substrate end-to-end with a real
distributed MST protocol and serves as a protocol-level baseline.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..graphs.weighted import Edge, NodeId, WeightedGraph, edge_key
from ..sim.network import Network, NodeContext, Protocol
from ..sim.schedulers import SynchronousScheduler

_INF = None  # encoded absence of a candidate


class BoruvkaProtocol(Protocol):
    """Register-level synchronous Boruvka.

    Registers:

    * ``comp``: current component identifier (min node ID of component),
    * ``chosen``: tuple of ports selected as MST edges at this node,
    * ``best``: the component's best-known minimum outgoing edge
      ``(weight, inside, outside)`` during the flood,
    * ``clock``: round counter mod the super-phase length,
    * ``done``: set when the component spans the graph (stable phases).
    """

    def __init__(self, horizon: int) -> None:
        if horizon < 1:
            raise ValueError("horizon must be a positive bound on n")
        self.horizon = horizon

    # ------------------------------------------------------------------
    def init_node(self, ctx: NodeContext) -> None:
        ctx.set("comp", ctx.node)
        ctx.set("chosen", ())
        ctx.set("best", _INF)
        ctx.set("clock", 0)
        ctx.set("done", False)

    # ------------------------------------------------------------------
    def _tree_neighbors(self, ctx: NodeContext):
        """Neighbours joined by already-chosen edges (either endpoint)."""
        out = []
        for v in ctx.neighbors:
            if ctx.port(v) in ctx.get("chosen"):
                out.append(v)
            elif ctx.node in self._remote_chosen(ctx, v):
                out.append(v)
        return out

    @staticmethod
    def _remote_chosen(ctx: NodeContext, v: NodeId):
        ports = ctx.read(v, "chosen", ())
        graph = ctx.network.graph
        return {graph.neighbor_at_port(v, p) for p in ports}

    def _own_candidate(self, ctx: NodeContext):
        """Node-local minimum outgoing candidate (weight, inside, outside)."""
        comp = ctx.get("comp")
        best = None
        for v in ctx.neighbors:
            if ctx.read(v, "comp") == comp:
                continue
            w = ctx.weight(v)
            cand = (w, ctx.node, v)
            if best is None or cand < best:
                best = cand
        return best

    # ------------------------------------------------------------------
    def step(self, ctx: NodeContext) -> None:
        clock = ctx.get("clock")
        half = self.horizon
        tree_nbrs = self._tree_neighbors(ctx)

        if clock == 0:
            ctx.set("best", self._own_candidate(ctx))
        elif clock < half:
            # flood-minimize the candidate along tree edges
            best = ctx.get("best")
            for v in tree_nbrs:
                other = ctx.read(v, "best")
                if other is not None and (best is None or tuple(other) < best):
                    best = tuple(other)
            ctx.set("best", best)
        elif clock == half:
            best = ctx.get("best")
            if best is None:
                ctx.set("done", True)
            else:
                _w, u, v = best
                if ctx.node == u:
                    port = ctx.port(v)
                    if port not in ctx.get("chosen"):
                        ctx.set("chosen", ctx.get("chosen") + (port,))
        else:
            # flood-minimize component identifiers over the (new) tree edges
            comp = ctx.get("comp")
            for v in tree_nbrs:
                comp = min(comp, ctx.read(v, "comp", v))
            ctx.set("comp", comp)

        ctx.set("clock", (clock + 1) % (2 * half))


def run_boruvka_protocol(graph: WeightedGraph,
                         max_rounds: Optional[int] = None):
    """Run the protocol to completion; returns (edge set, rounds used)."""
    horizon = graph.n + 1
    network = Network(graph)
    protocol = BoruvkaProtocol(horizon)
    scheduler = SynchronousScheduler(network, protocol)
    if max_rounds is None:
        # log2(n) phases of 2*horizon rounds, generously rounded up
        phases = max(1, graph.n.bit_length() + 1)
        max_rounds = 2 * horizon * (phases + 1)

    def finished(net: Network) -> bool:
        return all(net.registers[v].get("done") for v in graph.nodes())

    rounds = scheduler.run(max_rounds, stop_when=finished)
    edges = set()
    for v in graph.nodes():
        for port in network.registers[v].get("chosen", ()):
            edges.add(edge_key(v, graph.neighbor_at_port(v, port)))
    return edges, rounds
