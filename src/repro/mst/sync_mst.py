"""SYNC_MST — the synchronous O(n)-time, O(log n)-bit MST construction
of Section 4.

The algorithm proceeds in phases; phase ``i`` starts at round ``11 * 2^i``
and consists of:

* **Count_Size** (rounds ``11*2^i .. (11+4)*2^i``): every fragment root
  counts its fragment with a time-to-live ``2^(i+1) - 1`` wave.  The root
  is *active* iff ``|F| <= 2^(i+1) - 1``; otherwise it bumps its level to
  ``i + 1`` and sits the phase out.
* **Find_Min_Out_Edge** (rounds ``(11+4)*2^i .. (11+8)*2^i``): active
  fragments locate their minimum outgoing edge by a Wave&Echo; all of a
  node's incident edges are tested simultaneously (no "reject"s — the
  paper does not economize messages).
* **Merging** (rounds ``(11+8)*2^i .. (11+11)*2^i - 1``): the fragment is
  re-rooted at the inside endpoint ``w`` of its candidate ``(w, x)``; then
  a handshake: if ``w`` is the pivot of ``x``'s fragment (i.e. the two
  fragments chose the same edge) and ``ID(x) < ID(w)``, then ``x`` becomes
  the child of ``w``; in every other case ``w`` hooks upon ``x``.

This module executes the algorithm with a *phase-exact engine*: fragments
are the unit of simulation and each phase charges the exact round window
above, so decisions (fragments, hierarchy, candidate edges, final
orientation) and the round count match a per-node execution.  Lemma 4.1
(level-``i`` fragments have ``2^i <= |F| < 2^(i+1)``) and Theorem 4.4
(O(n) rounds) are asserted by the test suite against this engine.

The per-node memory cost is O(log n) bits (Observation 4.3): fragment
level, root-ID estimate, stage flags, candidate edge, and the echo child
pointer — :data:`SYNC_MST_REGISTER_SCHEMA` enumerates them so benchmarks
can account the memory exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..graphs.spanning import RootedTree
from ..graphs.weighted import GraphError, NodeId, WeightedGraph
from ..hierarchy.fragments import Fragment, Hierarchy

#: the registers a per-node execution keeps (all O(log n) bits); used by
#: the memory benchmark to account SYNC_MST's footprint.
SYNC_MST_REGISTER_SCHEMA = (
    "parent_port",      # component c(v)
    "level",            # fragment level estimate
    "root_id",          # fragment root ID estimate
    "stage",            # counting / searching / merging
    "wave_state",       # wave vs echo
    "echo_value",       # candidate edge (weight, port) passed upward
    "candidate_child",  # port of the child that reported the candidate
)


@dataclass
class _Component:
    """A connected component of the evolving forest (engine state)."""

    root: NodeId
    nodes: Set[NodeId]
    level: int = 0


@dataclass
class PhaseRecord:
    """Trace of one phase (used by tests and the construction benchmark)."""

    phase: int
    start_round: int
    end_round: int
    active_fragments: List[FrozenSet[NodeId]]
    inactive_roots: List[NodeId]


@dataclass
class SyncMstResult:
    """Output of SYNC_MST: the MST, its hierarchy, and timing."""

    tree: RootedTree
    hierarchy: Hierarchy
    rounds: int
    phases: int
    trace: List[PhaseRecord] = field(default_factory=list)


def _minimum_outgoing(graph: WeightedGraph, comp: _Component,
                      node_comp: Dict[NodeId, _Component]):
    """(w, x, weight): minimum-weight edge leaving the component."""
    best = None
    for u in comp.nodes:
        for v in graph.neighbors(u):
            if node_comp[v] is comp:
                continue
            w = graph.weight(u, v)
            if best is None or w < best[2]:
                best = (u, v, w)
    return best


def run_sync_mst(graph: WeightedGraph) -> SyncMstResult:
    """Execute SYNC_MST on ``graph`` (connected, distinct weights).

    Returns the constructed MST (rooted as the execution roots it), the
    hierarchy of active fragments H_M with its candidate function chi_M,
    the exact ideal-time round count, and a per-phase trace.
    """
    if graph.n == 0:
        raise GraphError("empty graph")
    if not graph.is_connected():
        raise GraphError("SYNC_MST requires a connected graph")
    if not graph.has_distinct_weights():
        raise GraphError("SYNC_MST requires distinct edge weights "
                         "(apply repro.graphs.weights first)")

    parent: Dict[NodeId, Optional[NodeId]] = {v: None for v in graph.nodes()}
    components: List[_Component] = [
        _Component(root=v, nodes={v}) for v in graph.nodes()
    ]
    node_comp: Dict[NodeId, _Component] = {
        v: c for c, v in zip(components, graph.nodes())
    }

    recorded: List[Tuple[FrozenSet[NodeId], int,
                         Optional[Tuple[NodeId, NodeId]], Optional[object]]] = []
    trace: List[PhaseRecord] = []
    phase = 0
    final_root: Optional[NodeId] = None
    total_rounds = 0

    def reroot(comp: _Component, new_root: NodeId) -> None:
        """Reverse parent pointers along the path new_root -> old root."""
        path = [new_root]
        while path[-1] != comp.root:
            nxt = parent[path[-1]]
            assert nxt is not None, "broken component orientation"
            path.append(nxt)
        for child, par in zip(path[1:], path):
            parent[child] = par
        parent[new_root] = None
        comp.root = new_root

    while True:
        phase_start = 11 * (2 ** phase)
        phase_end = 22 * (2 ** phase)
        size_bound = 2 ** (phase + 1) - 1

        for comp in components:
            comp.level = phase

        active = [c for c in components if len(c.nodes) <= size_bound]
        inactive = [c for c in components if len(c.nodes) > size_bound]
        for comp in inactive:
            comp.level = phase + 1

        trace.append(PhaseRecord(
            phase=phase,
            start_round=phase_start,
            end_round=phase_end,
            active_fragments=[frozenset(c.nodes) for c in active],
            inactive_roots=[c.root for c in inactive],
        ))

        # Termination: an active fragment spans the graph — detected at the
        # end of Count_Size, round (11+4)*2^phase.
        spanning = [c for c in active if len(c.nodes) == graph.n]
        if spanning:
            comp = spanning[0]
            recorded.append((frozenset(comp.nodes), phase, None, None))
            final_root = comp.root
            total_rounds = (11 + 4) * (2 ** phase)
            break

        # Find_Min_Out_Edge for active fragments; record them into H_M.
        candidates: Dict[int, Tuple[NodeId, NodeId, object]] = {}
        for comp in active:
            moe = _minimum_outgoing(graph, comp, node_comp)
            assert moe is not None, "non-spanning fragment with no outgoing edge"
            candidates[id(comp)] = moe
            recorded.append((frozenset(comp.nodes), phase,
                             (moe[0], moe[1]), moe[2]))

        # Merging: re-root at the inside endpoint, then handshake/hook.
        for comp in active:
            w, _x, _wt = candidates[id(comp)]
            reroot(comp, w)
        hooked: Dict[int, _Component] = {}
        for comp in active:
            w, x, _wt = candidates[id(comp)]
            target = node_comp[x]
            mutual = (id(target) in candidates
                      and candidates[id(target)][0] == x
                      and candidates[id(target)][1] == w)
            if mutual and x < w:
                # w is the pivot of x's fragment and ID(x) < ID(w):
                # x becomes the child of w (handled from x's side below).
                continue
            parent[w] = x
            hooked[id(comp)] = target

        # Contract hooking chains into their sink components.
        def sink_of(comp: _Component) -> _Component:
            seen = set()
            while id(comp) in hooked:
                if id(comp) in seen:  # pragma: no cover - impossible by weights
                    raise GraphError("hooking cycle")
                seen.add(id(comp))
                comp = hooked[id(comp)]
            return comp

        merged: Dict[int, _Component] = {}
        new_components: List[_Component] = []
        for comp in components:
            s = sink_of(comp)
            if id(s) not in merged:
                merged[id(s)] = _Component(root=s.root, nodes=set(s.nodes),
                                           level=s.level)
                new_components.append(merged[id(s)])
        for comp in components:
            s = merged[id(sink_of(comp))]
            if comp.nodes is not s.nodes:
                s.nodes |= comp.nodes
        components = new_components
        for comp in components:
            for v in comp.nodes:
                node_comp[v] = comp

        phase += 1
        if phase > graph.n + 2:  # pragma: no cover - safety net
            raise GraphError("SYNC_MST failed to terminate")

    assert final_root is not None
    tree = RootedTree(graph, final_root, parent)

    fragments = []
    for nodes, level, cand, weight in recorded:
        apex = min(nodes, key=lambda v: tree.depth[v])
        fragments.append(Fragment(root=apex, level=level, nodes=nodes,
                                  candidate_edge=cand, candidate_weight=weight))
    hierarchy = Hierarchy(tree, fragments)
    return SyncMstResult(tree=tree, hierarchy=hierarchy, rounds=total_rounds,
                         phases=phase + 1, trace=trace)
