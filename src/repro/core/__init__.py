"""High-level facade: the paper's primary contribution in one namespace.

``repro.core`` re-exports the handful of entry points a downstream user
needs — construct an MST, label it, verify it, stabilize it — without
navigating the subsystem packages:

>>> from repro.core import (construct_mst, label_instance, verify,
...                         self_stabilizing_mst)
>>> from repro.graphs import generators
>>> g = generators.random_connected_graph(30, 50, seed=1)
>>> tree = construct_mst(g).tree
>>> marker = label_instance(g)
>>> result = verify(g, marker.labels, rounds=300)
>>> result.detected
False

Experiments at scale go through the campaign engine (also re-exported
here): declare a scenario grid once, run it in parallel, aggregate —
instead of writing another bespoke harness script:

>>> from repro.core import axis, grid, run_campaign
>>> specs = grid(topologies=[axis("random", n=16, extra=12)],
...              faults=[axis("none"), axis("scramble", count=1)],
...              schedules=[axis("sync"), axis("permutation")], seed=3)
>>> campaign = run_campaign(specs, workers=1)
>>> campaign.violations()
[]
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..engine import (Axis, CampaignResult, CampaignRunner, ScenarioResult,
                      ScenarioSpec, axis, grid, run_campaign, run_scenario)
from ..graphs.weighted import NodeId, WeightedGraph
from ..mst.sync_mst import SyncMstResult, run_sync_mst
from ..selfstab.sst_mst import SelfStabMstResult, run_self_stabilizing_mst
from ..verification.detection import DetectionResult, run_reject_instance
from ..verification.marker import MarkerOutput, run_marker
from ..verification.verifier import MstVerifierProtocol


def construct_mst(graph: WeightedGraph) -> SyncMstResult:
    """Run SYNC_MST (Section 4): O(n) rounds, O(log n) bits per node."""
    return run_sync_mst(graph)


def label_instance(graph: WeightedGraph) -> MarkerOutput:
    """Run the full marker (Sections 5-6): all proof-label registers."""
    return run_marker(graph)


def verify(graph: WeightedGraph, labels: Dict[NodeId, Dict[str, Any]],
           rounds: int, synchronous: bool = True) -> DetectionResult:
    """Run the self-stabilizing verifier (Theorem 8.5) on given labels.

    ``detected`` is False exactly when the labels describe this graph's
    MST consistently (completeness); any non-MST or corrupted labeling is
    rejected within the detection-time bounds (soundness).
    """
    return run_reject_instance(graph, labels, synchronous=synchronous,
                               max_rounds=rounds)


def self_stabilizing_mst(graph: WeightedGraph,
                         synchronous: bool = True,
                         initial_state: Optional[Dict[NodeId, Dict[str, Any]]] = None
                         ) -> SelfStabMstResult:
    """Run the self-stabilizing MST construction (Theorem 10.2)."""
    return run_self_stabilizing_mst(graph, synchronous=synchronous,
                                    initial_state=initial_state)


__all__ = [
    "construct_mst", "label_instance", "verify", "self_stabilizing_mst",
    "MstVerifierProtocol", "SyncMstResult", "MarkerOutput",
    "DetectionResult", "SelfStabMstResult",
    # campaign engine facade
    "Axis", "ScenarioSpec", "ScenarioResult", "CampaignResult",
    "CampaignRunner", "axis", "grid", "run_campaign", "run_scenario",
]
