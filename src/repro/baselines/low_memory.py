"""A low-memory Omega(n |E|)-time self-stabilizing MST baseline.

Models the pre-KKM state of the art for O(log n)-bit algorithms
(Higham & Liang [48]; Blin et al. [18]): the tree is maintained with
O(log n) bits per node, and minimality is restored by the *cycle rule* —
every non-tree edge is tested against the heaviest edge of its tree
cycle, one at a time, each test costing a tree-path traversal.  A full
pass over the edges costs Theta(sum of cycle lengths) = Theta(n |E|) in
the worst case, which is the time bound Table 1 reports for [48]/[18].

The engine below executes the edge-swap repair with that exact charging
and reports the rounds, so benchmark T1 can regenerate the comparison
row.  (The distributed details of [48] differ; the *shape* — quadratic
growth with the edge count times n — is what this baseline preserves,
per the substitution rules in DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..graphs.mst_reference import kruskal_mst
from ..graphs.spanning import RootedTree
from ..graphs.weighted import Edge, GraphError, WeightedGraph, edge_key


@dataclass
class LowMemoryResult:
    edges: Set[Edge]
    rounds: int
    swaps: int
    passes: int
    memory_bits: int


def _bfs_tree_edges(graph: WeightedGraph) -> Set[Edge]:
    """An arbitrary (non-minimum) spanning tree: BFS from the first node."""
    root = graph.nodes()[0]
    parent = {root: None}
    order = [root]
    for u in order:
        for v in graph.neighbors(u):
            if v not in parent:
                parent[v] = u
                order.append(v)
    if len(parent) != graph.n:
        raise GraphError("graph is not connected")
    return {edge_key(v, p) for v, p in parent.items() if p is not None}


def run_low_memory_mst(graph: WeightedGraph,
                       initial: Optional[Set[Edge]] = None) -> LowMemoryResult:
    """Stabilize to the MST by repeated cycle-rule swaps.

    Round charging: building/repairing the initial tree costs O(n);
    testing one non-tree edge costs its tree-cycle length (the distributed
    walk); a swap costs an additional O(n) re-orientation.
    """
    edges = set(initial) if initial is not None else _bfs_tree_edges(graph)
    rounds = graph.n            # initial tree (re)construction
    swaps = 0
    passes = 0
    root = graph.nodes()[0]

    improved = True
    while improved:
        improved = False
        passes += 1
        tree = RootedTree.from_edges(graph, edges, root)
        for u, v, w in sorted(graph.edges(), key=lambda e: (e[2], e[:2])):
            e = edge_key(u, v)
            if e in edges:
                continue
            path = tree.tree_path(u, v)
            rounds += len(path)                      # the cycle test walk
            heaviest = max(zip(path, path[1:]),
                           key=lambda ab: graph.weight(ab[0], ab[1]))
            if graph.weight(*heaviest) > w:
                edges.remove(edge_key(*heaviest))
                edges.add(e)
                rounds += graph.n                    # re-orientation
                swaps += 1
                improved = True
                tree = RootedTree.from_edges(graph, edges, root)
    memory_bits = 2 * max(1, graph.n - 1).bit_length() + 8
    result = LowMemoryResult(edges=edges, rounds=rounds, swaps=swaps,
                             passes=passes, memory_bits=memory_bits)
    assert result.edges == kruskal_mst(graph), "cycle rule must reach the MST"
    return result
