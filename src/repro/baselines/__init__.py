"""Comparison baselines: the O(log^2 n) 1-round PLS [54/55], verification
by recomputation [15], the low-memory cycle-rule algorithm [48/18], and
the asymptotic models behind Table 1."""

from .pls_sqlog import (REG_ALL_PIECES, SqLogPlsProtocol, sqlog_check,
                        sqlog_labels, sqlog_marker_output)
from .recompute import recompute_checker_metrics, recompute_detect
from .low_memory import LowMemoryResult, run_low_memory_mst
from .table1_models import HISTORICAL_ROWS, Table1Row, evaluate_rows

__all__ = [
    "REG_ALL_PIECES", "SqLogPlsProtocol", "sqlog_check", "sqlog_labels",
    "sqlog_marker_output",
    "recompute_checker_metrics", "recompute_detect",
    "LowMemoryResult", "run_low_memory_mst",
    "HISTORICAL_ROWS", "Table1Row", "evaluate_rows",
]
