"""Asymptotic models for the historical rows of Table 1.

The older algorithms (Katz–Perry compositions, Gupta–Srimani, Blin et
al. 2009) are not reconstructible at full fidelity; Table 1 reports their
asymptotic space/time, so benchmark T1 evaluates those formulas on the
same (n, |E|) workloads next to the *measured* rows (this paper, the
O(log^2 n) 1-PLS, the cycle-rule baseline, recompute-checking).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List


@dataclass(frozen=True)
class Table1Row:
    """One algorithm row: space (bits/node) and time (rounds) models."""

    name: str
    space_bits: Callable[[int, int], float]
    time_rounds: Callable[[int, int], float]
    asynchronous: bool
    comment: str = ""
    measured: bool = False


def _lg(n: int) -> float:
    return max(1.0, math.log2(max(2, n)))


#: the historical rows of Table 1, as asymptotic models (unit constants).
HISTORICAL_ROWS: List[Table1Row] = [
    Table1Row("[52]+[3]+[9] (Katz-Perry + leader election)",
              lambda n, m: m * n,
              lambda n, m: n * n,
              asynchronous=True,
              comment="snapshot-based transformer"),
    Table1Row("[52]+[9]+[10] (bounded-memory synchronizer)",
              lambda n, m: m * n * _lg(n),
              lambda n, m: min(n, _lg(n) * n ** 0.5 + _lg(n) * n / 4) + n,
              asynchronous=True,
              comment="O(min{D log n, n}) time"),
    Table1Row("[47] Gupta-Srimani",
              lambda n, m: n * _lg(n),
              lambda n, m: n,
              asynchronous=False,
              comment="needs a bound on n; O(n^2) asynchronously"),
    Table1Row("[48] Higham-Liang",
              lambda n, m: _lg(n),
              lambda n, m: n * m,
              asynchronous=True,
              comment="assumes a diameter bound"),
    Table1Row("[18] Blin et al. (loop-free)",
              lambda n, m: _lg(n),
              lambda n, m: n * m,
              asynchronous=True,
              comment="assumes a leader"),
    Table1Row("[17] Blin-Dolev-Potop-Butucaru-Rovedakis",
              lambda n, m: _lg(n) ** 2,
              lambda n, m: n * n,
              asynchronous=True),
    Table1Row("Current paper (KKM)",
              lambda n, m: _lg(n),
              lambda n, m: n,
              asynchronous=True,
              comment="O(log n) bits, O(n) time",
              measured=True),
]


def evaluate_rows(n: int, m: int) -> List[Dict[str, object]]:
    """Evaluate every historical row at one workload size."""
    return [
        {
            "name": row.name,
            "space_bits": row.space_bits(n, m),
            "time_rounds": row.time_rounds(n, m),
            "asynchronous": row.asynchronous,
            "comment": row.comment,
        }
        for row in HISTORICAL_ROWS
    ]
