"""Verification by recomputation — the first checker of [15].

A deterministic construction algorithm is its own checker: re-run it and
compare the fresh output with the stored one; any mismatching node is a
detecting node.  With SYNC_MST as the construction this costs Theta(n)
detection time (against the paper's O(log^2 n)) at the same O(log n)
memory — the trade-off benchmark E6 quantifies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graphs.weighted import NodeId, WeightedGraph
from ..mst.sync_mst import run_sync_mst
from ..sim.network import Network


def recompute_detect(network: Network) -> Tuple[int, Dict[NodeId, str]]:
    """Re-run SYNC_MST and compare against stored components.

    Returns (charged detection rounds, {detecting node: reason}).  The
    charged time is the construction's round count: the checker cannot
    answer earlier than the recomputation finishes.
    """
    graph = network.graph
    result = run_sync_mst(graph)
    alarms: Dict[NodeId, str] = {}
    for v in graph.nodes():
        stored = network.registers[v].get("pid")
        fresh = result.tree.parent[v]
        # orientation may legitimately differ; compare undirected edges
        stored_edge = frozenset((v, stored)) if isinstance(stored, int) else None
        fresh_edge = frozenset((v, fresh)) if fresh is not None else None
        stored_ok = (stored_edge is None or
                     (isinstance(stored, int) and graph.has_edge(v, stored)
                      and stored_edge in {frozenset(e) for e in _tree_pairs(result)}))
        if not stored_ok or (stored_edge is None and fresh_edge is not None
                             and not _is_root_consistent(network, v)):
            alarms[v] = "recompute: stored component disagrees with MST"
    return result.rounds, alarms


def _tree_pairs(result) -> List[Tuple[NodeId, NodeId]]:
    return [(a, b) for (a, b) in result.tree.edge_set()]


def _is_root_consistent(network: Network, v: NodeId) -> bool:
    # a node with no parent pointer must be the unique claimed root
    return network.registers[v].get("tid") == v


def recompute_checker_metrics(graph: WeightedGraph) -> Dict[str, int]:
    """Detection time and memory of the recompute checker on this graph."""
    result = run_sync_mst(graph)
    # memory: SYNC_MST registers, all O(log n) — dominated by two IDs,
    # the level, and the candidate edge (weight, port).
    bits = 2 * max(1, graph.n - 1).bit_length() + 16
    return {
        "detection_rounds": result.rounds,
        "memory_bits": bits,
        "construction_rounds": result.rounds,
    }
