"""The O(log^2 n)-bit, 1-round proof labeling scheme for MST [54, 55].

The scheme the paper improves upon: every node stores the piece I(F) of
*every* fragment containing it — Theta(log n) pieces of Theta(log n) bits
— so all comparisons run against the neighbours' labels directly and
verification completes in a single round.  Detection time 1, detection
distance <= 1, memory Theta(log^2 n): the opposite end of the
memory/time trade-off from the train-based scheme.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..graphs.weighted import NodeId, WeightedGraph
from ..hierarchy.fragments import Hierarchy
from ..labels import registers as R
from ..labels.strings import ENDP_DOWN, ENDP_UP, compute_node_strings, levels_mask
from ..labels.wellforming import (check_ell, check_endp_parents,
                                  check_roots_string, check_size,
                                  check_spanning_tree, sorted_levels)
from ..mst.sync_mst import run_sync_mst
from ..sim.bulk import drive_batch
from ..sim.network import NodeContext, Protocol
from ..verification.marker import MarkerOutput

REG_ALL_PIECES = "allpc"   # tuple of (root, level, weight), one per level


def sqlog_labels(graph: WeightedGraph,
                 hierarchy: Optional[Hierarchy] = None) -> Dict[NodeId, Dict[str, Any]]:
    """Marker: base labels plus the full per-node piece table."""
    if hierarchy is None:
        hierarchy = run_sync_mst(graph).hierarchy
    tree = hierarchy.tree
    strings = compute_node_strings(hierarchy)
    sizes = tree.subtree_sizes()
    labels: Dict[NodeId, Dict[str, Any]] = {}
    for v in graph.nodes():
        parent = tree.parent[v]
        s = strings[v]
        pieces = tuple(
            (f.root, f.level, f.candidate_weight)
            for f in hierarchy.fragments_of(v)
        )
        labels[v] = {
            R.REG_PARENT_ID: parent,
            R.REG_PARENT_PORT: None if parent is None else graph.port(v, parent),
            R.REG_TID: tree.root,
            R.REG_DIST: tree.depth[v],
            R.REG_N: graph.n,
            R.REG_SUBTREE: sizes[v],
            R.REG_ELL: hierarchy.height,
            R.REG_ROOTS: s.roots,
            R.REG_ENDP: s.endp,
            R.REG_PARENTS: s.parents,
            R.REG_ORENDP: s.orendp,
            R.REG_JMASK: levels_mask(s.roots),
            REG_ALL_PIECES: pieces,
        }
    return labels


def _piece_at_level(pieces: Any, level: int) -> Optional[Tuple]:
    if not isinstance(pieces, tuple):
        return None
    for pc in pieces:
        if isinstance(pc, tuple) and len(pc) == 3 and pc[1] == level:
            return pc
    return None


def sqlog_check(view) -> List[str]:
    """The complete 1-round verification (all comparisons local)."""
    bad: List[str] = []
    for check in (check_spanning_tree, check_size, check_ell,
                  check_roots_string, check_endp_parents):
        bad.extend(check(view))

    jmask = view.get(R.REG_JMASK)
    roots = view.get(R.REG_ROOTS)
    endp = view.get(R.REG_ENDP)
    pieces = view.get(REG_ALL_PIECES)
    if not isinstance(jmask, int) or not isinstance(roots, str) \
            or not isinstance(endp, str):
        return bad or ["sqlog: malformed base labels"]
    levels = sorted_levels(jmask)
    if not isinstance(pieces, tuple) or \
            sorted(pc[1] for pc in pieces
                   if isinstance(pc, tuple) and len(pc) == 3) != levels:
        bad.append("sqlog: piece table does not match J(v)")
        return bad

    expected = 0
    for j, c in enumerate(roots):
        if c != "*":
            expected |= 1 << j
    if jmask != expected:
        bad.append("sqlog: J-mask differs from the Roots string")

    for level in levels:
        mine = _piece_at_level(pieces, level)
        assert mine is not None
        if level < len(roots) and roots[level] == "1" and mine[0] != view.node:
            bad.append("sqlog: fragment root id mismatch")
        # candidate endpoint: C1 weight half
        u0 = None
        if level < len(endp) and endp[level] == ENDP_UP:
            pid = view.get(R.REG_PARENT_ID)
            u0 = pid if pid in view.neighbors else None
        elif level < len(endp) and endp[level] == ENDP_DOWN:
            for c in view.neighbors:
                if view.read(c, R.REG_PARENT_ID) != view.node:
                    continue
                cp = view.read(c, R.REG_PARENTS)
                if isinstance(cp, str) and level < len(cp) and cp[level] == "1":
                    u0 = c
                    break
        if u0 is not None and mine[2] != view.weight(u0):
            bad.append("sqlog C1: claimed minimum differs from the "
                       "candidate weight")
        for u in view.neighbors:
            other = _piece_at_level(view.read(u, REG_ALL_PIECES), level)
            same = other is not None and other[0] == mine[0]
            if same:
                if tuple(other) != tuple(mine):
                    bad.append("sqlog AGREE: same fragment, different piece")
                if u == u0:
                    bad.append("sqlog C1: candidate edge is internal")
            else:
                w_hat = mine[2]
                if w_hat is None:
                    bad.append("sqlog C2: whole tree has an outgoing edge")
                    continue
                try:
                    lighter = view.weight(u) < w_hat
                except TypeError:
                    bad.append("sqlog C2: incomparable weights")
                    continue
                if lighter:
                    bad.append("sqlog C2: outgoing edge lighter than the "
                               "claimed minimum")
    return bad


class SqLogPlsProtocol(Protocol):
    """The 1-round verifier as a simulator protocol (detection time 1).

    The checks are written against the storage-agnostic name-based view
    API, but declaring a schema still pays: the network's snapshots
    become slot-list (or whole-column) copies and alarm polling a slot
    load, the Theta(log^2 n)-bit piece tables intern into the columnar
    pool (one shared tuple per distinct table instead of one per node
    copy), and the dirty-aware schedulers can skip re-checking quiescent
    (accepting) nodes — under the locality-batching daemon a whole
    settled neighbourhood skips per batch."""

    def register_schema(self):
        from ..sim.registers import ALARM, RegisterSchema
        schema = RegisterSchema()
        schema.declare(ALARM, "opaque", None)
        R.declare_label_registers(schema)
        schema.declare(REG_ALL_PIECES, "tuple", None, stable=True)
        return schema

    def bind_registers(self, compiled) -> None:
        # the whole check is a pure function of the closed
        # neighbourhood's labels: under register files it reruns only
        # when the stable sentinel moves
        self._slot_bound = compiled is not None
        self._check_cache = {}

    def init_node(self, ctx: NodeContext) -> None:
        if not hasattr(self, "_check_cache"):
            self.bind_registers(None)
        ctx.set("alarm", None)

    def step(self, ctx: NodeContext) -> None:
        if getattr(self, "_slot_bound", False):
            sentinel = ctx.stable_sentinel()
            ent = self._check_cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                reasons = ent[1]
            else:
                reasons = sqlog_check(ctx)
                self._check_cache[ctx.node] = (sentinel, reasons)
        else:
            reasons = sqlog_check(ctx)
        if reasons:
            ctx.alarm(reasons[0])

    #: conflict-free asynchronous batches may route here (the body is a
    #: read-only verdict-cache pass, valid under any interleaving)
    bulk_conflict_free = True
    #: coalesced batches too: the pass below replays ``boundary`` at
    #: the original batch boundaries (and the dict fallback delegates
    #: to the segment-aware generic driver)
    bulk_segments = True

    def bulk_step(self, batch) -> None:
        """Bulk-activation sweep: the whole step is a static verdict
        check, so a batch is one pass over the sentinel-keyed verdict
        cache with the dispatch hoisted — an accepting batch performs
        no writes at all, which is what lets the schedulers'
        quiescence/skip machinery retire it wholesale.  The pass drives
        ``gate``/``after`` strictly interleaved per activation (the
        always-valid contract), so callback-gated batches — including
        conflict-free asynchronous ones — take the same cached loop;
        only undeclared (dict) storage falls back to the generic
        driver."""
        if not getattr(self, "_slot_bound", False):
            drive_batch(self.step, batch)
            return
        gate = batch.gate
        after = batch.after
        cache = self._check_cache
        cache_get = cache.get
        segments = batch.segments
        boundary = batch.boundary
        seg_ends = []
        if segments is not None:
            k = 0
            for seg_len in segments:
                k += seg_len
                seg_ends.append(k)
        seg = 0
        for k, ctx in enumerate(batch.contexts):
            stepped = gate is None or gate(k, ctx)
            if stepped:
                sentinel = ctx.stable_sentinel()
                ent = cache_get(ctx.node)
                if ent is not None and ent[0] == sentinel:
                    reasons = ent[1]
                else:
                    reasons = sqlog_check(ctx)
                    cache[ctx.node] = (sentinel, reasons)
                if reasons:
                    ctx.alarm(reasons[0])
            if after is not None and after(k, ctx, stepped):
                return
            while seg < len(seg_ends) and k + 1 == seg_ends[seg]:
                if boundary is not None and boundary(seg):
                    return
                seg += 1


def sqlog_marker_output(graph: WeightedGraph):
    """(labels, construction_rounds) for the transformer's checker slot."""
    result = run_sync_mst(graph)
    labels = sqlog_labels(graph, result.hierarchy)
    return labels, result.rounds + 2 * (result.tree.height() + 1)
