"""The self-stabilizing MST verifier (Theorem 8.5) as one protocol.

Per activation, every node:

1. runs the 1-round static checks (Example SP/NumK, RS0–RS5, EPS0–EPS5,
   the partition fields) — these detect label corruption within one round
   of it becoming visible to a neighbour;
2. advances its two trains (Top and Bottom, multiplexed), including the
   rotation checks of Section 8 (cyclic order, per-rotation level
   coverage, piece counts, fragment-root identity);
3. advances the Ask/Show comparison mechanism with the minimality checks
   C1/C2 and the Claim-8.3 piece-agreement check.

The protocol is parameterized by the execution model:

* ``synchronous=True``  — timing budgets per Lemma 7.5; comparison mode
  defaults to the stateless window sampling (detection O(log^2 n));
* ``synchronous=False`` — budgets per Lemma 7.6; comparison mode defaults
  to the Want handshake (detection O(Delta log^3 n)); the ablation mode
  ``want-simple`` reproduces the O(Delta^2 log^3 n) variant.

Alarms latch in the ``alarm`` register with a reason string.

The protocol declares a register schema (labels, both trains, the
comparison mechanism, its own working registers), so the schedulers back
its networks with array-based register files by default; see
:mod:`repro.sim.registers`.
"""

from __future__ import annotations

from typing import List, Optional

from ..labels.registers import (REG_BOT_COUNT, REG_BOT_ROOT,
                                REG_PIECES_BOT, REG_PIECES_TOP,
                                REG_TOP_COUNT, REG_TOP_ROOT,
                                declare_label_registers)
from ..labels.wellforming import static_check
from ..sim.bulk import drive_batch
from ..sim.network import NodeContext, Protocol
from ..sim.registers import ALARM, RegisterSchema, handle_resolver
from ..trains.budgets import Budgets, node_budgets
from ..trains.comparison import (MODE_SYNC_WINDOW, MODE_WANT,
                                 MODE_WANT_SIMPLE, ComparisonComponent)
from ..trains.train import TrainComponent

REG_VSTEP = "vstep"
REG_BUDGET_CACHE = "_bgt"


def fused_verifier_sweep(proto, batch, trains, comparison) -> None:
    """The shared fused bulk sweep of the train verifiers (the full
    verifier passes both trains, the hybrid only Top — one driver so
    the two sweeps cannot drift apart).

    With fused column ops licensed — a synchronous round on columnar
    storage, or an asynchronous conflict-free batch (live columns,
    ``batch.conflict_free``) — the step counters of the whole batch
    advance in one ``array('q')`` sweep, the budget ghost registers are
    gathered once per batch, and the per-node bodies run with the
    dispatch layers hoisted out of the loop: column-fused train and
    comparison steps (:meth:`TrainComponent.make_bulk_step
    <repro.trains.train.TrainComponent.make_bulk_step>`,
    :meth:`ComparisonComponent.make_bulk_sync
    <repro.trains.comparison.ComparisonComponent.make_bulk_sync>`, with
    scalar adapters where a component declines to fuse), no
    intermediate alarm-list splicing.  Everything executes the exact
    scalar ``step`` sequence per node — including the alarm priority
    order statics > trains in order > comparison — so the sweep is
    bit-for-bit equivalent (``tests/test_bulk_plane.py``).

    Conflict-free batches arrive with the scheduler's ``gate``/``after``
    callbacks, which the license makes commute across the batch (see
    :mod:`repro.sim.bulk`): the sweep runs every gate first, fuses over
    the gated survivors only (a skipped activation must not advance its
    step counter), sets each survivor's ``wrote`` flag (every stepped
    activation writes at least its counter — exactly the scalar
    outcome), and then runs every after in activation order.

    ``proto`` must carry the verifier-shaped surface: ``h_vstep``,
    ``h_bgt``, ``static_every``, ``_static_alarms``, ``budgets_for``,
    and the ``_fused`` closure cache (reset by ``bind_registers``).
    """
    ops = batch.ops
    contexts = batch.contexts
    se = proto.static_every
    statics = proto._static_alarms
    budgets_for = proto.budgets_for
    fused = proto._fused
    if fused is None or fused[0] is not ops:
        steps = tuple(
            f if f is not None else
            (lambda ctx, b, h, s, _t=train: _t.step(ctx, b, h,
                                                    sentinel=s))
            for train, f in ((t, t.make_bulk_step(ops)) for t in trains))
        cmp_fused = comparison.make_bulk_sync(ops)
        if cmp_fused is None:
            cmp_fused = comparison.make_bulk_want(ops)
        comp_step = cmp_fused if cmp_fused is not None \
            else comparison.step
        held_fused = comparison.make_bulk_held(ops)
        held = held_fused if held_fused is not None \
            else comparison.held_levels
        fused = proto._fused = (ops, steps, comp_step, held)
    _, train_steps, comp_step, held = fused
    sync_window = comparison.mode == MODE_SYNC_WINDOW
    # serve_turn acts only in the serialized want-simple ablation; the
    # per-node no-op call is hoisted out of the hot loop entirely
    serve = comparison.serve_turn \
        if comparison.mode == MODE_WANT_SIMPLE else None
    tr0 = train_steps[0]
    tr1 = train_steps[1] if len(train_steps) == 2 else None

    def run_bodies(ctx_list, step_nos, bgts):
        for k, ctx in enumerate(ctx_list):
            step_no = step_nos[k]
            sentinel = ctx.stable_sentinel()
            first = statics(ctx, sentinel) if step_no % se == 0 else None
            cached = bgts[k]
            if isinstance(cached, tuple) and len(cached) == 2 and \
                    isinstance(cached[1], Budgets) and \
                    step_no - cached[0] < 32:
                budgets = cached[1]
            else:
                budgets = budgets_for(ctx, sentinel, step_no)
            if sync_window:
                a = tr0(ctx, budgets, False, sentinel)
                if a and not first:
                    first = a
                if tr1 is not None:
                    a = tr1(ctx, budgets, False, sentinel)
                    if a and not first:
                        first = a
            else:
                ht, hb = held(ctx)
                a = tr0(ctx, budgets, ht is not None, sentinel)
                if a and not first:
                    first = a
                if tr1 is not None:
                    a = tr1(ctx, budgets, hb is not None, sentinel)
                    if a and not first:
                        first = a
                if serve is not None:
                    serve(ctx)
            a = comp_step(ctx, budgets, sentinel)
            if a and not first:
                first = a
            if first:
                ctx.alarm(first[0])

    gate = batch.gate
    after = batch.after
    if gate is None and after is None:
        step_nos = ops.inc_nat(batch, proto.h_vstep)
        batch.wrote_all = True
        bgts = ops.gather(batch, proto.h_bgt)
        run_bodies(contexts, step_nos, bgts)
        return
    # conflict-free batch: commuting gates first, fused sweep over the
    # survivors, afters last (in activation order)
    if gate is None:
        stepped = [True] * len(contexts)
    else:
        stepped = [gate(k, ctx) for k, ctx in enumerate(contexts)]
    active = [ctx for ctx, s in zip(contexts, stepped) if s]
    if active:
        store = ops.store
        idx = [ctx._i for ctx in active]
        step_nos = store.inc_nat_batch(idx, proto.h_vstep)
        bgts = store.gather_values(idx, proto.h_bgt)
        for ctx in active:
            # every stepped activation writes its step counter, so the
            # scalar loop would flag every survivor as having written
            ctx.wrote = True
        run_bodies(active, step_nos, bgts)
    if after is not None:
        for k, ctx in enumerate(contexts):
            after(k, ctx, stepped[k])


class MstVerifierProtocol(Protocol):
    """The complete verifier of Sections 5–8."""

    def __init__(self, synchronous: bool = True,
                 comparison_mode: Optional[str] = None,
                 static_every: int = 1) -> None:
        self.synchronous = synchronous
        if comparison_mode is None:
            comparison_mode = MODE_SYNC_WINDOW if synchronous else MODE_WANT
        if synchronous and comparison_mode != MODE_SYNC_WINDOW:
            # want-modes also run under a synchronous scheduler (ablation)
            pass
        self.top = TrainComponent("top", REG_TOP_ROOT, REG_TOP_COUNT,
                                  REG_PIECES_TOP, synchronous)
        self.bottom = TrainComponent("bottom", REG_BOT_ROOT, REG_BOT_COUNT,
                                     REG_PIECES_BOT, synchronous)
        self.comparison = ComparisonComponent(self.top, self.bottom,
                                              comparison_mode)
        self.static_every = max(1, static_every)
        self.bind_registers(None)

    # ------------------------------------------------------------------
    def register_schema(self) -> RegisterSchema:
        schema = RegisterSchema()
        schema.declare(ALARM, "opaque", None)
        schema.declare(REG_VSTEP, "nat", 0)
        schema.declare(REG_BUDGET_CACHE, "opaque", None)
        declare_label_registers(schema)
        self.top.declare_registers(schema)
        self.bottom.declare_registers(schema)
        self.comparison.declare_registers(schema)
        return schema

    def bind_registers(self, compiled) -> None:
        """Resolve register handles and reset every cache derived from
        register contents.  Checkpoint restore leans on this contract:
        after :func:`repro.sim.snapshot.restore_run_state` swaps the
        registers wholesale it re-binds, and because the caches below
        are rebuilt lazily from (sentinel-validated) restored state the
        continuation is bit-for-bit the uninterrupted run's."""
        resolve = handle_resolver(compiled)
        self.h_alarm = resolve(ALARM)
        self.h_vstep = resolve(REG_VSTEP)
        self.h_bgt = resolve(REG_BUDGET_CACHE)
        self.top.bind_registers(compiled)
        self.bottom.bind_registers(compiled)
        self.comparison.bind_registers(compiled)
        # register files only: label-derived caches keyed by the closed
        # neighbourhood's stable-register version sentinel
        self._slot_bound = compiled is not None
        self._static_cache = {}
        self._budget_cache = {}
        # bulk plane: fused component closures, keyed on the ops object
        self._fused = None

    # ------------------------------------------------------------------
    def init_node(self, ctx: NodeContext) -> None:
        ctx.set(self.h_alarm, None)
        ctx.set(self.h_vstep, 0)
        self.top.init_node(ctx)
        self.bottom.init_node(ctx)
        self.comparison.init_node(ctx)

    # ------------------------------------------------------------------
    def budgets_for(self, ctx: NodeContext,
                    sentinel: Optional[int] = None,
                    step_no: Optional[int] = None) -> Budgets:
        """Label-driven budgets, cached in ghost state and refreshed
        periodically (they are pure functions of slowly changing labels).

        The ghost-register refresh cadence (every 32 steps) is identical
        under every storage; under register files/columns the
        recomputation at a refresh is additionally memoized on the label
        sentinel, so an unchanged neighbourhood never re-derives its
        budgets.  ``step_no`` lets :meth:`step` pass the counter it just
        advanced instead of re-reading the register."""
        cached = ctx.get(self.h_bgt)
        if step_no is None:
            step_no = ctx.nat(self.h_vstep, cap=1 << 30) or 0
        if isinstance(cached, tuple) and len(cached) == 2 and \
                isinstance(cached[1], Budgets) and step_no - cached[0] < 32:
            return cached[1]
        if sentinel is not None:
            ent = self._budget_cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                budgets = ent[1]
            else:
                budgets = node_budgets(ctx, self.synchronous)
                self._budget_cache[ctx.node] = (sentinel, budgets)
        else:
            budgets = node_budgets(ctx, self.synchronous)
        ctx.set(self.h_bgt, (step_no, budgets))
        return budgets

    def _static_alarms(self, ctx, sentinel: Optional[int]) -> List[str]:
        """The 1-round checks, recomputed only when a label in the closed
        neighbourhood changed (they are deterministic in exactly that
        scope, so an unchanged sentinel implies an unchanged verdict)."""
        if sentinel is None:
            return static_check(ctx)
        ent = self._static_cache.get(ctx.node)
        if ent is not None and ent[0] == sentinel:
            return ent[1]
        reasons = static_check(ctx)
        self._static_cache[ctx.node] = (sentinel, reasons)
        return reasons

    def step(self, ctx: NodeContext) -> None:
        step_no = (ctx.nat(self.h_vstep, cap=1 << 30) or 0) + 1
        ctx.set(self.h_vstep, step_no)
        sentinel = ctx.stable_sentinel() if self._slot_bound else None
        alarms: List[str] = []

        if step_no % self.static_every == 0:
            alarms.extend(self._static_alarms(ctx, sentinel))

        budgets = self.budgets_for(ctx, sentinel, step_no)
        held_top, held_bot = self.comparison.held_levels(ctx)
        alarms.extend(self.top.step(ctx, budgets,
                                    hold_broadcast=held_top is not None,
                                    sentinel=sentinel))
        alarms.extend(self.bottom.step(ctx, budgets,
                                       hold_broadcast=held_bot is not None,
                                       sentinel=sentinel))
        self.comparison.serve_turn(ctx)
        alarms.extend(self.comparison.step(ctx, budgets, sentinel))

        if alarms:
            ctx.alarm(alarms[0])

    # ------------------------------------------------------------------
    #: conflict-free asynchronous batches may fuse (the sweep handles
    #: the commuting gate/after contract; see repro.sim.bulk)
    bulk_conflict_free = True

    def bulk_step(self, batch) -> None:
        """One whole scheduler batch (the bulk-activation plane): the
        shared fused sweep over both trains when fusion is licensed —
        a synchronous columnar round, or a conflict-free asynchronous
        batch — and the generic per-node fallback driver otherwise
        (dict/schema storage, unlicensed live batches).
        See :func:`fused_verifier_sweep`."""
        ops = batch.ops
        if ops is None or not ops.fused or (
                not batch.conflict_free and
                (batch.gate is not None or batch.after is not None)):
            drive_batch(self.step, batch)
            return
        fused_verifier_sweep(self, batch, (self.top, self.bottom),
                             self.comparison)
