"""The self-stabilizing MST verifier (Theorem 8.5) as one protocol.

Per activation, every node:

1. runs the 1-round static checks (Example SP/NumK, RS0–RS5, EPS0–EPS5,
   the partition fields) — these detect label corruption within one round
   of it becoming visible to a neighbour;
2. advances its two trains (Top and Bottom, multiplexed), including the
   rotation checks of Section 8 (cyclic order, per-rotation level
   coverage, piece counts, fragment-root identity);
3. advances the Ask/Show comparison mechanism with the minimality checks
   C1/C2 and the Claim-8.3 piece-agreement check.

The protocol is parameterized by the execution model:

* ``synchronous=True``  — timing budgets per Lemma 7.5; comparison mode
  defaults to the stateless window sampling (detection O(log^2 n));
* ``synchronous=False`` — budgets per Lemma 7.6; comparison mode defaults
  to the Want handshake (detection O(Delta log^3 n)); the ablation mode
  ``want-simple`` reproduces the O(Delta^2 log^3 n) variant.

Alarms latch in the ``alarm`` register with a reason string.

The protocol declares a register schema (labels, both trains, the
comparison mechanism, its own working registers), so the schedulers back
its networks with array-based register files by default; see
:mod:`repro.sim.registers`.
"""

from __future__ import annotations

from typing import List, Optional

from ..labels.registers import (REG_BOT_COUNT, REG_BOT_ROOT,
                                REG_PIECES_BOT, REG_PIECES_TOP,
                                REG_TOP_COUNT, REG_TOP_ROOT,
                                declare_label_registers)
from ..labels.wellforming import static_check
from ..sim.bulk import drive_batch
from ..sim.network import NodeContext, Protocol
from ..sim.npcolumnar import VecTopo, csr_take, numpy_or_none, view64
from ..sim.registers import ALARM, RegisterSchema, handle_resolver
from ..trains.budgets import Budgets, node_budgets
from ..trains.comparison import (MODE_SYNC_WINDOW, MODE_WANT,
                                 MODE_WANT_SIMPLE, ComparisonComponent)
from ..trains.train import TrainComponent

REG_VSTEP = "vstep"
REG_BUDGET_CACHE = "_bgt"


def _bulk_stats(proto):
    """The protocol's lazily created bulk-plane accounting dict.

    Pure diagnostics (scenario results surface it; nothing reads it
    back into the protocol), so it is neither snapshotted nor reset by
    ``bind_registers``: rows fused through the vector tier, rows
    replayed with a partial plan (residual), rows replayed fully
    scalar, and persistent-plan rebuilds."""
    stats = getattr(proto, "bulk_stats", None)
    if stats is None:
        stats = proto.bulk_stats = {
            "rows_fused": 0, "rows_residual": 0, "rows_scalar": 0,
            "plan_rebuilds": 0, "plan_refreshes": 0}
    return stats


def fused_verifier_sweep(proto, batch, trains, comparison) -> None:
    """The shared fused bulk sweep of the train verifiers (the full
    verifier passes both trains, the hybrid only Top — one driver so
    the two sweeps cannot drift apart).

    With fused column ops licensed — a synchronous round on columnar
    storage, or an asynchronous conflict-free batch (live columns,
    ``batch.conflict_free``) — the step counters of the whole batch
    advance in one ``array('q')`` sweep, the budget ghost registers are
    gathered once per batch, and the per-node bodies run with the
    dispatch layers hoisted out of the loop: column-fused train and
    comparison steps (:meth:`TrainComponent.make_bulk_step
    <repro.trains.train.TrainComponent.make_bulk_step>`,
    :meth:`ComparisonComponent.make_bulk_sync
    <repro.trains.comparison.ComparisonComponent.make_bulk_sync>`, with
    scalar adapters where a component declines to fuse), no
    intermediate alarm-list splicing.  Everything executes the exact
    scalar ``step`` sequence per node — including the alarm priority
    order statics > trains in order > comparison — so the sweep is
    bit-for-bit equivalent (``tests/test_bulk_plane.py``).

    Conflict-free batches arrive with the scheduler's ``gate``/``after``
    callbacks, which the license makes commute across the batch (see
    :mod:`repro.sim.bulk`): the sweep runs every gate first, fuses over
    the gated survivors only (a skipped activation must not advance its
    step counter), sets each survivor's ``wrote`` flag (every stepped
    activation writes at least its counter — exactly the scalar
    outcome), and then runs every after in activation order.

    ``proto`` must carry the verifier-shaped surface: ``h_vstep``,
    ``h_bgt``, ``static_every``, ``_static_alarms``, ``budgets_for``,
    and the ``_fused`` closure cache (reset by ``bind_registers``).
    """
    ops = batch.ops
    contexts = batch.contexts
    se = proto.static_every
    statics = proto._static_alarms
    budgets_for = proto.budgets_for
    fused = proto._fused
    if fused is None or fused[0] is not ops:
        raw_steps = tuple(t.make_bulk_step(ops) for t in trains)
        steps = tuple(
            f if f is not None else
            (lambda ctx, b, h, s, _t=train: _t.step(ctx, b, h,
                                                    sentinel=s))
            for train, f in zip(trains, raw_steps))
        cmp_fused = comparison.make_bulk_sync(ops)
        if cmp_fused is None:
            cmp_fused = comparison.make_bulk_want(ops)
        comp_step = cmp_fused if cmp_fused is not None \
            else comparison.step
        held_fused = comparison.make_bulk_held(ops)
        held = held_fused if held_fused is not None \
            else comparison.held_levels
        # the vector tier sits strictly above full fusion: a numpy
        # store, numpy importable, every component fused, and a mode
        # whose per-node bodies the classifiers model (want-simple's
        # serialized server stays scalar)
        vec = None
        if (getattr(ops.store, "numpy_tier", False)
                and numpy_or_none() is not None
                and comparison.mode in (MODE_SYNC_WINDOW, MODE_WANT)
                and all(f is not None for f in raw_steps)
                and cmp_fused is not None
                and (comparison.mode == MODE_SYNC_WINDOW
                     or held_fused is not None)):
            vec = _VectorSweep(proto, trains, comparison, ops,
                               raw_steps, cmp_fused, held_fused)
        fused = proto._fused = (ops, steps, comp_step, held, vec)
    _, train_steps, comp_step, held, vec = fused
    sync_window = comparison.mode == MODE_SYNC_WINDOW
    # serve_turn acts only in the serialized want-simple ablation; the
    # per-node no-op call is hoisted out of the hot loop entirely
    serve = comparison.serve_turn \
        if comparison.mode == MODE_WANT_SIMPLE else None
    tr0 = train_steps[0]
    tr1 = train_steps[1] if len(train_steps) == 2 else None

    def run_bodies(ctx_list, step_nos, bgts):
        for k, ctx in enumerate(ctx_list):
            step_no = step_nos[k]
            sentinel = ctx.stable_sentinel()
            first = statics(ctx, sentinel) if step_no % se == 0 else None
            cached = bgts[k]
            if isinstance(cached, tuple) and len(cached) == 2 and \
                    isinstance(cached[1], Budgets) and \
                    step_no - cached[0] < 32:
                budgets = cached[1]
            else:
                budgets = budgets_for(ctx, sentinel, step_no)
            if sync_window:
                a = tr0(ctx, budgets, False, sentinel)
                if a and not first:
                    first = a
                if tr1 is not None:
                    a = tr1(ctx, budgets, False, sentinel)
                    if a and not first:
                        first = a
            else:
                ht, hb = held(ctx)
                a = tr0(ctx, budgets, ht is not None, sentinel)
                if a and not first:
                    first = a
                if tr1 is not None:
                    a = tr1(ctx, budgets, hb is not None, sentinel)
                    if a and not first:
                        first = a
                if serve is not None:
                    serve(ctx)
            a = comp_step(ctx, budgets, sentinel)
            if a and not first:
                first = a
            if first:
                ctx.alarm(first[0])

    gate = batch.gate
    after = batch.after
    if gate is None and after is None and batch.segments is None \
            and batch.plan_key is None:
        step_nos = ops.inc_nat(batch, proto.h_vstep)
        batch.wrote_all = True
        bgts = ops.gather(batch, proto.h_bgt)
        if vec is None or not vec.run(contexts, step_nos, bgts,
                                      run_bodies, batch.vec_min_batch):
            run_bodies(contexts, step_nos, bgts)
        return
    # conflict-free batch, possibly coalesced: per segment, commuting
    # gates first, fused sweep over the survivors, afters last (in
    # activation order), then the scheduler's boundary replay —
    # segments run strictly in order (members of distinct segments may
    # share neighbourhoods, so segment i must observe i-1's writes)
    store = ops.store
    segments = batch.segments if batch.segments is not None \
        else [len(contexts)]
    boundary = batch.boundary
    plan_key = batch.plan_key
    base = 0
    for si, seg_len in enumerate(segments):
        seg_ctxs = contexts[base:base + seg_len]
        if gate is None:
            stepped = [True] * seg_len
        else:
            stepped = [gate(base + k, ctx)
                       for k, ctx in enumerate(seg_ctxs)]
        active = [ctx for ctx, s in zip(seg_ctxs, stepped) if s]
        if active:
            idx = [ctx._i for ctx in active]
            step_nos = store.inc_nat_batch(idx, proto.h_vstep)
            bgts = store.gather_values(idx, proto.h_bgt)
            for ctx in active:
                # every stepped activation writes its step counter, so
                # the scalar loop would flag every survivor as written
                ctx.wrote = True
            handled = False
            if vec is not None and plan_key is not None:
                handled = vec.run_planned(plan_key, active, step_nos,
                                          bgts, batch.vec_min_batch)
            if not handled and (vec is None or not vec.run(
                    active, step_nos, bgts, run_bodies,
                    batch.vec_min_batch)):
                run_bodies(active, step_nos, bgts)
        if after is not None:
            for k, ctx in enumerate(seg_ctxs):
                after(base + k, ctx, stepped[k])
        base += seg_len
        if boundary is not None and boundary(si):
            return


class _VectorSweep:
    """The numpy-tier whole-batch sweep behind
    :func:`fused_verifier_sweep`.

    Each component's classifier proves, per batch row, whether that
    component's fused step is exactly its masked column write(s) — no
    alarm, no transition.  Trivial (component, row) pairs get the
    write applied as one masked slice-store; the rest replay the exact
    scalar fused bodies, *per component*: a row whose top train is
    mid-transition still vectorizes its bottom train and comparison
    halves.  The replay loop mirrors ``run_bodies`` body for body
    (statics first, trains in order, comparison, alarm priority), so
    the sweep is bit-for-bit equivalent to the scalar path on every
    input, including planted junk; the split is conservative by
    construction (an unprovable pair is merely residual), and what
    varies with the input is only how much of the batch vectorizes.

    Per-row label-derived attributes (part topology, level rotations,
    static-check verdicts) rebuild when the joint stable epoch moves —
    the same sentinel discipline the scalar caches key on.  Budget
    thresholds come only from rows whose ghost budget cache is valid
    for this step; a stale row goes residual, where ``budgets_for``
    refreshes the ghost register exactly as the scalar sweep would.
    """

    #: below this many rows the per-batch classification overhead beats
    #: the savings (conflict-free batches are often small); schedulers
    #: override it per batch via ``vec_min_batch``.  The same threshold
    #: routes conflict-free sweeps between the two vector tiers: at or
    #: above it the per-batch tier classifies fresh per segment, below
    #: it the persistent per-sweep plan amortizes classification over
    #: the whole sweep, so even singleton segments can fuse
    MIN_BATCH = 48

    def __init__(self, proto, trains, comparison, ops,
                 raw_steps, cmp_fused, held_fused) -> None:
        self.proto = proto
        self.comparison = comparison
        self.store = ops.store
        self.snap = ops.snap
        self.topo = VecTopo(ops.store.n)
        self.train_kerns = tuple(
            t.make_vector_kernel(ops, self.topo) for t in trains)
        self.comp_kern = comparison.make_vector_kernel(ops, self.topo)
        self.tr0 = raw_steps[0]
        self.tr1 = raw_steps[1] if len(raw_steps) == 2 else None
        self.comp_step = cmp_fused
        self.held = held_fused
        self.want = comparison.mode == MODE_WANT
        # the neighbour-read register set: everything any row's
        # classification reads from another row (write detection for
        # the per-sweep plans keys on exactly these columns): epoch,
        # activation car, broadcast slot and sequence — the only
        # neighbour-read registers any classification consults (the
        # convergecast cars/acks are deliberately *not* classified on:
        # they churn every delivery, and watching them costs more in
        # invalidation fan-out than the waits they would prove)
        self.chk_tr = tuple(
            (t.h_ep, t.h_act, t.h_bbuf, t.h_bseq)
            for t in trains)
        self.chk_want = comparison.h_want if self.want else None
        self.key = None
        self.statics_empty = None
        self.row_of = None
        # persistent per-sweep plan state (see run_planned)
        self.plan = None
        self.plan_ia = None
        self.readers = None
        # profitability (see run_planned): exponential moving average
        # of segment width, the sweep the plan was declined for, and
        # the adaptive yield backoff.  The mode is decided once per
        # sweep: mixing would let legacy segments write without the
        # plan's invalidation tracking, leaving stale verdicts.
        self.seg_ema = None
        self.plan_off_key = None
        self.plan_cool = 0
        self.plan_back = 1

    def _rebuild(self, np) -> None:
        proto = self.proto
        topo = self.topo
        n = topo.n
        statics_empty = np.zeros(n, bool)
        statics = proto._static_alarms
        for i in range(n):
            ctx = topo.ctxs[i]
            statics_empty[i] = \
                not statics(ctx, ctx.stable_sentinel())
        self.statics_empty = statics_empty
        for kern in self.train_kerns:
            kern.rebuild(np, topo)
        self.comp_kern.rebuild(np, topo)
        # per-train reverse-reader CSR: readers(p) = rows whose train
        # classification *reads* p's train registers ({x: parent(x)=p}
        # union {x: p in children(x)}).  Junk labels make the claimed
        # tree asymmetric (x may name a parent whose own child list
        # omits x), so invalidation must follow the read edges, not
        # p's own parent/children claims.
        readers = []
        for kern in self.train_kerns:
            pk = kern.pidx
            src_p = np.flatnonzero(pk >= 0)
            src_c = np.repeat(np.arange(n, dtype=np.int64),
                              np.diff(kern.coff))
            src = np.concatenate((src_p, src_c))
            dst = np.concatenate((pk[src_p], kern.cflat))
            order = np.argsort(dst, kind="stable")
            off = np.zeros(n + 1, np.int64)
            np.cumsum(np.bincount(dst, minlength=n), out=off[1:])
            readers.append((off, src[order]))
        self.readers = readers
        if self.row_of is None:
            self.row_of = np.empty(n, np.int64)
        self.key = self.store.stable_epoch + self.snap.stable_epoch

    def run(self, ctx_list, step_nos, bgts, run_bodies,
            min_batch=None) -> bool:
        """Vector-sweep the batch; False defers it to the caller's
        scalar loop (numpy disabled, batch too small, or topology not
        yet fully observed).  ``min_batch`` overrides :attr:`MIN_BATCH`
        (the scheduler's ``vec_min_batch`` knob)."""
        np = numpy_or_none()
        m = len(ctx_list)
        mb = self.MIN_BATCH if min_batch is None else min_batch
        if np is None or m < mb:
            return False
        if not self.topo.offer(ctx_list):
            return False
        proto = self.proto
        key = self.store.stable_epoch + self.snap.stable_epoch
        if key != self.key:
            self._rebuild(np)
        ia = np.fromiter((ctx._i for ctx in ctx_list), np.int64,
                         count=m)
        row_of = self.row_of
        row_of[:] = -1
        row_of[ia] = np.arange(m, dtype=np.int64)
        stat_ok = self.statics_empty[ia].copy()
        se = proto.static_every
        if se > 1:
            snos = np.fromiter(step_nos, np.int64, count=m)
            stat_ok |= (snos % se) != 0
        # budget thresholds row by row (id-keying Budgets objects would
        # be unsound across gc reuse; the attribute reads are cheap)
        na = np.full(m, -1, np.int64)
        aa = np.full(m, -1, np.int64)
        sv = np.full(m, -1, np.int64)
        bgok = np.zeros(m, bool)
        for k in range(m):
            c = bgts[k]
            if isinstance(c, tuple) and len(c) == 2 and \
                    isinstance(c[1], Budgets) and \
                    step_nos[k] - c[0] < 32:
                b = c[1]
                bgok[k] = True
                na[k] = b.node_alarm
                aa[k] = b.ask_alarm
                sv[k] = b.service
        if self.want:
            held_ok, ht, hb = self.comp_kern.held(np, ia, row_of)
            holds = (ht, hb)
        else:
            held_ok = None
            holds = (False, False)
        trivs = []
        applies = []
        bc_dones = []
        adopts = []
        for kern, hold in zip(self.train_kerns, holds):
            triv, bc_done, apply, pend = kern.classify(np, ia, row_of,
                                                       na, hold)
            if held_ok is not None:
                # an unprovable hold flag poisons the train inputs
                triv &= held_ok
            trivs.append(triv)
            bc_dones.append(bc_done)
            applies.append(apply)
            adopts.append(pend)
        ctriv, capply, _cpub = self.comp_kern.classify(np, ia, row_of,
                                                       aa, sv)
        trivs.append(ctriv)
        applies.append(capply)
        any_triv = False
        full = stat_ok & bgok
        for triv in trivs:
            full &= triv
            any_triv = any_triv or triv.any()
        stats = _bulk_stats(self.proto)
        if not any_triv:
            stats["rows_scalar"] += m
            run_bodies(ctx_list, step_nos, bgts)
            return True
        for triv, apply in zip(trivs, applies):
            apply(np.flatnonzero(triv))
        nf = int(full.sum())
        stats["rows_fused"] += nf
        stats["rows_residual"] += m - nf
        if nf == m:
            return True
        self._run_partial(np.flatnonzero(~full), ctx_list, step_nos,
                          bgts, trivs, bc_dones, adopts, holds,
                          held_ok)
        return True

    def _run_partial(self, resid, ctx_list, step_nos, bgts, trivs,
                     bc_dones, adopts, holds, held_ok) -> None:
        """Replay the scalar fused bodies for every non-trivial
        (component, row) pair — the exact ``run_bodies`` sequence with
        the already-applied components skipped."""
        proto = self.proto
        statics = proto._static_alarms
        budgets_for = proto.budgets_for
        se = proto.static_every
        tr0, tr1 = self.tr0, self.tr1
        comp_step = self.comp_step
        held = self.held
        want = self.want
        # plain-list views: per-element indexing of numpy bool arrays
        # costs more than the loop bodies it gates
        t0 = trivs[0].tolist()
        t1 = trivs[1].tolist() if tr1 is not None else None
        tc = trivs[-1].tolist()
        b0 = bc_dones[0].tolist()
        b1 = bc_dones[1].tolist() if tr1 is not None else None
        p0 = adopts[0]
        p1 = adopts[1] if tr1 is not None else None
        kerns = self.train_kerns
        htm, hbm = holds
        if want:
            held_ok = held_ok.tolist()
            htm = htm.tolist()
            hbm = hbm.tolist()
        for r in resid.tolist():
            k = r
            ctx = ctx_list[k]
            step_no = step_nos[k]
            sentinel = ctx.stable_sentinel()
            first = statics(ctx, sentinel) if step_no % se == 0 else None
            cached = bgts[k]
            if isinstance(cached, tuple) and len(cached) == 2 and \
                    isinstance(cached[1], Budgets) and \
                    step_no - cached[0] < 32:
                budgets = cached[1]
            else:
                budgets = budgets_for(ctx, sentinel, step_no)
            if want:
                if held_ok[k]:
                    h0, h1 = htm[k], hbm[k]
                else:
                    hlt, hlb = held(ctx)
                    h0, h1 = hlt is not None, hlb is not None
            else:
                h0 = h1 = False
            if not t0[k]:
                a = tr0(ctx, budgets, h0 or b0[k], sentinel)
                ent = p0.get(k)
                if ent is not None and not h0:
                    # the planned adopt lands after the prologue and
                    # convergecast, exactly where the scalar broadcast
                    # would have written it (a live hold cancels it,
                    # as it cancels the whole broadcast)
                    kerns[0]._exec_adopt(ent)
                if a and not first:
                    first = a
            if t1 is not None and not t1[k]:
                a = tr1(ctx, budgets, h1 or b1[k], sentinel)
                ent = p1.get(k)
                if ent is not None and not h1:
                    kerns[1]._exec_adopt(ent)
                if a and not first:
                    first = a
            if not tc[k]:
                a = comp_step(ctx, budgets, sentinel)
                if a and not first:
                    first = a
            if first:
                ctx.alarm(first[0])

    # -- persistent per-sweep plan -------------------------------------
    def _build_plan(self, np, plan_key, epoch, cur_ia, cur_snos):
        """Classify *every* node once for the daemon sweep ``plan_key``.

        Sound because classification inputs of row x live entirely in
        the closed neighbourhood N[x]'s registers: a row's verdict
        stays exact until a register it reads is written, and
        :meth:`run_planned` invalidates (conservatively, per
        component) the affected readers after every segment.  Step
        numbers are predicted (``vstep + 1`` with the nat restart
        semantics of ``inc_nat_batch``): a node steps at most once per
        sweep and only the node itself writes its counter, so the
        prediction is the value the node's segment will produce.  The
        triggering segment ``cur_ia`` already incremented its
        counters before the build, so its actual step numbers
        ``cur_snos`` override the prediction."""
        proto = self.proto
        store = self.store
        topo = self.topo
        n = topo.n
        if epoch != self.key:
            self._rebuild(np)
        ia = self.plan_ia
        if ia is None:
            ia = self.plan_ia = np.arange(n, dtype=np.int64)
        row_of = ia                # identity: plan rows ARE dense rows
        vs = view64(store.data[proto.h_vstep])[ia]
        snos = np.where((vs >= 0) & (vs <= 1 << 30), vs + 1, 1)
        snos[cur_ia] = cur_snos
        stat_ok = self.statics_empty.copy()
        se = proto.static_every
        if se > 1:
            stat_ok |= (snos % se) != 0
        bgts = store.gather_values(list(range(n)), proto.h_bgt)
        na = np.full(n, -1, np.int64)
        aa = np.full(n, -1, np.int64)
        sv = np.full(n, -1, np.int64)
        bgok = np.zeros(n, bool)
        snos_l = snos.tolist()
        for k in range(n):
            c = bgts[k]
            if isinstance(c, tuple) and len(c) == 2 and \
                    isinstance(c[1], Budgets) and \
                    snos_l[k] - c[0] < 32:
                b = c[1]
                bgok[k] = True
                na[k] = b.node_alarm
                aa[k] = b.ask_alarm
                sv[k] = b.service
        plan = _SweepPlan()
        plan.key = plan_key
        plan.epoch = epoch
        plan.done = np.zeros(n, bool)
        plan.base = stat_ok & bgok
        # the frame — step predictions, budget thresholds, statics —
        # holds for the whole sweep (only a row's own step writes its
        # vstep/budget ghost, and done rows never consult the plan
        # again), so a mid-sweep refresh reuses it and redoes only the
        # classification below
        plan.na = na
        plan.aa = aa
        plan.sv = sv
        plan.refresh_left = 4
        plan.srv = 0
        plan.fus = 0
        self._classify_plan(np, plan)
        self.plan = plan
        _bulk_stats(proto)["plan_rebuilds"] += 1
        return plan

    def _classify_plan(self, np, plan) -> None:
        """(Re)classify every node against the *current* registers.

        Called at plan build and again mid-sweep when invalidation has
        eroded coverage: not-yet-done rows then read exactly the state
        their scalar step would read at this point of the sweep, so the
        fresh verdicts are exact and all validity resets to covered.
        Done rows get garbage verdicts — harmless, every consumer gates
        on ``~plan.done``."""
        n = self.topo.n
        ia = self.plan_ia
        row_of = ia
        na, aa, sv = plan.na, plan.aa, plan.sv
        if self.want:
            held_ok, ht, hb = self.comp_kern.held(np, ia, row_of)
            holds = (ht, hb)
        else:
            held_ok = None
            holds = (False, False)
        trivs = []
        applies = []
        bc_dones = []
        adopts = []
        for kern, hold in zip(self.train_kerns, holds):
            triv, bc_done, apply, pend = kern.classify(np, ia, row_of,
                                                       na, hold)
            if held_ok is not None:
                triv &= held_ok
            trivs.append(triv)
            bc_dones.append(bc_done)
            applies.append(apply)
            adopts.append(pend)
        ctriv, capply, cpub = self.comp_kern.classify(np, ia, row_of,
                                                      aa, sv)
        trivs.append(ctriv)
        applies.append(capply)
        plan.trivs = trivs
        plan.bc_dones = bc_dones
        plan.applies = applies
        plan.adopts = adopts
        plan.holds = holds
        plan.held_ok = held_ok
        # per-component validity: a write invalidates only the
        # classifications that read it (see _invalidate), so an adopt
        # at p costs p's tree readers their train verdict and N(p)
        # their comparison verdict — the other train survives
        plan.v_tr = [np.ones(n, bool) for _ in self.train_kerns]
        plan.v_cmp = np.ones(n, bool)
        plan.v_held = np.ones(n, bool) if self.want else None
        # neighbour-visible fused writes: adopt plans per train
        # (broadcast slots), planned subtree completions (activation
        # clears) and Want filings (comparison)
        pub_tr = []
        for kern, pend in zip(self.train_kerns, adopts):
            mask = np.zeros(n, bool)
            if pend:
                mask[list(pend)] = True
            pe = kern.pub_extra
            if pe is not None and len(pe):
                mask[pe] = True
            pub_tr.append(mask)
        plan.pub_tr = pub_tr
        plan.pub_want = cpub

    def run_planned(self, plan_key, ctx_list, step_nos, bgts,
                    min_batch=None) -> bool:
        """Sweep one conflict-free segment against the persistent
        per-sweep plan; False defers the segment to the caller (numpy
        off, topology not yet fully observed, or the profitability
        gate routed this sweep to the per-batch tier — the plan itself
        has no minimum size: its classification is amortized over the
        whole sweep).

        Profitability, decided once per sweep: when segments average
        at or above the per-batch threshold, that tier's fresh
        per-segment classification is strictly better informed than
        plan reuse for the same O(n)-per-sweep work, so the plan
        yields.  The plan's domain is the small-segment regime the
        per-batch gate would send scalar; there it probes, measures
        its own fused yield, and retires itself with exponential
        backoff when sweep locality (the tiled daemon's
        self-invalidating tiles) starves it.

        Per component, rows whose verdict is still covered (nothing
        that classification reads was written since the build) either
        apply their proven writes in one subset-indexed slice-store or
        hand the replay loop their planned flags; uncovered components
        replay the exact scalar body.  After the segment,
        :meth:`_invalidate` revokes only the verdicts each write can
        actually stale — per-train tree readers, graph-neighbour
        comparisons, graph-neighbour holds."""
        np = numpy_or_none()
        if np is None or not self.topo.offer(ctx_list):
            return False
        m = len(ctx_list)
        ema = self.seg_ema
        self.seg_ema = ema = m if ema is None else \
            0.05 * m + 0.95 * ema
        if self.plan_off_key == plan_key:
            return False
        epoch = self.store.stable_epoch + self.snap.stable_epoch
        plan = self.plan
        if plan is None or plan.key != plan_key:
            # sweep boundary: score the plan that just finished, then
            # commit this sweep to one tier
            if plan is not None and plan.srv >= 256:
                # break-even sits near one third fused: a high-yield
                # sweep triggers almost no refreshes, so its cost is
                # one build; below that the erosion-refresh cycle
                # outruns what reuse saves and the scalar replay of a
                # small sweep is simply cheaper
                if plan.fus * 3 < plan.srv:
                    self.plan_back = min(64, self.plan_back * 2)
                    self.plan_cool = self.plan_back
                else:
                    self.plan_back = 1
                    self.plan_cool = 0
            mb = self.MIN_BATCH if min_batch is None else min_batch
            if ema >= mb or self.plan_cool > 0:
                if ema < mb:
                    self.plan_cool -= 1
                self.plan = None
                self.plan_off_key = plan_key
                return False
        ia = np.fromiter((ctx._i for ctx in ctx_list), np.int64,
                         count=m)
        if plan is None or plan.key != plan_key or plan.epoch != epoch:
            plan = self._build_plan(np, plan_key, epoch, ia,
                                    np.fromiter(step_nos, np.int64,
                                                count=m))
        want = self.want
        nd = ~plan.done[ia]
        # refresh rather than decay: when invalidation has eroded this
        # segment's coverage below half, reclassify every remaining row
        # against the current registers (the frame part of the plan
        # survives).  Amortized over the rest of the sweep this is far
        # cheaper than replaying the uncovered rows scalar.
        cov = nd & plan.v_cmp[ia]
        for vt in plan.v_tr:
            cov &= vt[ia]
        if want:
            cov &= plan.v_held[ia]
        undone = len(plan.done) - int(plan.done.sum())
        if plan.refresh_left > 0 and \
                int(cov.sum()) * 2 < int(nd.sum()) and \
                undone >= max(64, len(plan.done) // 8):
            # budgeted: locality-heavy sweep orders (the tiled daemon)
            # re-erode every tile — past the budget, uncovered rows
            # just replay scalar rather than thrash reclassification
            plan.refresh_left -= 1
            self._classify_plan(np, plan)
            stats = _bulk_stats(self.proto)
            stats["plan_refreshes"] += 1
        vh = plan.v_held[ia] if want else None
        # trusted flags per component; train verdicts were proven
        # under the build's hold window (classify poisons triv with
        # held_ok), so a stale held untrusts the trains too
        tr_ok = []
        tsel = []
        for t in range(len(self.train_kerns)):
            ok = nd & plan.v_tr[t][ia]
            if vh is not None:
                ok &= vh
            tr_ok.append(ok)
            tsel.append(ok & plan.trivs[t][ia])
        c_ok = nd & plan.v_cmp[ia]
        csel = c_ok & plan.trivs[-1][ia]
        stats = _bulk_stats(self.proto)
        fused = nd & plan.base[ia] & csel
        for sel in tsel:
            fused &= sel
        # write detection beats prediction: snapshot the neighbour-read
        # columns of every row that MAY write one (scalar replays,
        # planned adopts, changing Want filings) and invalidate, after
        # the segment, only the rows that actually did — the bulk of
        # the sweep's writes (watchdogs, idempotent re-filings) stale
        # no verdict at all
        wmay = ~fused
        for t, sel in enumerate(tsel):
            wmay |= sel & plan.pub_tr[t][ia]
        pw = plan.pub_want
        if pw is not None:
            wmay |= csel & pw[ia]
        w_ia = ia[wmay]
        data = self.store.data
        before = None
        if len(w_ia):
            before = [[view64(data[h])[w_ia].copy() for h in cols]
                      for cols in self.chk_tr]
            if self.chk_want is not None:
                before.append(
                    [view64(data[self.chk_want])[w_ia].copy()])
        # every component's proven-trivial writes for still-covered
        # rows — exactly the legacy sweep's ``apply(triv)``: a row may
        # be residual overall yet have trivial components applied here
        # (the replay loop then skips them)
        for sel, apply in zip(tsel + [csel], plan.applies):
            if sel.any():
                apply(ia[sel])
        nf = int(fused.sum())
        plan.srv += m
        plan.fus += nf
        stats["rows_fused"] += nf
        if nf != m:
            h_ok = nd & vh & plan.held_ok[ia] if want else None
            self._replay_planned(np.flatnonzero(~fused), ia, ctx_list,
                                 step_nos, bgts, plan, tr_ok, tsel,
                                 c_ok, csel, h_ok, stats)
        plan.done[ia] = True
        if before is not None:
            self._invalidate(np, plan, w_ia, before)
        return True

    def _changed(self, np, w_ia, cols, before):
        """Rows of ``w_ia`` whose value in any of ``cols`` differs
        from the snapshot (boxed rows count as changed: the sentinel
        hides the side-table entry)."""
        chg = np.zeros(len(w_ia), bool)
        data = self.store.data
        overflow = self.store.overflow
        for h, b in zip(cols, before):
            chg |= view64(data[h])[w_ia] != b
            ovf = overflow[h]
            if ovf:
                chg |= np.isin(w_ia, np.fromiter(ovf, np.int64,
                                                 count=len(ovf)))
        return chg

    def _invalidate(self, np, plan, w_ia, before) -> None:
        """Revoke the verdicts a segment's actual writes stale.

        A train-t write at p (ep/act/bbuf/bseq moved) is read by the
        train-t classification of p's tree readers, by every graph
        neighbour's comparison (the broadcast slot is the show), and
        by p's own hold query.  A ``want`` write at p is read only by
        the neighbours' hold queries.  Everything else either tier
        writes is own-only, and p itself is done for the sweep."""
        topo = self.topo
        vc = plan.v_cmp
        vh = plan.v_held
        for t in range(len(self.train_kerns)):
            wt = w_ia[self._changed(np, w_ia, self.chk_tr[t],
                                    before[t])]
            if not len(wt):
                continue
            vt = plan.v_tr[t]
            vt[wt] = False
            off, src = self.readers[t]
            _, e_pos = csr_take(off, wt)
            vt[src[e_pos]] = False
            vc[wt] = False
            _, e_pos = csr_take(topo.off, wt)
            vc[topo.flat[e_pos]] = False
            if vh is not None:
                vh[wt] = False
        if vh is not None:
            wf = w_ia[self._changed(np, w_ia, (self.chk_want,),
                                    before[-1])]
            if len(wf):
                vh[wf] = False
                _, e_pos = csr_take(topo.off, wf)
                vh[topo.flat[e_pos]] = False

    def _replay_planned(self, resid, ia, ctx_list, step_nos, bgts,
                        plan, tr_ok, tsel, c_ok, csel, h_ok,
                        stats) -> None:
        """Replay a planned segment's non-fused rows — the exact
        ``run_bodies`` sequence, with the plan's verdicts trusted per
        component only where still covered."""
        proto = self.proto
        statics = proto._static_alarms
        budgets_for = proto.budgets_for
        se = proto.static_every
        tr0, tr1 = self.tr0, self.tr1
        comp_step = self.comp_step
        held = self.held
        want = self.want
        kerns = self.train_kerns
        b0a = plan.bc_dones[0]
        b1a = plan.bc_dones[1] if tr1 is not None else None
        p0 = plan.adopts[0]
        p1 = plan.adopts[1] if tr1 is not None else None
        htm, hbm = plan.holds
        ia_l = ia.tolist()
        t0l = tsel[0].tolist()
        k0l = tr_ok[0].tolist()
        t1l = tsel[1].tolist() if tr1 is not None else None
        k1l = tr_ok[1].tolist() if tr1 is not None else None
        tcl = csel.tolist()
        ckl = c_ok.tolist()
        hkl = h_ok.tolist() if h_ok is not None else None
        for k in resid.tolist():
            ctx = ctx_list[k]
            d = ia_l[k]
            step_no = step_nos[k]
            sentinel = ctx.stable_sentinel()
            first = statics(ctx, sentinel) if step_no % se == 0 else None
            cached = bgts[k]
            if isinstance(cached, tuple) and len(cached) == 2 and \
                    isinstance(cached[1], Budgets) and \
                    step_no - cached[0] < 32:
                budgets = cached[1]
            else:
                budgets = budgets_for(ctx, sentinel, step_no)
            trusted = ckl[k] or k0l[k] or (k1l is not None and k1l[k])
            if trusted:
                stats["rows_residual"] += 1
            else:
                stats["rows_scalar"] += 1
            t0 = t0l[k]
            tc = tcl[k]
            b0 = False
            ent0 = None
            if k0l[k]:
                b0 = bool(b0a[d])
                ent0 = p0.get(d)
            t1 = b1 = False
            ent1 = None
            if t1l is not None:
                t1 = t1l[k]
                if k1l[k]:
                    b1 = bool(b1a[d])
                    ent1 = p1.get(d)
            if want:
                if hkl[k]:
                    h0, h1 = bool(htm[d]), bool(hbm[d])
                else:
                    hlt, hlb = held(ctx)
                    h0, h1 = hlt is not None, hlb is not None
            else:
                h0 = h1 = False
            if not t0:
                a = tr0(ctx, budgets, h0 or b0, sentinel)
                if ent0 is not None and not h0:
                    kerns[0]._exec_adopt(ent0)
                if a and not first:
                    first = a
            if tr1 is not None and not t1:
                a = tr1(ctx, budgets, h1 or b1, sentinel)
                if ent1 is not None and not h1:
                    kerns[1]._exec_adopt(ent1)
                if a and not first:
                    first = a
            if not tc:
                a = comp_step(ctx, budgets, sentinel)
                if a and not first:
                    first = a
            if first:
                ctx.alarm(first[0])


class _SweepPlan:
    """One daemon sweep's persistent vector-tier state (built by
    :meth:`_VectorSweep._build_plan`, consumed per conflict-free
    segment by :meth:`_VectorSweep.run_planned`).

    ``done`` — rows already activated this sweep (a daemon covers
    each node at most once per sweep; the flag also hardens against a
    daemon that does not); ``base`` — statics proven silent and
    budget ghost valid at the predicted step; ``v_tr``/``v_cmp``/
    ``v_held`` — per-component validity: the verdict of that
    component for that row is exact until a register it reads is
    written (:meth:`_VectorSweep._invalidate`); ``pub_tr``/
    ``pub_want`` — rows whose *fused* step writes a register some
    neighbour's classification reads (adopt plans per train, Want
    filings).  The remaining fields are the per-component verdicts
    the replay loop consults, all indexed by dense row."""

    __slots__ = ("key", "epoch", "done", "base", "na", "aa", "sv",
                 "refresh_left", "srv", "fus", "trivs", "bc_dones",
                 "applies", "adopts", "holds", "held_ok", "v_tr",
                 "v_cmp", "v_held", "pub_tr", "pub_want")


class MstVerifierProtocol(Protocol):
    """The complete verifier of Sections 5–8."""

    def __init__(self, synchronous: bool = True,
                 comparison_mode: Optional[str] = None,
                 static_every: int = 1) -> None:
        self.synchronous = synchronous
        if comparison_mode is None:
            comparison_mode = MODE_SYNC_WINDOW if synchronous else MODE_WANT
        if synchronous and comparison_mode != MODE_SYNC_WINDOW:
            # want-modes also run under a synchronous scheduler (ablation)
            pass
        self.top = TrainComponent("top", REG_TOP_ROOT, REG_TOP_COUNT,
                                  REG_PIECES_TOP, synchronous)
        self.bottom = TrainComponent("bottom", REG_BOT_ROOT, REG_BOT_COUNT,
                                     REG_PIECES_BOT, synchronous)
        self.comparison = ComparisonComponent(self.top, self.bottom,
                                              comparison_mode)
        self.static_every = max(1, static_every)
        self.bind_registers(None)

    # ------------------------------------------------------------------
    def register_schema(self) -> RegisterSchema:
        schema = RegisterSchema()
        schema.declare(ALARM, "opaque", None)
        schema.declare(REG_VSTEP, "nat", 0)
        schema.declare(REG_BUDGET_CACHE, "opaque", None)
        declare_label_registers(schema)
        self.top.declare_registers(schema)
        self.bottom.declare_registers(schema)
        self.comparison.declare_registers(schema)
        return schema

    def bind_registers(self, compiled) -> None:
        """Resolve register handles and reset every cache derived from
        register contents.  Checkpoint restore leans on this contract:
        after :func:`repro.sim.snapshot.restore_run_state` swaps the
        registers wholesale it re-binds, and because the caches below
        are rebuilt lazily from (sentinel-validated) restored state the
        continuation is bit-for-bit the uninterrupted run's."""
        resolve = handle_resolver(compiled)
        self.h_alarm = resolve(ALARM)
        self.h_vstep = resolve(REG_VSTEP)
        self.h_bgt = resolve(REG_BUDGET_CACHE)
        self.top.bind_registers(compiled)
        self.bottom.bind_registers(compiled)
        self.comparison.bind_registers(compiled)
        # register files only: label-derived caches keyed by the closed
        # neighbourhood's stable-register version sentinel
        self._slot_bound = compiled is not None
        self._static_cache = {}
        self._budget_cache = {}
        # bulk plane: fused component closures, keyed on the ops object
        self._fused = None

    # ------------------------------------------------------------------
    def init_node(self, ctx: NodeContext) -> None:
        ctx.set(self.h_alarm, None)
        ctx.set(self.h_vstep, 0)
        self.top.init_node(ctx)
        self.bottom.init_node(ctx)
        self.comparison.init_node(ctx)

    # ------------------------------------------------------------------
    def budgets_for(self, ctx: NodeContext,
                    sentinel: Optional[int] = None,
                    step_no: Optional[int] = None) -> Budgets:
        """Label-driven budgets, cached in ghost state and refreshed
        periodically (they are pure functions of slowly changing labels).

        The ghost-register refresh cadence (every 32 steps) is identical
        under every storage; under register files/columns the
        recomputation at a refresh is additionally memoized on the label
        sentinel, so an unchanged neighbourhood never re-derives its
        budgets.  ``step_no`` lets :meth:`step` pass the counter it just
        advanced instead of re-reading the register."""
        cached = ctx.get(self.h_bgt)
        if step_no is None:
            step_no = ctx.nat(self.h_vstep, cap=1 << 30) or 0
        if isinstance(cached, tuple) and len(cached) == 2 and \
                isinstance(cached[1], Budgets) and step_no - cached[0] < 32:
            return cached[1]
        if sentinel is not None:
            ent = self._budget_cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                budgets = ent[1]
            else:
                budgets = node_budgets(ctx, self.synchronous)
                self._budget_cache[ctx.node] = (sentinel, budgets)
        else:
            budgets = node_budgets(ctx, self.synchronous)
        ctx.set(self.h_bgt, (step_no, budgets))
        return budgets

    def _static_alarms(self, ctx, sentinel: Optional[int]) -> List[str]:
        """The 1-round checks, recomputed only when a label in the closed
        neighbourhood changed (they are deterministic in exactly that
        scope, so an unchanged sentinel implies an unchanged verdict)."""
        if sentinel is None:
            return static_check(ctx)
        ent = self._static_cache.get(ctx.node)
        if ent is not None and ent[0] == sentinel:
            return ent[1]
        reasons = static_check(ctx)
        self._static_cache[ctx.node] = (sentinel, reasons)
        return reasons

    def step(self, ctx: NodeContext) -> None:
        step_no = (ctx.nat(self.h_vstep, cap=1 << 30) or 0) + 1
        ctx.set(self.h_vstep, step_no)
        sentinel = ctx.stable_sentinel() if self._slot_bound else None
        alarms: List[str] = []

        if step_no % self.static_every == 0:
            alarms.extend(self._static_alarms(ctx, sentinel))

        budgets = self.budgets_for(ctx, sentinel, step_no)
        held_top, held_bot = self.comparison.held_levels(ctx)
        alarms.extend(self.top.step(ctx, budgets,
                                    hold_broadcast=held_top is not None,
                                    sentinel=sentinel))
        alarms.extend(self.bottom.step(ctx, budgets,
                                       hold_broadcast=held_bot is not None,
                                       sentinel=sentinel))
        self.comparison.serve_turn(ctx)
        alarms.extend(self.comparison.step(ctx, budgets, sentinel))

        if alarms:
            ctx.alarm(alarms[0])

    # ------------------------------------------------------------------
    #: conflict-free asynchronous batches may fuse (the sweep handles
    #: the commuting gate/after contract; see repro.sim.bulk)
    bulk_conflict_free = True
    #: coalesced batches supported: the fused sweep drives segments
    #: strictly in order and replays ``boundary`` between them
    bulk_segments = True

    def bulk_step(self, batch) -> None:
        """One whole scheduler batch (the bulk-activation plane): the
        shared fused sweep over both trains when fusion is licensed —
        a synchronous columnar round, or a conflict-free asynchronous
        batch — and the generic per-node fallback driver otherwise
        (dict/schema storage, unlicensed live batches).
        See :func:`fused_verifier_sweep`."""
        ops = batch.ops
        if ops is None or not ops.fused or (
                not batch.conflict_free and
                (batch.gate is not None or batch.after is not None)):
            drive_batch(self.step, batch)
            return
        fused_verifier_sweep(self, batch, (self.top, self.bottom),
                             self.comparison)
