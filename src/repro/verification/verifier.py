"""The self-stabilizing MST verifier (Theorem 8.5) as one protocol.

Per activation, every node:

1. runs the 1-round static checks (Example SP/NumK, RS0–RS5, EPS0–EPS5,
   the partition fields) — these detect label corruption within one round
   of it becoming visible to a neighbour;
2. advances its two trains (Top and Bottom, multiplexed), including the
   rotation checks of Section 8 (cyclic order, per-rotation level
   coverage, piece counts, fragment-root identity);
3. advances the Ask/Show comparison mechanism with the minimality checks
   C1/C2 and the Claim-8.3 piece-agreement check.

The protocol is parameterized by the execution model:

* ``synchronous=True``  — timing budgets per Lemma 7.5; comparison mode
  defaults to the stateless window sampling (detection O(log^2 n));
* ``synchronous=False`` — budgets per Lemma 7.6; comparison mode defaults
  to the Want handshake (detection O(Delta log^3 n)); the ablation mode
  ``want-simple`` reproduces the O(Delta^2 log^3 n) variant.

Alarms latch in the ``alarm`` register with a reason string.
"""

from __future__ import annotations

from typing import List, Optional

from ..labels.registers import (REG_BOT_COUNT, REG_BOT_ROOT, REG_N,
                                REG_PIECES_BOT, REG_PIECES_TOP,
                                REG_TOP_COUNT, REG_TOP_ROOT)
from ..labels.wellforming import static_check
from ..sim.network import NodeContext, Protocol
from ..trains.budgets import Budgets, compute_budgets, node_budgets
from ..trains.comparison import (MODE_SYNC_WINDOW, MODE_WANT,
                                 MODE_WANT_SIMPLE, ComparisonComponent)
from ..trains.train import TrainComponent, _nat


class MstVerifierProtocol(Protocol):
    """The complete verifier of Sections 5–8."""

    def __init__(self, synchronous: bool = True,
                 comparison_mode: Optional[str] = None,
                 static_every: int = 1) -> None:
        self.synchronous = synchronous
        if comparison_mode is None:
            comparison_mode = MODE_SYNC_WINDOW if synchronous else MODE_WANT
        if synchronous and comparison_mode != MODE_SYNC_WINDOW:
            # want-modes also run under a synchronous scheduler (ablation)
            pass
        self.top = TrainComponent("top", REG_TOP_ROOT, REG_TOP_COUNT,
                                  REG_PIECES_TOP, synchronous)
        self.bottom = TrainComponent("bottom", REG_BOT_ROOT, REG_BOT_COUNT,
                                     REG_PIECES_BOT, synchronous)
        self.comparison = ComparisonComponent(self.top, self.bottom,
                                              comparison_mode)
        self.static_every = max(1, static_every)

    # ------------------------------------------------------------------
    def init_node(self, ctx: NodeContext) -> None:
        ctx.set("alarm", None)
        ctx.set("vstep", 0)
        self.top.init_node(ctx)
        self.bottom.init_node(ctx)
        self.comparison.init_node(ctx)

    # ------------------------------------------------------------------
    def budgets_for(self, ctx: NodeContext) -> Budgets:
        """Label-driven budgets, cached in ghost state and refreshed
        periodically (they are pure functions of slowly changing labels)."""
        cached = ctx.get("_bgt")
        step_no = _nat(ctx.get("vstep"), cap=1 << 30) or 0
        if isinstance(cached, tuple) and len(cached) == 2 and \
                isinstance(cached[1], Budgets) and step_no - cached[0] < 32:
            return cached[1]
        budgets = node_budgets(ctx, self.synchronous)
        ctx.set("_bgt", (step_no, budgets))
        return budgets

    def step(self, ctx: NodeContext) -> None:
        step_no = (_nat(ctx.get("vstep"), cap=1 << 30) or 0) + 1
        ctx.set("vstep", step_no)
        alarms: List[str] = []

        if step_no % self.static_every == 0:
            alarms.extend(static_check(ctx))

        budgets = self.budgets_for(ctx)
        held_top, held_bot = self.comparison.held_levels(ctx)
        alarms.extend(self.top.step(ctx, budgets,
                                    hold_broadcast=held_top is not None))
        alarms.extend(self.bottom.step(ctx, budgets,
                                       hold_broadcast=held_bot is not None))
        self.comparison.serve_turn(ctx)
        alarms.extend(self.comparison.step(ctx, budgets))

        if alarms:
            ctx.alarm(alarms[0])
