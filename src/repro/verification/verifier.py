"""The self-stabilizing MST verifier (Theorem 8.5) as one protocol.

Per activation, every node:

1. runs the 1-round static checks (Example SP/NumK, RS0–RS5, EPS0–EPS5,
   the partition fields) — these detect label corruption within one round
   of it becoming visible to a neighbour;
2. advances its two trains (Top and Bottom, multiplexed), including the
   rotation checks of Section 8 (cyclic order, per-rotation level
   coverage, piece counts, fragment-root identity);
3. advances the Ask/Show comparison mechanism with the minimality checks
   C1/C2 and the Claim-8.3 piece-agreement check.

The protocol is parameterized by the execution model:

* ``synchronous=True``  — timing budgets per Lemma 7.5; comparison mode
  defaults to the stateless window sampling (detection O(log^2 n));
* ``synchronous=False`` — budgets per Lemma 7.6; comparison mode defaults
  to the Want handshake (detection O(Delta log^3 n)); the ablation mode
  ``want-simple`` reproduces the O(Delta^2 log^3 n) variant.

Alarms latch in the ``alarm`` register with a reason string.

The protocol declares a register schema (labels, both trains, the
comparison mechanism, its own working registers), so the schedulers back
its networks with array-based register files by default; see
:mod:`repro.sim.registers`.
"""

from __future__ import annotations

from typing import List, Optional

from ..labels.registers import (REG_BOT_COUNT, REG_BOT_ROOT,
                                REG_PIECES_BOT, REG_PIECES_TOP,
                                REG_TOP_COUNT, REG_TOP_ROOT,
                                declare_label_registers)
from ..labels.wellforming import static_check
from ..sim.bulk import drive_batch
from ..sim.network import NodeContext, Protocol
from ..sim.npcolumnar import VecTopo, numpy_or_none
from ..sim.registers import ALARM, RegisterSchema, handle_resolver
from ..trains.budgets import Budgets, node_budgets
from ..trains.comparison import (MODE_SYNC_WINDOW, MODE_WANT,
                                 MODE_WANT_SIMPLE, ComparisonComponent)
from ..trains.train import TrainComponent

REG_VSTEP = "vstep"
REG_BUDGET_CACHE = "_bgt"


def fused_verifier_sweep(proto, batch, trains, comparison) -> None:
    """The shared fused bulk sweep of the train verifiers (the full
    verifier passes both trains, the hybrid only Top — one driver so
    the two sweeps cannot drift apart).

    With fused column ops licensed — a synchronous round on columnar
    storage, or an asynchronous conflict-free batch (live columns,
    ``batch.conflict_free``) — the step counters of the whole batch
    advance in one ``array('q')`` sweep, the budget ghost registers are
    gathered once per batch, and the per-node bodies run with the
    dispatch layers hoisted out of the loop: column-fused train and
    comparison steps (:meth:`TrainComponent.make_bulk_step
    <repro.trains.train.TrainComponent.make_bulk_step>`,
    :meth:`ComparisonComponent.make_bulk_sync
    <repro.trains.comparison.ComparisonComponent.make_bulk_sync>`, with
    scalar adapters where a component declines to fuse), no
    intermediate alarm-list splicing.  Everything executes the exact
    scalar ``step`` sequence per node — including the alarm priority
    order statics > trains in order > comparison — so the sweep is
    bit-for-bit equivalent (``tests/test_bulk_plane.py``).

    Conflict-free batches arrive with the scheduler's ``gate``/``after``
    callbacks, which the license makes commute across the batch (see
    :mod:`repro.sim.bulk`): the sweep runs every gate first, fuses over
    the gated survivors only (a skipped activation must not advance its
    step counter), sets each survivor's ``wrote`` flag (every stepped
    activation writes at least its counter — exactly the scalar
    outcome), and then runs every after in activation order.

    ``proto`` must carry the verifier-shaped surface: ``h_vstep``,
    ``h_bgt``, ``static_every``, ``_static_alarms``, ``budgets_for``,
    and the ``_fused`` closure cache (reset by ``bind_registers``).
    """
    ops = batch.ops
    contexts = batch.contexts
    se = proto.static_every
    statics = proto._static_alarms
    budgets_for = proto.budgets_for
    fused = proto._fused
    if fused is None or fused[0] is not ops:
        raw_steps = tuple(t.make_bulk_step(ops) for t in trains)
        steps = tuple(
            f if f is not None else
            (lambda ctx, b, h, s, _t=train: _t.step(ctx, b, h,
                                                    sentinel=s))
            for train, f in zip(trains, raw_steps))
        cmp_fused = comparison.make_bulk_sync(ops)
        if cmp_fused is None:
            cmp_fused = comparison.make_bulk_want(ops)
        comp_step = cmp_fused if cmp_fused is not None \
            else comparison.step
        held_fused = comparison.make_bulk_held(ops)
        held = held_fused if held_fused is not None \
            else comparison.held_levels
        # the vector tier sits strictly above full fusion: a numpy
        # store, numpy importable, every component fused, and a mode
        # whose per-node bodies the classifiers model (want-simple's
        # serialized server stays scalar)
        vec = None
        if (getattr(ops.store, "numpy_tier", False)
                and numpy_or_none() is not None
                and comparison.mode in (MODE_SYNC_WINDOW, MODE_WANT)
                and all(f is not None for f in raw_steps)
                and cmp_fused is not None
                and (comparison.mode == MODE_SYNC_WINDOW
                     or held_fused is not None)):
            vec = _VectorSweep(proto, trains, comparison, ops,
                               raw_steps, cmp_fused, held_fused)
        fused = proto._fused = (ops, steps, comp_step, held, vec)
    _, train_steps, comp_step, held, vec = fused
    sync_window = comparison.mode == MODE_SYNC_WINDOW
    # serve_turn acts only in the serialized want-simple ablation; the
    # per-node no-op call is hoisted out of the hot loop entirely
    serve = comparison.serve_turn \
        if comparison.mode == MODE_WANT_SIMPLE else None
    tr0 = train_steps[0]
    tr1 = train_steps[1] if len(train_steps) == 2 else None

    def run_bodies(ctx_list, step_nos, bgts):
        for k, ctx in enumerate(ctx_list):
            step_no = step_nos[k]
            sentinel = ctx.stable_sentinel()
            first = statics(ctx, sentinel) if step_no % se == 0 else None
            cached = bgts[k]
            if isinstance(cached, tuple) and len(cached) == 2 and \
                    isinstance(cached[1], Budgets) and \
                    step_no - cached[0] < 32:
                budgets = cached[1]
            else:
                budgets = budgets_for(ctx, sentinel, step_no)
            if sync_window:
                a = tr0(ctx, budgets, False, sentinel)
                if a and not first:
                    first = a
                if tr1 is not None:
                    a = tr1(ctx, budgets, False, sentinel)
                    if a and not first:
                        first = a
            else:
                ht, hb = held(ctx)
                a = tr0(ctx, budgets, ht is not None, sentinel)
                if a and not first:
                    first = a
                if tr1 is not None:
                    a = tr1(ctx, budgets, hb is not None, sentinel)
                    if a and not first:
                        first = a
                if serve is not None:
                    serve(ctx)
            a = comp_step(ctx, budgets, sentinel)
            if a and not first:
                first = a
            if first:
                ctx.alarm(first[0])

    gate = batch.gate
    after = batch.after
    if gate is None and after is None:
        step_nos = ops.inc_nat(batch, proto.h_vstep)
        batch.wrote_all = True
        bgts = ops.gather(batch, proto.h_bgt)
        if vec is None or \
                not vec.run(contexts, step_nos, bgts, run_bodies):
            run_bodies(contexts, step_nos, bgts)
        return
    # conflict-free batch: commuting gates first, fused sweep over the
    # survivors, afters last (in activation order)
    if gate is None:
        stepped = [True] * len(contexts)
    else:
        stepped = [gate(k, ctx) for k, ctx in enumerate(contexts)]
    active = [ctx for ctx, s in zip(contexts, stepped) if s]
    if active:
        store = ops.store
        idx = [ctx._i for ctx in active]
        step_nos = store.inc_nat_batch(idx, proto.h_vstep)
        bgts = store.gather_values(idx, proto.h_bgt)
        for ctx in active:
            # every stepped activation writes its step counter, so the
            # scalar loop would flag every survivor as having written
            ctx.wrote = True
        if vec is None or \
                not vec.run(active, step_nos, bgts, run_bodies):
            run_bodies(active, step_nos, bgts)
    if after is not None:
        for k, ctx in enumerate(contexts):
            after(k, ctx, stepped[k])


class _VectorSweep:
    """The numpy-tier whole-batch sweep behind
    :func:`fused_verifier_sweep`.

    Each component's classifier proves, per batch row, whether that
    component's fused step is exactly its masked column write(s) — no
    alarm, no transition.  Trivial (component, row) pairs get the
    write applied as one masked slice-store; the rest replay the exact
    scalar fused bodies, *per component*: a row whose top train is
    mid-transition still vectorizes its bottom train and comparison
    halves.  The replay loop mirrors ``run_bodies`` body for body
    (statics first, trains in order, comparison, alarm priority), so
    the sweep is bit-for-bit equivalent to the scalar path on every
    input, including planted junk; the split is conservative by
    construction (an unprovable pair is merely residual), and what
    varies with the input is only how much of the batch vectorizes.

    Per-row label-derived attributes (part topology, level rotations,
    static-check verdicts) rebuild when the joint stable epoch moves —
    the same sentinel discipline the scalar caches key on.  Budget
    thresholds come only from rows whose ghost budget cache is valid
    for this step; a stale row goes residual, where ``budgets_for``
    refreshes the ghost register exactly as the scalar sweep would.
    """

    #: below this many rows the classification overhead beats the
    #: savings (conflict-free batches are often small)
    MIN_BATCH = 48

    def __init__(self, proto, trains, comparison, ops,
                 raw_steps, cmp_fused, held_fused) -> None:
        self.proto = proto
        self.comparison = comparison
        self.store = ops.store
        self.snap = ops.snap
        self.topo = VecTopo(ops.store.n)
        self.train_kerns = tuple(
            t.make_vector_kernel(ops, self.topo) for t in trains)
        self.comp_kern = comparison.make_vector_kernel(ops, self.topo)
        self.tr0 = raw_steps[0]
        self.tr1 = raw_steps[1] if len(raw_steps) == 2 else None
        self.comp_step = cmp_fused
        self.held = held_fused
        self.want = comparison.mode == MODE_WANT
        self.key = None
        self.statics_empty = None
        self.row_of = None

    def _rebuild(self, np) -> None:
        proto = self.proto
        topo = self.topo
        n = topo.n
        statics_empty = np.zeros(n, bool)
        statics = proto._static_alarms
        for i in range(n):
            ctx = topo.ctxs[i]
            statics_empty[i] = \
                not statics(ctx, ctx.stable_sentinel())
        self.statics_empty = statics_empty
        for kern in self.train_kerns:
            kern.rebuild(np, topo)
        self.comp_kern.rebuild(np, topo)
        if self.row_of is None:
            self.row_of = np.empty(n, np.int64)
        self.key = self.store.stable_epoch + self.snap.stable_epoch

    def run(self, ctx_list, step_nos, bgts, run_bodies) -> bool:
        """Vector-sweep the batch; False defers it to the caller's
        scalar loop (numpy disabled, batch too small, or topology not
        yet fully observed)."""
        np = numpy_or_none()
        m = len(ctx_list)
        if np is None or m < self.MIN_BATCH:
            return False
        if not self.topo.offer(ctx_list):
            return False
        proto = self.proto
        key = self.store.stable_epoch + self.snap.stable_epoch
        if key != self.key:
            self._rebuild(np)
        ia = np.fromiter((ctx._i for ctx in ctx_list), np.int64,
                         count=m)
        row_of = self.row_of
        row_of[:] = -1
        row_of[ia] = np.arange(m, dtype=np.int64)
        stat_ok = self.statics_empty[ia].copy()
        se = proto.static_every
        if se > 1:
            snos = np.fromiter(step_nos, np.int64, count=m)
            stat_ok |= (snos % se) != 0
        # budget thresholds row by row (id-keying Budgets objects would
        # be unsound across gc reuse; the attribute reads are cheap)
        na = np.full(m, -1, np.int64)
        aa = np.full(m, -1, np.int64)
        sv = np.full(m, -1, np.int64)
        bgok = np.zeros(m, bool)
        for k in range(m):
            c = bgts[k]
            if isinstance(c, tuple) and len(c) == 2 and \
                    isinstance(c[1], Budgets) and \
                    step_nos[k] - c[0] < 32:
                b = c[1]
                bgok[k] = True
                na[k] = b.node_alarm
                aa[k] = b.ask_alarm
                sv[k] = b.service
        if self.want:
            held_ok, ht, hb = self.comp_kern.held(np, ia, row_of)
            holds = (ht, hb)
        else:
            held_ok = None
            holds = (False, False)
        trivs = []
        applies = []
        bc_dones = []
        adopts = []
        for kern, hold in zip(self.train_kerns, holds):
            triv, bc_done, apply, pend = kern.classify(np, ia, row_of,
                                                       na, hold)
            if held_ok is not None:
                # an unprovable hold flag poisons the train inputs
                triv &= held_ok
            trivs.append(triv)
            bc_dones.append(bc_done)
            applies.append(apply)
            adopts.append(pend)
        ctriv, capply = self.comp_kern.classify(np, ia, row_of, aa, sv)
        trivs.append(ctriv)
        applies.append(capply)
        any_triv = False
        full = stat_ok & bgok
        for triv in trivs:
            full &= triv
            any_triv = any_triv or triv.any()
        if not any_triv:
            run_bodies(ctx_list, step_nos, bgts)
            return True
        for triv, apply in zip(trivs, applies):
            apply(triv)
        if full.all():
            return True
        self._run_partial(np.flatnonzero(~full), ctx_list, step_nos,
                          bgts, trivs, bc_dones, adopts, holds,
                          held_ok)
        return True

    def _run_partial(self, resid, ctx_list, step_nos, bgts, trivs,
                     bc_dones, adopts, holds, held_ok) -> None:
        """Replay the scalar fused bodies for every non-trivial
        (component, row) pair — the exact ``run_bodies`` sequence with
        the already-applied components skipped."""
        proto = self.proto
        statics = proto._static_alarms
        budgets_for = proto.budgets_for
        se = proto.static_every
        tr0, tr1 = self.tr0, self.tr1
        comp_step = self.comp_step
        held = self.held
        want = self.want
        # plain-list views: per-element indexing of numpy bool arrays
        # costs more than the loop bodies it gates
        t0 = trivs[0].tolist()
        t1 = trivs[1].tolist() if tr1 is not None else None
        tc = trivs[-1].tolist()
        b0 = bc_dones[0].tolist()
        b1 = bc_dones[1].tolist() if tr1 is not None else None
        p0 = adopts[0]
        p1 = adopts[1] if tr1 is not None else None
        kerns = self.train_kerns
        htm, hbm = holds
        if want:
            held_ok = held_ok.tolist()
            htm = htm.tolist()
            hbm = hbm.tolist()
        for r in resid.tolist():
            k = r
            ctx = ctx_list[k]
            step_no = step_nos[k]
            sentinel = ctx.stable_sentinel()
            first = statics(ctx, sentinel) if step_no % se == 0 else None
            cached = bgts[k]
            if isinstance(cached, tuple) and len(cached) == 2 and \
                    isinstance(cached[1], Budgets) and \
                    step_no - cached[0] < 32:
                budgets = cached[1]
            else:
                budgets = budgets_for(ctx, sentinel, step_no)
            if want:
                if held_ok[k]:
                    h0, h1 = htm[k], hbm[k]
                else:
                    hlt, hlb = held(ctx)
                    h0, h1 = hlt is not None, hlb is not None
            else:
                h0 = h1 = False
            if not t0[k]:
                a = tr0(ctx, budgets, h0 or b0[k], sentinel)
                ent = p0.get(k)
                if ent is not None and not h0:
                    # the planned adopt lands after the prologue and
                    # convergecast, exactly where the scalar broadcast
                    # would have written it (a live hold cancels it,
                    # as it cancels the whole broadcast)
                    kerns[0]._exec_adopt(ent)
                if a and not first:
                    first = a
            if t1 is not None and not t1[k]:
                a = tr1(ctx, budgets, h1 or b1[k], sentinel)
                ent = p1.get(k)
                if ent is not None and not h1:
                    kerns[1]._exec_adopt(ent)
                if a and not first:
                    first = a
            if not tc[k]:
                a = comp_step(ctx, budgets, sentinel)
                if a and not first:
                    first = a
            if first:
                ctx.alarm(first[0])


class MstVerifierProtocol(Protocol):
    """The complete verifier of Sections 5–8."""

    def __init__(self, synchronous: bool = True,
                 comparison_mode: Optional[str] = None,
                 static_every: int = 1) -> None:
        self.synchronous = synchronous
        if comparison_mode is None:
            comparison_mode = MODE_SYNC_WINDOW if synchronous else MODE_WANT
        if synchronous and comparison_mode != MODE_SYNC_WINDOW:
            # want-modes also run under a synchronous scheduler (ablation)
            pass
        self.top = TrainComponent("top", REG_TOP_ROOT, REG_TOP_COUNT,
                                  REG_PIECES_TOP, synchronous)
        self.bottom = TrainComponent("bottom", REG_BOT_ROOT, REG_BOT_COUNT,
                                     REG_PIECES_BOT, synchronous)
        self.comparison = ComparisonComponent(self.top, self.bottom,
                                              comparison_mode)
        self.static_every = max(1, static_every)
        self.bind_registers(None)

    # ------------------------------------------------------------------
    def register_schema(self) -> RegisterSchema:
        schema = RegisterSchema()
        schema.declare(ALARM, "opaque", None)
        schema.declare(REG_VSTEP, "nat", 0)
        schema.declare(REG_BUDGET_CACHE, "opaque", None)
        declare_label_registers(schema)
        self.top.declare_registers(schema)
        self.bottom.declare_registers(schema)
        self.comparison.declare_registers(schema)
        return schema

    def bind_registers(self, compiled) -> None:
        """Resolve register handles and reset every cache derived from
        register contents.  Checkpoint restore leans on this contract:
        after :func:`repro.sim.snapshot.restore_run_state` swaps the
        registers wholesale it re-binds, and because the caches below
        are rebuilt lazily from (sentinel-validated) restored state the
        continuation is bit-for-bit the uninterrupted run's."""
        resolve = handle_resolver(compiled)
        self.h_alarm = resolve(ALARM)
        self.h_vstep = resolve(REG_VSTEP)
        self.h_bgt = resolve(REG_BUDGET_CACHE)
        self.top.bind_registers(compiled)
        self.bottom.bind_registers(compiled)
        self.comparison.bind_registers(compiled)
        # register files only: label-derived caches keyed by the closed
        # neighbourhood's stable-register version sentinel
        self._slot_bound = compiled is not None
        self._static_cache = {}
        self._budget_cache = {}
        # bulk plane: fused component closures, keyed on the ops object
        self._fused = None

    # ------------------------------------------------------------------
    def init_node(self, ctx: NodeContext) -> None:
        ctx.set(self.h_alarm, None)
        ctx.set(self.h_vstep, 0)
        self.top.init_node(ctx)
        self.bottom.init_node(ctx)
        self.comparison.init_node(ctx)

    # ------------------------------------------------------------------
    def budgets_for(self, ctx: NodeContext,
                    sentinel: Optional[int] = None,
                    step_no: Optional[int] = None) -> Budgets:
        """Label-driven budgets, cached in ghost state and refreshed
        periodically (they are pure functions of slowly changing labels).

        The ghost-register refresh cadence (every 32 steps) is identical
        under every storage; under register files/columns the
        recomputation at a refresh is additionally memoized on the label
        sentinel, so an unchanged neighbourhood never re-derives its
        budgets.  ``step_no`` lets :meth:`step` pass the counter it just
        advanced instead of re-reading the register."""
        cached = ctx.get(self.h_bgt)
        if step_no is None:
            step_no = ctx.nat(self.h_vstep, cap=1 << 30) or 0
        if isinstance(cached, tuple) and len(cached) == 2 and \
                isinstance(cached[1], Budgets) and step_no - cached[0] < 32:
            return cached[1]
        if sentinel is not None:
            ent = self._budget_cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                budgets = ent[1]
            else:
                budgets = node_budgets(ctx, self.synchronous)
                self._budget_cache[ctx.node] = (sentinel, budgets)
        else:
            budgets = node_budgets(ctx, self.synchronous)
        ctx.set(self.h_bgt, (step_no, budgets))
        return budgets

    def _static_alarms(self, ctx, sentinel: Optional[int]) -> List[str]:
        """The 1-round checks, recomputed only when a label in the closed
        neighbourhood changed (they are deterministic in exactly that
        scope, so an unchanged sentinel implies an unchanged verdict)."""
        if sentinel is None:
            return static_check(ctx)
        ent = self._static_cache.get(ctx.node)
        if ent is not None and ent[0] == sentinel:
            return ent[1]
        reasons = static_check(ctx)
        self._static_cache[ctx.node] = (sentinel, reasons)
        return reasons

    def step(self, ctx: NodeContext) -> None:
        step_no = (ctx.nat(self.h_vstep, cap=1 << 30) or 0) + 1
        ctx.set(self.h_vstep, step_no)
        sentinel = ctx.stable_sentinel() if self._slot_bound else None
        alarms: List[str] = []

        if step_no % self.static_every == 0:
            alarms.extend(self._static_alarms(ctx, sentinel))

        budgets = self.budgets_for(ctx, sentinel, step_no)
        held_top, held_bot = self.comparison.held_levels(ctx)
        alarms.extend(self.top.step(ctx, budgets,
                                    hold_broadcast=held_top is not None,
                                    sentinel=sentinel))
        alarms.extend(self.bottom.step(ctx, budgets,
                                       hold_broadcast=held_bot is not None,
                                       sentinel=sentinel))
        self.comparison.serve_turn(ctx)
        alarms.extend(self.comparison.step(ctx, budgets, sentinel))

        if alarms:
            ctx.alarm(alarms[0])

    # ------------------------------------------------------------------
    #: conflict-free asynchronous batches may fuse (the sweep handles
    #: the commuting gate/after contract; see repro.sim.bulk)
    bulk_conflict_free = True

    def bulk_step(self, batch) -> None:
        """One whole scheduler batch (the bulk-activation plane): the
        shared fused sweep over both trains when fusion is licensed —
        a synchronous columnar round, or a conflict-free asynchronous
        batch — and the generic per-node fallback driver otherwise
        (dict/schema storage, unlicensed live batches).
        See :func:`fused_verifier_sweep`."""
        ops = batch.ops
        if ops is None or not ops.fused or (
                not batch.conflict_free and
                (batch.gate is not None or batch.after is not None)):
            drive_batch(self.step, batch)
            return
        fused_verifier_sweep(self, batch, (self.top, self.bottom),
                             self.comparison)
