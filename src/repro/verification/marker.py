"""The distributed marker algorithm M (Sections 5.4 and 6.3).

``run_marker`` produces every label register of the proof labeling
scheme for a correct instance:

1. run SYNC_MST (the hierarchy H_M and candidate function chi_M);
2. the Example-SP / Example-NumK registers;
3. the hierarchy strings (Roots/EndP/Parents/Or-EndP, J-mask, delimiter);
4. both partitions, their EDIAM fields, and the DFS-placed pieces.

Construction-time accounting follows the paper: SYNC_MST costs O(n)
rounds (Theorem 4.4); the string assignment piggybacks on it (Lemma 5.4);
the partition construction and train initialization are Multi_Wave
executions plus DFS traversals, all O(n) (Claims 6.9/6.10) — the charged
total is Corollary 6.11's O(n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..graphs.spanning import RootedTree
from ..graphs.weighted import NodeId, WeightedGraph
from ..hierarchy.fragments import Hierarchy
from ..labels import registers as R
from ..labels.strings import compute_node_strings, levels_mask
from ..mst.sync_mst import SyncMstResult, run_sync_mst
from ..partition.distribution import PartitionLayout, build_partitions
from ..partition.multiwave import run_multi_wave


@dataclass
class MarkerOutput:
    """Labels plus the structures they were computed from."""

    tree: RootedTree
    hierarchy: Hierarchy
    layout: PartitionLayout
    labels: Dict[NodeId, Dict[str, Any]]
    construction_rounds: int


def assemble_labels(tree: RootedTree, hierarchy: Hierarchy,
                    layout: PartitionLayout) -> Dict[NodeId, Dict[str, Any]]:
    """All label registers for a given (tree, hierarchy, partitions)."""
    graph = tree.graph
    strings = compute_node_strings(hierarchy)
    sizes = tree.subtree_sizes()
    labels: Dict[NodeId, Dict[str, Any]] = {}
    for v in graph.nodes():
        parent = tree.parent[v]
        s = strings[v]
        top = layout.top_part_of[v]
        bot = layout.bottom_part_of[v]
        labels[v] = {
            R.REG_PARENT_ID: parent,
            R.REG_PARENT_PORT: None if parent is None else graph.port(v, parent),
            R.REG_TID: tree.root,
            R.REG_DIST: tree.depth[v],
            R.REG_N: graph.n,
            R.REG_SUBTREE: sizes[v],
            R.REG_ELL: hierarchy.height,
            R.REG_ROOTS: s.roots,
            R.REG_ENDP: s.endp,
            R.REG_PARENTS: s.parents,
            R.REG_ORENDP: s.orendp,
            R.REG_JMASK: levels_mask(s.roots),
            R.REG_DELIM: layout.delim[v],
            R.REG_TOP_ROOT: top.root,
            R.REG_TOP_DIST: tree.depth[v] - tree.depth[top.root],
            R.REG_TOP_BOUND: top.height,
            R.REG_TOP_COUNT: len(top.pieces),
            R.REG_BOT_ROOT: bot.root,
            R.REG_BOT_DIST: tree.depth[v] - tree.depth[bot.root],
            R.REG_BOT_BOUND: bot.height,
            R.REG_BOT_COUNT: len(bot.pieces),
            R.REG_PIECES_TOP: layout.node_pieces_top.get(v, ()),
            R.REG_PIECES_BOT: layout.node_pieces_bot.get(v, ()),
        }
    return labels


def run_marker(graph: WeightedGraph,
               sync_result: Optional[SyncMstResult] = None) -> MarkerOutput:
    """Run the full marker on a correct instance (the graph's MST)."""
    result = sync_result if sync_result is not None else run_sync_mst(graph)
    tree = result.tree
    hierarchy = result.hierarchy
    layout = build_partitions(hierarchy)
    labels = assemble_labels(tree, hierarchy, layout)

    # construction time: SYNC_MST + the SP/NumK waves + the partition
    # stages (Multi_Wave executions) + the DFS train initialization.
    mw = run_multi_wave(hierarchy)
    rounds = (result.rounds
              + 2 * (tree.height() + 1)       # SP/NumK aggregation
              + 4 * mw.pipelined_time         # classify/merge/split/notify
              + 2 * graph.n)                  # DFS piece placement
    return MarkerOutput(tree=tree, hierarchy=hierarchy, layout=layout,
                        labels=labels, construction_rounds=rounds)
