"""Experiment harness: completeness, detection time, detection distance.

The measurements behind Theorem 8.5:

* **completeness** — on a correct instance with correct labels the
  verifier stays silent for as long as we care to run it;
* **detection time** — after faults (or on an adversarially labeled
  non-MST) some node raises an alarm within O(log^2 n) synchronous rounds
  / O(Delta log^3 n) asynchronous rounds;
* **detection distance** — with f faulty nodes, every fault has an
  alarming node within O(f log n) hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..graphs.weighted import Edge, NodeId, WeightedGraph
from ..sim.faults import FaultInjector, detection_distance
from ..sim.network import Network, first_alarm
from ..sim.schedulers import (AsynchronousScheduler, Daemon,
                              SynchronousScheduler)
from ..trains.comparison import rotation_settled
from .marker import MarkerOutput, run_marker
from .verifier import MstVerifierProtocol


@dataclass
class DetectionResult:
    """Outcome of one verification run."""

    detected: bool
    rounds_to_detection: Optional[int]
    alarms: Dict[NodeId, str]
    detection_distance: Optional[int]
    max_memory_bits: int
    faulty_nodes: List[NodeId] = field(default_factory=list)


def make_network(graph: WeightedGraph,
                 marker: Optional[MarkerOutput] = None) -> Network:
    """A network with the marker's labels installed."""
    marker = run_marker(graph) if marker is None else marker
    network = Network(graph)
    network.install(marker.labels)
    return network


def _scheduler(network: Network, protocol: MstVerifierProtocol,
               daemon: Optional[Daemon]):
    if protocol.synchronous:
        return SynchronousScheduler(network, protocol)
    return AsynchronousScheduler(network, protocol, daemon)


def run_completeness(graph: WeightedGraph, rounds: int,
                     synchronous: bool = True,
                     comparison_mode: Optional[str] = None,
                     daemon: Optional[Daemon] = None,
                     marker: Optional[MarkerOutput] = None,
                     static_every: int = 1) -> DetectionResult:
    """Run the verifier on a correct instance; no alarm must ever fire."""
    network = make_network(graph, marker)
    protocol = MstVerifierProtocol(synchronous=synchronous,
                                   comparison_mode=comparison_mode,
                                   static_every=static_every)
    sched = _scheduler(network, protocol, daemon)
    sched.run(rounds, stop_when=first_alarm)
    alarms = network.alarms()
    return DetectionResult(
        detected=bool(alarms),
        rounds_to_detection=None,
        alarms=alarms,
        detection_distance=None,
        max_memory_bits=network.max_memory_bits(),
    )


def run_detection(graph: WeightedGraph,
                  inject: Callable[[Network, FaultInjector], None],
                  synchronous: bool = True,
                  comparison_mode: Optional[str] = None,
                  daemon: Optional[Daemon] = None,
                  marker: Optional[MarkerOutput] = None,
                  settle_rounds: Optional[int] = None,
                  max_rounds: int = 100_000,
                  seed: int = 0,
                  static_every: int = 1) -> DetectionResult:
    """Settle the verifier on a correct instance, inject faults, and
    measure the time and distance to the first alarm."""
    network = make_network(graph, marker)
    protocol = MstVerifierProtocol(synchronous=synchronous,
                                   comparison_mode=comparison_mode,
                                   static_every=static_every)
    sched = _scheduler(network, protocol, daemon)

    if settle_rounds is None:
        budgets = protocol.budgets_for(_first_ctx(network, protocol))
        settle_rounds = budgets.settle
    # steady state: every node completed at least one full Ask rotation
    # (tracked by ghost instrumentation) or the settle budget elapsed.
    sched.run(settle_rounds, stop_when=rotation_settled)
    if network.alarms():
        raise AssertionError(
            f"verifier alarmed on a correct instance: {network.alarms()}")

    injector = FaultInjector(network, seed=seed)
    inject(network, injector)

    rounds = sched.run(max_rounds, stop_when=first_alarm)
    alarms = network.alarms()
    return DetectionResult(
        detected=bool(alarms),
        rounds_to_detection=rounds if alarms else None,
        alarms=alarms,
        detection_distance=detection_distance(network,
                                              injector.faulty_nodes),
        max_memory_bits=network.max_memory_bits(),
        faulty_nodes=list(injector.faulty_nodes),
    )


def run_reject_instance(graph: WeightedGraph,
                        labels: Dict[NodeId, Dict[str, Any]],
                        synchronous: bool = True,
                        comparison_mode: Optional[str] = None,
                        daemon: Optional[Daemon] = None,
                        max_rounds: int = 100_000,
                        static_every: int = 1) -> DetectionResult:
    """Run the verifier on adversary-supplied labels from a cold start;
    measure the rounds until the first alarm."""
    network = Network(graph)
    network.install(labels)
    protocol = MstVerifierProtocol(synchronous=synchronous,
                                   comparison_mode=comparison_mode,
                                   static_every=static_every)
    sched = _scheduler(network, protocol, daemon)
    rounds = sched.run(max_rounds, stop_when=first_alarm)
    alarms = network.alarms()
    return DetectionResult(
        detected=bool(alarms),
        rounds_to_detection=rounds if alarms else None,
        alarms=alarms,
        detection_distance=None,
        max_memory_bits=network.max_memory_bits(),
    )


def _first_ctx(network: Network, protocol: MstVerifierProtocol):
    # storage-matched: the protocol may hold slot handles by now
    return network.local_context(network.graph.nodes()[0])
