"""The full self-stabilizing MST verifier (Theorem 8.5): the marker, the
verifier protocol, adversarial labelings, and the detection harness."""

from .marker import MarkerOutput, assemble_labels, run_marker
from .verifier import MstVerifierProtocol
from .adversary import (labels_for_claimed_tree, lie_about_used_piece,
                        swap_one_mst_edge, tree_only_subgraph)
from .detection import (DetectionResult, make_network, run_completeness,
                        run_detection, run_reject_instance)

__all__ = [
    "MarkerOutput", "assemble_labels", "run_marker",
    "MstVerifierProtocol",
    "labels_for_claimed_tree", "lie_about_used_piece",
    "swap_one_mst_edge", "tree_only_subgraph",
    "DetectionResult", "make_network", "run_completeness", "run_detection",
    "run_reject_instance",
]
