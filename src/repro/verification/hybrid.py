"""The hybrid scheme: faster, more local detection for more memory.

The paper notes (Section 1.3) that the detection time and detection
distance can be improved "at the expense of some increase in the
memory".  This module implements the natural middle point between the
O(log n)-bit train scheme and the O(log^2 n)-bit 1-round PLS:

* every node stores the pieces I(F) of its **bottom** fragments locally
  (there are at most ~log log n of them — fragment sizes double per
  level and bottom means below log n — so the extra memory is
  O(log n * log log n) bits);
* bottom levels are then verified **in one round**, sqlog-style, against
  the neighbours' replicated pieces (detection distance 1);
* the Bottom partition and its train disappear entirely; the Top train
  still rotates the top pieces, and the Ask cycle shrinks to the top
  levels only.

Result: bottom-fragment faults are detected in 1 round at distance <= 1;
top-level detection keeps the train scheme's O(log^2 n) bound with a
shorter rotation.  Benchmark E11 quantifies the trade.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..graphs.weighted import NodeId, WeightedGraph
from ..labels import registers as R
from ..labels.strings import ENDP_DOWN, ENDP_UP
from ..labels.wellforming import sorted_levels, static_check
from ..sim.bulk import drive_batch
from ..sim.network import NodeContext, Protocol
from ..sim.registers import ALARM, RegisterSchema, handle_resolver
from ..trains.budgets import Budgets, node_budgets
from ..trains.comparison import (MODE_SYNC_WINDOW, MODE_WANT,
                                 ComparisonComponent)
from ..trains.train import TrainComponent, _nat, valid_piece
from .marker import MarkerOutput, run_marker
from .verifier import (REG_BUDGET_CACHE, REG_VSTEP,
                       fused_verifier_sweep)

#: the replicated bottom pieces: tuple of (root, level, weight), sorted.
REG_OWN_BOT = "ownbot"


def hybrid_labels(marker: MarkerOutput) -> Dict[NodeId, Dict[str, Any]]:
    """Rewrite a marker output into hybrid labels.

    Bottom parts degenerate to empty singletons; every node gains the
    piece table of its own bottom fragments.
    """
    hierarchy = marker.hierarchy
    classes = marker.layout.classes
    labels: Dict[NodeId, Dict[str, Any]] = {}
    for v, regs in marker.labels.items():
        new = dict(regs)
        own = tuple(
            (f.root, f.level, f.candidate_weight)
            for f in hierarchy.fragments_of(v)
            if f in classes.bottom
        )
        new[REG_OWN_BOT] = own
        new[R.REG_BOT_ROOT] = v
        new[R.REG_BOT_DIST] = 0
        new[R.REG_BOT_BOUND] = 0
        new[R.REG_BOT_COUNT] = 0
        new[R.REG_PIECES_BOT] = ()
        labels[v] = new
    return labels


def run_hybrid_marker(graph: WeightedGraph) -> MarkerOutput:
    """The hybrid marker: the standard marker plus piece replication."""
    marker = run_marker(graph)
    return MarkerOutput(tree=marker.tree, hierarchy=marker.hierarchy,
                        layout=marker.layout,
                        labels=hybrid_labels(marker),
                        construction_rounds=marker.construction_rounds)


def _own_piece_at(pieces: Any, level: int):
    if not isinstance(pieces, tuple):
        return None
    for pc in pieces:
        if valid_piece(pc) and pc[1] == level:
            return pc
    return None


def check_bottom_levels(ctx) -> List[str]:
    """One-round verification of all bottom levels from replicated pieces.

    The sqlog-style comparisons of Section 8 restricted to the levels
    below the delimiter: root identity, C1 (candidate weight and
    outgoingness), C2 (no lighter outgoing edge), and member agreement.
    """
    bad: List[str] = []
    jmask = _nat(ctx.get(R.REG_JMASK))
    delim = _nat(ctx.get(R.REG_DELIM))
    roots = ctx.get(R.REG_ROOTS)
    endp = ctx.get(R.REG_ENDP)
    own = ctx.get(REG_OWN_BOT)
    if jmask is None or delim is None or not isinstance(roots, str) \
            or not isinstance(endp, str):
        return bad  # malformed bases are reported by the static checks
    levels = sorted_levels(jmask)[:delim]
    if not isinstance(own, tuple) or \
            sorted(pc[1] for pc in own if valid_piece(pc)) != levels:
        return ["HYB: replicated piece table does not match the bottom "
                "levels"]
    for level in levels:
        mine = _own_piece_at(own, level)
        assert mine is not None
        if level < len(roots) and roots[level] == "1" and \
                mine[0] != ctx.node:
            bad.append("HYB: bottom fragment root id mismatch")
        u0 = None
        if level < len(endp) and endp[level] == ENDP_UP:
            pid = ctx.get(R.REG_PARENT_ID)
            u0 = pid if pid in ctx.neighbors else None
        elif level < len(endp) and endp[level] == ENDP_DOWN:
            for c in ctx.neighbors:
                if ctx.read(c, R.REG_PARENT_ID) != ctx.node:
                    continue
                cp = ctx.read(c, R.REG_PARENTS)
                if isinstance(cp, str) and level < len(cp) and \
                        cp[level] == "1":
                    u0 = c
                    break
        if u0 is not None and mine[2] != ctx.weight(u0):
            bad.append("HYB C1: claimed minimum differs from the "
                       "candidate weight")
        for u in ctx.neighbors:
            other = _own_piece_at(ctx.read(u, REG_OWN_BOT), level)
            if other is not None and other[0] == mine[0]:
                if tuple(other) != tuple(mine):
                    bad.append("HYB AGREE: same fragment, different piece")
                if u == u0:
                    bad.append("HYB C1: candidate edge is internal")
            else:
                w_hat = mine[2]
                if w_hat is None:
                    bad.append("HYB C2: bottom fragment without a minimum")
                    continue
                try:
                    lighter = ctx.weight(u) < w_hat
                except TypeError:
                    bad.append("HYB C2: incomparable weights")
                    continue
                if lighter:
                    bad.append("HYB C2: outgoing edge lighter than the "
                               "claimed minimum")
    return bad


class HybridVerifierProtocol(Protocol):
    """Top train + local bottom checks (the memory/time knob)."""

    def __init__(self, synchronous: bool = True,
                 comparison_mode: Optional[str] = None,
                 static_every: int = 1) -> None:
        self.synchronous = synchronous
        if comparison_mode is None:
            comparison_mode = MODE_SYNC_WINDOW if synchronous else MODE_WANT
        self.top = TrainComponent("top", R.REG_TOP_ROOT, R.REG_TOP_COUNT,
                                  R.REG_PIECES_TOP, synchronous)
        # the bottom train exists only as an inert observer target; its
        # part registers are degenerate singletons with zero pieces.
        self.bottom = TrainComponent("bottom", R.REG_BOT_ROOT,
                                     R.REG_BOT_COUNT, R.REG_PIECES_BOT,
                                     synchronous)
        self.comparison = ComparisonComponent(self.top, self.bottom,
                                              comparison_mode,
                                              only_top=True)
        self.static_every = max(1, static_every)
        self.bind_registers(None)

    def register_schema(self) -> RegisterSchema:
        schema = RegisterSchema()
        schema.declare(ALARM, "opaque", None)
        schema.declare(REG_VSTEP, "nat", 0)
        schema.declare(REG_BUDGET_CACHE, "opaque", None)
        R.declare_label_registers(schema)
        schema.declare(REG_OWN_BOT, "tuple", None, stable=True)
        self.top.declare_registers(schema)
        self.bottom.declare_registers(schema)
        self.comparison.declare_registers(schema)
        return schema

    def bind_registers(self, compiled) -> None:
        """See :meth:`MstVerifierProtocol.bind_registers`: besides
        resolving handles this must reset every register-derived cache —
        snapshot restore re-binds after replacing the registers."""
        resolve = handle_resolver(compiled)
        self.h_alarm = resolve(ALARM)
        self.h_vstep = resolve(REG_VSTEP)
        self.h_bgt = resolve(REG_BUDGET_CACHE)
        self.top.bind_registers(compiled)
        self.bottom.bind_registers(compiled)
        self.comparison.bind_registers(compiled)
        # register files only: label-derived caches (see the verifier)
        self._slot_bound = compiled is not None
        self._static_cache = {}
        self._budget_cache = {}
        # bulk plane: fused component closures, keyed on the ops object
        self._fused = None

    def init_node(self, ctx: NodeContext) -> None:
        ctx.set(self.h_alarm, None)
        ctx.set(self.h_vstep, 0)
        self.top.init_node(ctx)
        self.bottom.init_node(ctx)
        self.comparison.init_node(ctx)

    def budgets_for(self, ctx: NodeContext,
                    sentinel: Optional[int] = None,
                    step_no: Optional[int] = None) -> Budgets:
        cached = ctx.get(self.h_bgt)
        if step_no is None:
            step_no = ctx.nat(self.h_vstep, cap=1 << 30) or 0
        if isinstance(cached, tuple) and len(cached) == 2 and \
                isinstance(cached[1], Budgets) and step_no - cached[0] < 32:
            return cached[1]
        if sentinel is not None:
            ent = self._budget_cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                budgets = ent[1]
            else:
                budgets = node_budgets(ctx, self.synchronous)
                self._budget_cache[ctx.node] = (sentinel, budgets)
        else:
            budgets = node_budgets(ctx, self.synchronous)
        ctx.set(self.h_bgt, (step_no, budgets))
        return budgets

    def _static_alarms(self, ctx, sentinel: Optional[int]) -> List[str]:
        """Static + replicated-bottom checks: both are deterministic in
        the closed neighbourhood's labels (incl. ``ownbot``), so they are
        recomputed only when the stable sentinel moves."""
        if sentinel is None:
            return static_check(ctx) + check_bottom_levels(ctx)
        ent = self._static_cache.get(ctx.node)
        if ent is not None and ent[0] == sentinel:
            return ent[1]
        reasons = static_check(ctx) + check_bottom_levels(ctx)
        self._static_cache[ctx.node] = (sentinel, reasons)
        return reasons

    def step(self, ctx: NodeContext) -> None:
        step_no = (ctx.nat(self.h_vstep, cap=1 << 30) or 0) + 1
        ctx.set(self.h_vstep, step_no)
        sentinel = ctx.stable_sentinel() if self._slot_bound else None
        alarms: List[str] = []
        if step_no % self.static_every == 0:
            alarms.extend(self._static_alarms(ctx, sentinel))
        budgets = self.budgets_for(ctx, sentinel, step_no)
        held_top, _held_bot = self.comparison.held_levels(ctx)
        alarms.extend(self.top.step(ctx, budgets,
                                    hold_broadcast=held_top is not None,
                                    sentinel=sentinel))
        self.comparison.serve_turn(ctx)
        alarms.extend(self.comparison.step(ctx, budgets, sentinel))
        if alarms:
            ctx.alarm(alarms[0])

    #: conflict-free asynchronous batches may fuse (see repro.sim.bulk)
    bulk_conflict_free = True
    #: coalesced batches supported: the shared fused sweep drives
    #: segments in order and replays ``boundary`` between them
    bulk_segments = True

    def bulk_step(self, batch) -> None:
        """Bulk-activation sweep: the shared fused verifier sweep with
        only the Top train (bottom levels verify inside the static
        phase via the replicated pieces), fused under either license —
        synchronous columnar rounds or conflict-free asynchronous
        batches; see
        :func:`repro.verification.verifier.fused_verifier_sweep` for
        the fusion licenses and equivalence contract."""
        ops = batch.ops
        if ops is None or not ops.fused or (
                not batch.conflict_free and
                (batch.gate is not None or batch.after is not None)):
            drive_batch(self.step, batch)
            return
        fused_verifier_sweep(self, batch, (self.top,), self.comparison)
