"""Adversarial label assignments for soundness experiments.

The verifier must reject *any* label assignment when the represented
subgraph is not an MST (Section 2.4's second property).  Random
corruption is easy to detect; the strongest consistent adversary labels a
**non-minimum spanning tree as if it were correct**: it slices the wrong
tree into a perfectly legal hierarchy (running the SYNC_MST merging with
the outgoing-edge search restricted to tree edges), assigns all strings,
partitions and pieces honestly for that hierarchy, and claims each
fragment's minimum outgoing weight to be the candidate's weight.

Every static check and every train check passes on such labels; only the
minimality comparisons (C2 — some cross-fragment non-tree edge is lighter
than a claimed minimum) can expose the lie, which is exactly the paper's
point: Well-Forming is 1-round verifiable, Minimality needs the trains.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Set, Tuple

from ..graphs.spanning import RootedTree
from ..graphs.weighted import Edge, NodeId, WeightedGraph, edge_key
from ..hierarchy.fragments import Fragment, Hierarchy
from ..mst.sync_mst import run_sync_mst
from ..partition.distribution import build_partitions
from .marker import MarkerOutput, assemble_labels


def tree_only_subgraph(graph: WeightedGraph,
                       tree_edges: Iterable[Edge]) -> WeightedGraph:
    """The subgraph containing only the candidate tree's edges."""
    sub = WeightedGraph()
    for v in graph.nodes():
        sub.add_node(v)
    for (u, v) in tree_edges:
        sub.add_edge(u, v, graph.weight(u, v))
    return sub


def labels_for_claimed_tree(graph: WeightedGraph,
                            tree_edges: Set[Edge]) -> MarkerOutput:
    """Honest-looking labels for an arbitrary spanning tree of ``graph``.

    When ``tree_edges`` is the MST this coincides with the real marker;
    when it is not, the result is the strongest consistent adversary.
    """
    sub = tree_only_subgraph(graph, tree_edges)
    result = run_sync_mst(sub)

    # rebuild the tree and hierarchy over the *real* graph (ports differ)
    tree = RootedTree(graph, result.tree.root, result.tree.parent)
    fragments = [
        Fragment(root=f.root, level=f.level, nodes=f.nodes,
                 candidate_edge=f.candidate_edge,
                 candidate_weight=f.candidate_weight)
        for f in result.hierarchy.fragments
    ]
    hierarchy = Hierarchy(tree, fragments)
    layout = build_partitions(hierarchy)
    labels = assemble_labels(tree, hierarchy, layout)
    return MarkerOutput(tree=tree, hierarchy=hierarchy, layout=layout,
                        labels=labels,
                        construction_rounds=result.rounds)


def swap_one_mst_edge(graph: WeightedGraph,
                      mst_edges: Set[Edge],
                      seed_edge: Optional[Edge] = None) -> Optional[Set[Edge]]:
    """A spanning tree differing from the MST by one edge swap (heavier
    non-tree edge replacing a tree edge on its cycle), or None when the
    graph is itself a tree."""
    root = graph.nodes()[0]
    tree = RootedTree.from_edges(graph, mst_edges, root)
    for u, v, w in sorted(graph.edges(), key=lambda e: e[2]):
        e = edge_key(u, v)
        if e in mst_edges or (seed_edge is not None and e != seed_edge):
            continue
        path = tree.tree_path(u, v)
        # drop the heaviest tree edge on the cycle, add (u, v)
        heaviest = max(zip(path, path[1:]),
                       key=lambda ab: graph.weight(ab[0], ab[1]))
        swapped = set(mst_edges)
        swapped.remove(edge_key(*heaviest))
        swapped.add(e)
        return swapped
    return None


def heavier_weight(w: Any) -> Any:
    """A strictly heavier weight comparable with ``w`` under the
    graph's total order.  Numeric weights bump by one; the
    lexicographic tuple weights of :mod:`repro.graphs.weights` (the
    Section-9 subdivided instances use them) gain a suffix, which makes
    the tuple strictly greater while staying comparable; ``None`` (a
    whole-tree fragment claiming no outgoing edge) becomes the lightest
    concrete claim."""
    if isinstance(w, tuple):
        return w + (1,)
    return (w or 0) + 1


def lie_about_used_piece(network, injector) -> None:
    """Increase the claimed minimum-outgoing weight of a stored piece
    whose fragment is guaranteed to be observed — the hardest detectable
    fault class (only the train comparisons can catch it).

    Bottom-partition pieces describe fragments contained in the storing
    part, so their members rotate past the lie every cycle; a corrupted
    *top* piece can be dead data when its fragment does not intersect the
    storing part (the parts store whole ancestor chains — see
    Section 6.3.7), which would be correctly accepted.  Raises
    ``LookupError`` when the labels store no pieces at all.
    """
    from ..labels import registers as R

    for reg in (R.REG_PIECES_BOT, R.REG_PIECES_TOP):
        for v in network.graph.nodes():
            pieces = network.registers[v].get(reg) or ()
            if pieces:
                z, lvl, w = pieces[0]
                injector.corrupt_register(
                    v, reg,
                    ((z, lvl, heavier_weight(w)),) + tuple(pieces[1:]))
                return
    raise LookupError("no stored piece found to corrupt")
