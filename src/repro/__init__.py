"""repro — reproduction of Korman, Kutten & Masuzawa (PODC 2011):
"Fast and compact self-stabilizing verification, computation, and fault
detection of an MST".

Public API highlights
---------------------
* :mod:`repro.graphs` — weighted graphs, generators, reference MSTs, the
  exact Figure-1/Table-2 instance.
* :mod:`repro.sim` — the shared-memory network simulator (synchronous and
  asynchronous schedulers, fault injection, memory accounting).
* :mod:`repro.mst` — SYNC_MST (O(n) time, O(log n) bits) and baselines.
* :mod:`repro.labels` — 1-proof labeling schemes and the hierarchy strings.
* :mod:`repro.partition` — Top/Bottom partitions and piece distribution.
* :mod:`repro.trains` — trains and the Ask/Show comparison mechanism.
* :mod:`repro.verification` — the full self-stabilizing MST verifier.
* :mod:`repro.selfstab` — the transformer and self-stabilizing MST.
* :mod:`repro.baselines` — the O(log^2 n) 1-PLS and other comparators.
* :mod:`repro.lowerbound` — the Section-9 reduction machinery.
"""

__version__ = "1.0.0"
