"""Fragment hierarchies: laminar families of subtrees with candidate
functions (Definitions 5.1/5.2 and Lemma 5.1)."""

from .fragments import (Fragment, FragmentId, Hierarchy,
                        minimum_outgoing_edge, outgoing_edges)

__all__ = [
    "Fragment", "FragmentId", "Hierarchy",
    "minimum_outgoing_edge", "outgoing_edges",
]
