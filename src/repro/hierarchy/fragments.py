"""Fragments and fragment hierarchies (Definitions 5.1, 5.2).

A *fragment* is a connected subtree of the spanning tree ``T``.  The
fragments produced by SYNC_MST form a *laminar family* organized in a
*hierarchy tree* H: ``T`` is the root, the singletons are the leaves, and a
fragment's children are the fragments that merged to form it.

The fragment *root* is the node of the fragment closest to the root of
``T`` (its apex); the fragment identity of the paper is
``ID(F) = (ID(root(F)), level(F))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..graphs.spanning import RootedTree
from ..graphs.weighted import Edge, GraphError, NodeId, WeightedGraph, edge_key

FragmentId = Tuple[NodeId, int]


@dataclass(eq=False)
class Fragment:
    """One fragment of the hierarchy.

    ``candidate_edge`` is oriented ``(inside, outside)``: the first endpoint
    belongs to the fragment; it is ``None`` exactly for the whole tree.
    Fragments hash by identity so they can live in sets and dict keys.
    """

    root: NodeId
    level: int
    nodes: FrozenSet[NodeId]
    candidate_edge: Optional[Tuple[NodeId, NodeId]] = None
    candidate_weight: Optional[object] = None
    parent: Optional["Fragment"] = field(default=None, repr=False)
    children: List["Fragment"] = field(default_factory=list, repr=False)

    @property
    def fragment_id(self) -> FragmentId:
        """The paper's ID(F) = ID(root) composed with the level."""
        return (self.root, self.level)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def is_singleton(self) -> bool:
        return len(self.nodes) == 1

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Fragment(root={self.root}, level={self.level}, "
                f"size={self.size})")


def outgoing_edges(graph: WeightedGraph,
                   nodes: FrozenSet[NodeId]) -> List[Tuple[NodeId, NodeId, object]]:
    """All graph edges with exactly one endpoint in ``nodes``, oriented
    (inside, outside, weight)."""
    out = []
    for u in nodes:
        for v in graph.neighbors(u):
            if v not in nodes:
                out.append((u, v, graph.weight(u, v)))
    return out


def minimum_outgoing_edge(graph: WeightedGraph, nodes: FrozenSet[NodeId]):
    """The minimum outgoing edge of a node set as (inside, outside, weight),
    or None when the set has no outgoing edge (spans the graph)."""
    best = None
    for u, v, w in outgoing_edges(graph, nodes):
        if best is None or w < best[2]:
            best = (u, v, w)
    return best


class Hierarchy:
    """A hierarchy H for ``T`` (Definition 5.1) with a candidate function.

    Invariants validated by :meth:`validate`:

    1. ``T`` is in H, and for every node there is a singleton fragment.
    2. Laminarity: any two fragments are nested or disjoint.
    3. Every non-root fragment has a candidate edge, and every fragment is
       precisely the union of its children's node sets, connected through
       the children's candidate edges (Definition 5.2).
    """

    def __init__(self, tree: RootedTree, fragments: Iterable[Fragment]) -> None:
        self.tree = tree
        self.graph = tree.graph
        self.fragments: List[Fragment] = sorted(
            fragments, key=lambda f: (f.level, f.root))
        self._by_node: Dict[NodeId, List[Fragment]] = {
            v: [] for v in self.graph.nodes()}
        for frag in self.fragments:
            for v in frag.nodes:
                self._by_node[v].append(frag)
        for v in self._by_node:
            self._by_node[v].sort(key=lambda f: f.level)
        self._link_parents()

    # ------------------------------------------------------------------
    def _link_parents(self) -> None:
        """Wire parent/children pointers by minimal strict superset."""
        for frag in self.fragments:
            frag.children = []
            frag.parent = None
        for frag in self.fragments:
            best: Optional[Fragment] = None
            for other in self._by_node[frag.root]:
                if other is frag:
                    continue
                if frag.nodes < other.nodes:
                    if best is None or other.nodes < best.nodes or \
                            (len(other.nodes) < len(best.nodes)):
                        best = other
            frag.parent = best
            if best is not None:
                best.children.append(frag)
        for frag in self.fragments:
            frag.children.sort(key=lambda f: (f.level, f.root))

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """The level of the whole-tree fragment (the paper's ell)."""
        return max(f.level for f in self.fragments)

    @property
    def whole_tree_fragment(self) -> Fragment:
        top = [f for f in self.fragments if len(f.nodes) == self.graph.n]
        if len(top) != 1:
            raise GraphError("hierarchy lacks a unique whole-tree fragment")
        return top[0]

    def fragments_of(self, node: NodeId) -> List[Fragment]:
        """All fragments containing ``node``, by increasing level."""
        return list(self._by_node[node])

    def fragment_at_level(self, node: NodeId, level: int) -> Optional[Fragment]:
        """The level-``level`` fragment containing ``node`` (or None —
        nodes may skip levels, cf. the '*' entries of the Roots strings)."""
        for frag in self._by_node[node]:
            if frag.level == level:
                return frag
        return None

    def levels_of(self, node: NodeId) -> List[int]:
        """The set J(v) of levels at which ``node`` has a fragment."""
        return [f.level for f in self._by_node[node]]

    def by_level(self, level: int) -> List[Fragment]:
        return [f for f in self.fragments if f.level == level]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise GraphError when any Definition 5.1/5.2 invariant fails."""
        nodes = set(self.graph.nodes())
        whole = self.whole_tree_fragment  # raises when absent
        singles = {next(iter(f.nodes)) for f in self.fragments if f.is_singleton()}
        if singles != nodes:
            raise GraphError("missing singleton fragments")
        # laminarity
        for i, f1 in enumerate(self.fragments):
            for f2 in self.fragments[i + 1:]:
                inter = f1.nodes & f2.nodes
                if inter and not (f1.nodes <= f2.nodes or f2.nodes <= f1.nodes):
                    raise GraphError(
                        f"fragments {f1.fragment_id} and {f2.fragment_id} "
                        "violate laminarity")
        # roots are apexes
        for frag in self.fragments:
            apex = min(frag.nodes, key=lambda v: self.tree.depth[v])
            if apex != frag.root:
                raise GraphError(f"fragment {frag.fragment_id} root is not "
                                 "its node closest to the tree root")
        # candidate function: E(F) = { chi(F') : F' strictly inside F }
        for frag in self.fragments:
            if frag is whole:
                if frag.candidate_edge is not None:
                    raise GraphError("whole-tree fragment has a candidate")
                continue
            if frag.candidate_edge is None:
                raise GraphError(f"fragment {frag.fragment_id} lacks candidate")
            u, v = frag.candidate_edge
            if u not in frag.nodes or v in frag.nodes:
                raise GraphError(f"candidate of {frag.fragment_id} not outgoing")
        for frag in self.fragments:
            if frag.is_singleton():
                continue
            internal = {
                edge_key(a, b)
                for a in frag.nodes
                for b in self.tree.children[a]
                if b in frag.nodes
            }
            child_candidates = set()
            for strict in self.fragments:
                if strict.nodes < frag.nodes and strict.candidate_edge:
                    child_candidates.add(edge_key(*strict.candidate_edge))
            if internal != child_candidates:
                raise GraphError(
                    f"fragment {frag.fragment_id}: edges != union of strict "
                    "descendants' candidates (Definition 5.2)")

    def verify_minimality(self) -> bool:
        """Lemma 5.1: every candidate is a minimum outgoing edge.

        Together with a validated hierarchy this implies T is an MST.
        """
        whole = self.whole_tree_fragment
        for frag in self.fragments:
            if frag is whole:
                continue
            mo = minimum_outgoing_edge(self.graph, frag.nodes)
            assert mo is not None
            if frag.candidate_edge is None:
                return False
            u, v = frag.candidate_edge
            if self.graph.weight(u, v) != mo[2]:
                return False
        return True
