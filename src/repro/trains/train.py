"""The train mechanism (Section 7.1) as a per-node protocol component.

One :class:`TrainComponent` instance drives one partition's train at every
node (the verifier composes two: Top and Bottom, multiplexed).  Per node
the component keeps O(log n) bits:

Convergecast (the two-car pipeline of the Train Convergecast Protocol):

* ``<p>out``  — the outgoing car: ``(seq, piece)`` or None;
* ``<p>src``  — DFS source pointer: own stored pieces first, then the
  part children in port order;
* ``<p>cyc``  — the convergecast cycle the node is serving (mod 64);
* ``<p>done`` — set to the cycle id when the node's subtree finished;
* ``<p>act``  — which child is currently active, ``(child, cyc)``;
* ``<p>tak``  — ack register: the ``(child, seq)`` last consumed.

Broadcast (pipelined flooding with membership flags, Section 7.1):

* ``<p>bseq`` / ``<p>bbuf`` — the broadcast slot: current ``(piece, flag)``
  and its sequence number; a node adopts its part parent's slot when all
  of its own part children caught up — the neighbours' *Show* of
  Section 7.2 is exactly this slot;
* ``<p>seen`` — levels of flagged pieces seen in the current rotation;
* ``<p>last`` / ``<p>cnt`` / ``<p>sync`` — rotation-boundary detection
  ((level, root) must increase lexicographically within a rotation),
  piece count, and the synced-once latch;
* ``<p>wd`` / ``<p>ep`` — watchdog counter and reset epoch.

Self-stabilization: the part root resets the train (epoch bump, adopted
downward) when a rotation exceeds its budget — corrupted *dynamic* state
heals silently; corrupted *labels* keep starving the nodes whose larger
alarm budgets then fire (Section 8's detection).

Register handles: every register the component touches is resolved once
by :meth:`TrainComponent.bind_registers` — to its name string under the
legacy dict storage, or to its integer slot index under a compiled
register schema — so the per-step code performs no string concatenation
or repeated name hashing, and numeric reads go through the context's
write-time-cached ``nat`` coercion.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..labels.registers import (REG_DELIM, REG_JMASK, REG_PARENT_ID,
                                REG_ROOTS)
from ..labels.wellforming import level_is_bottom, sorted_levels
from ..sim.columnar import BOX_S, NONE_S, PoolColumn, SENT_CEIL
from ..sim.registers import NO_DECODE, UNSET, handle_resolver
from .budgets import Budgets, compute_budgets

SEQ_MOD = 64
_NAT_CAP = 1 << 30


def _nat(x: Any, cap: int = 1 << 30) -> Optional[int]:
    """x as a bounded non-negative int, else None."""
    if isinstance(x, int) and not isinstance(x, bool) and 0 <= x <= cap:
        return x
    return None


def valid_piece(piece: Any) -> bool:
    """Shape check for a piece (root, level, weight)."""
    return (isinstance(piece, tuple) and len(piece) == 3
            and isinstance(piece[0], int) and not isinstance(piece[0], bool)
            and isinstance(piece[1], int) and not isinstance(piece[1], bool)
            and 0 <= piece[1] <= 256)


def piece_key(piece: Tuple) -> Tuple[int, int]:
    """The cyclic ordering key (level, root) of a piece."""
    return (piece[1], piece[0])


@dataclass
class TrainObservation:
    """What the comparison layer reads off a neighbour's broadcast slot.

    Instances may be shared across reads (the register file caches the
    decoded observation per broadcast-slot write): treat as read-only.
    """

    piece: Tuple
    flag: bool


def decode_observation(buf: Any) -> Optional[TrainObservation]:
    """Validate and parse a broadcast slot; the slot's decode function
    (run once per write under register files)."""
    if isinstance(buf, tuple) and len(buf) == 2 and valid_piece(buf[0]):
        return TrainObservation(piece=buf[0], flag=bool(buf[1]))
    return None


def _decode_car(out: Any) -> Optional[Tuple]:
    """Validate a convergecast car ``(seq, piece)``; None when malformed."""
    if isinstance(out, tuple) and len(out) == 2 and valid_piece(out[1]):
        return out
    return None


#: the component's dynamic registers: (suffix, kind, init-default).
#: ``seq`` is declared but deliberately *not* initialized by
#: ``init_node`` (the convergecast writes it on first use) — keeping the
#: mapping contents identical to the historical dict behaviour.
#: The pipeline's tuple-valued registers (cars, broadcast slots, acks,
#: rotation keys) are declared ``tuple``: a columnar store then interns
#: them — a piece circulating a part is one pool entry plus int ids,
#: and its validated decode is memoized per value instead of per node.
_DYNAMIC_DECLS = (
    ("out", "tuple", None),
    ("src", "nat", 0),
    ("cyc", "nat", 0),
    ("done", "nat", None),
    ("act", "tuple", None),
    ("tak", "tuple", None),
    ("bseq", "nat", 0),
    ("bbuf", "tuple", None),
    ("seen", "nat", 0),
    ("last", "tuple", None),
    ("cnt", "nat", 0),
    ("sync", "opaque", False),
    ("wd", "nat", 0),
    ("ep", "nat", 0),
)

_SEQ_DECL = ("seq", "nat", 0)


class TrainComponent:
    """One partition's train at every node.  ``kind`` is 'top'/'bottom'."""

    def __init__(self, kind: str, reg_root: str, reg_count: str,
                 reg_pieces: str, synchronous: bool) -> None:
        self.kind = kind
        self.p = "tt_" if kind == "top" else "bt_"
        self.reg_root = reg_root
        self.reg_count = reg_count
        self.reg_pieces = reg_pieces
        self.synchronous = synchronous
        self.bind_registers(None)

    # -- register helpers ------------------------------------------------
    def r(self, name: str) -> str:
        return self.p + name

    def declare_registers(self, schema) -> None:
        """Declare this train's dynamic registers (labels are declared
        by the owning protocol)."""
        for suffix, kind, default in _DYNAMIC_DECLS + (_SEQ_DECL,):
            schema.declare(self.p + suffix, kind, default)

    def bind_registers(self, compiled) -> None:
        """Resolve register handles: names (``compiled=None``) or slots."""
        resolve = handle_resolver(compiled)
        p = self.p
        self.h_out = resolve(p + "out")
        self.h_src = resolve(p + "src")
        self.h_cyc = resolve(p + "cyc")
        self.h_done = resolve(p + "done")
        self.h_act = resolve(p + "act")
        self.h_tak = resolve(p + "tak")
        self.h_seq = resolve(p + "seq")
        self.h_bseq = resolve(p + "bseq")
        self.h_bbuf = resolve(p + "bbuf")
        self.h_seen = resolve(p + "seen")
        self.h_last = resolve(p + "last")
        self.h_cnt = resolve(p + "cnt")
        self.h_sync = resolve(p + "sync")
        self.h_wd = resolve(p + "wd")
        self.h_ep = resolve(p + "ep")
        self.h_root = resolve(self.reg_root)
        self.h_count = resolve(self.reg_count)
        self.h_pieces = resolve(self.reg_pieces)
        self.h_pid = resolve(REG_PARENT_ID)
        self.h_roots = resolve(REG_ROOTS)
        self.h_jmask = resolve(REG_JMASK)
        self.h_delim = resolve(REG_DELIM)
        # init_node's write sequence, in the historical order
        self._init_pairs = tuple(
            (resolve(p + suffix), default)
            for suffix, _kind, default in _DYNAMIC_DECLS)
        # label-derived cache: node -> (stable sentinel, (parent,
        # children, own pieces, count claim, needed mask)).  Only used
        # under register files, where the sentinel detects label writes.
        self._label_cache = {}
        self._cur_needed: Optional[int] = None

    def init_node(self, ctx) -> None:
        for handle, default in self._init_pairs:
            ctx.set(handle, default)

    # -- topology inside the part ----------------------------------------
    def part_root_id(self, ctx) -> Optional[int]:
        root = ctx.get(self.h_root)
        return root if isinstance(root, int) else None

    def part_parent(self, ctx) -> Optional[int]:
        pid = ctx.get(self.h_pid)
        if pid is None or pid not in ctx.neighbors:
            return None
        if ctx.read(pid, self.h_root) == ctx.get(self.h_root):
            return pid
        return None

    def part_children(self, ctx) -> List[int]:
        me = ctx.node
        mine = ctx.get(self.h_root)
        h_pid = self.h_pid
        h_root = self.h_root
        read = ctx.read
        return [c for c in ctx.neighbors
                if read(c, h_pid) == me and read(c, h_root) == mine]

    def own_pieces(self, ctx) -> Tuple:
        pieces = ctx.get(self.h_pieces)
        if not isinstance(pieces, tuple):
            return ()
        return tuple(pc for pc in pieces if valid_piece(pc))

    def is_part_root(self, ctx) -> bool:
        return self.part_parent(ctx) is None

    # -- membership flags (Section 7.1) -----------------------------------
    def membership_flag(self, ctx, piece: Tuple, parent_flag: bool) -> bool:
        """Whether this node belongs to the fragment the piece describes."""
        z, level, _w = piece
        roots = ctx.get(self.h_roots)
        jmask = ctx.nat(self.h_jmask) or 0
        delim = ctx.nat(self.h_delim) or 0
        if not isinstance(roots, str) or level >= len(roots):
            return False
        want_bottom = (self.kind == "bottom")
        cls = level_is_bottom(jmask, delim, level)
        if cls is None or cls != want_bottom:
            return False
        if self.kind == "top":
            # Claim 6.3: at most one top fragment per level crosses a part.
            return True
        if roots[level] == "1":
            return z == ctx.node
        if roots[level] == "0":
            return bool(parent_flag)
        return False

    def needed_mask(self, ctx) -> int:
        """Levels this node must see flagged in this train's rotations."""
        jmask = ctx.nat(self.h_jmask) or 0
        delim = ctx.nat(self.h_delim) or 0
        levels = sorted_levels(jmask)
        mask = 0
        for i, j in enumerate(levels):
            if (i < delim) == (self.kind == "bottom"):
                mask |= 1 << j
        return mask

    # -- epochs / reset ----------------------------------------------------
    def _reset_dynamic(self, ctx, epoch: int) -> None:
        self.init_node(ctx)
        ctx.set(self.h_ep, epoch % SEQ_MOD)

    # -- the per-activation step -------------------------------------------
    def step(self, ctx, budgets: Budgets,
             hold_broadcast: bool = False,
             sentinel: Optional[int] = None) -> List[str]:
        """Advance the train by one atomic step; returns alarm reasons.

        ``hold_broadcast`` freezes this node's broadcast slot for one step
        (the Want-mode server delaying the train, Section 7.2.2); the
        convergecast keeps flowing.

        ``sentinel`` (register files only) is the closed neighbourhood's
        stable-register version: the part topology, own pieces, count
        claim, and needed mask are pure functions of labels, so they are
        recomputed only when the sentinel moves — never per step.
        """
        alarms: List[str] = []
        if sentinel is not None:
            ent = self._label_cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                parent, children, own, count_claim, needed = ent[1]
            else:
                parent = self.part_parent(ctx)
                children = self.part_children(ctx)
                own = self.own_pieces(ctx)
                count_claim = ctx.nat(self.h_count, cap=4096)
                needed = self.needed_mask(ctx)
                self._label_cache[ctx.node] = (
                    sentinel, (parent, children, own, count_claim, needed))
            self._cur_needed = needed
        else:
            parent = self.part_parent(ctx)
            children = self.part_children(ctx)
            own = self.own_pieces(ctx)
            count_claim = ctx.nat(self.h_count, cap=4096)
            needed = None
            self._cur_needed = None

        # --- epoch adoption (train self-stabilization) --------------------
        if parent is not None:
            pep = ctx.read_nat(parent, self.h_ep, cap=SEQ_MOD)
            if pep is not None and pep != ctx.get(self.h_ep):
                self._reset_dynamic(ctx, pep)
                return alarms

        # --- watchdogs -----------------------------------------------------
        idle = (count_claim == 0 and
                (needed if needed is not None
                 else self.needed_mask(ctx)) == 0)
        if not idle:
            wd = (ctx.nat(self.h_wd) or 0) + 1
            ctx.set(self.h_wd, wd)
            if parent is None and wd > 0 and wd % budgets.root_reset == 0:
                # the part root restarts a wedged train
                new_ep = ((ctx.nat(self.h_ep, cap=SEQ_MOD) or 0) + 1) % SEQ_MOD
                self._reset_dynamic(ctx, new_ep)
                ctx.set(self.h_wd, wd)  # keep counting toward the alarm
                return alarms
            if wd > budgets.node_alarm:
                alarms.append(f"{self.kind}-train: no good rotation within "
                              "budget (missing levels, wrong piece count, "
                              "or a starved train)")
                ctx.set(self.h_wd, 0)

        self._step_convergecast(ctx, parent, children, own)
        if not hold_broadcast:
            alarms.extend(
                self._step_broadcast(ctx, parent, children, count_claim))
        return alarms

    # -- convergecast -----------------------------------------------------
    def _step_convergecast(self, ctx, parent, children, own) -> None:
        me = ctx.node
        cyc = ctx.nat(self.h_cyc, cap=SEQ_MOD) or 0

        if parent is not None:
            pact = ctx.read(parent, self.h_act)
            if not (isinstance(pact, tuple) and len(pact) == 2
                    and pact[0] == me):
                return  # not my turn in the parent's DFS
            new_cyc = _nat(pact[1], cap=SEQ_MOD)
            if new_cyc is None:
                return
            if new_cyc != cyc:
                # a fresh DFS visit: restart my subtree's delivery
                ctx.set(self.h_cyc, new_cyc)
                ctx.set(self.h_src, 0)
                ctx.set(self.h_done, None)
                ctx.set(self.h_act, None)
                cyc = new_cyc
            if ctx.get(self.h_done) == cyc:
                return  # finished; wait for the next visit

        out = ctx.get(self.h_out)
        if out is not None and ctx.get_decoded(self.h_out, _decode_car) \
                is None:
            ctx.set(self.h_out, None)
            out = None

        # ack: the parent consumed my outgoing car
        if out is not None and parent is not None:
            ptak = ctx.read(parent, self.h_tak)
            if isinstance(ptak, tuple) and len(ptak) == 2 and \
                    ptak[0] == me and ptak[1] == out[0]:
                ctx.set(self.h_out, None)
                out = None

        if out is not None:
            return  # still waiting for the car to be consumed

        src = ctx.nat(self.h_src, cap=4096)
        if src is None:
            src = 0
        seq = ((ctx.nat(self.h_seq, cap=SEQ_MOD) or 0) + 1) % SEQ_MOD

        if src < len(own):
            ctx.set(self.h_out, (seq, own[src]))
            ctx.set(self.h_seq, seq)
            ctx.set(self.h_src, src + 1)
            return

        child_idx = src - len(own)
        while child_idx < len(children):
            child = children[child_idx]
            ctx.set(self.h_act, (child, cyc))
            cdone = ctx.read(child, self.h_done)
            cout = ctx.read_decoded(child, self.h_out, _decode_car)
            if cout is not None:
                tak = ctx.get(self.h_tak)
                if tak != (child, cout[0]):
                    # take the child's piece into my outgoing car
                    ctx.set(self.h_out, (seq, cout[1]))
                    ctx.set(self.h_seq, seq)
                    ctx.set(self.h_tak, (child, cout[0]))
                    return
            if cdone == cyc:
                child_idx += 1
                ctx.set(self.h_src, len(own) + child_idx)
                continue
            return  # wait for this child

        # all sources exhausted: subtree finished for this cycle
        ctx.set(self.h_act, None)
        if parent is not None:
            ctx.set(self.h_done, cyc)
        else:
            ctx.set(self.h_cyc, (cyc + 1) % SEQ_MOD)
            ctx.set(self.h_src, 0)

    # -- broadcast ----------------------------------------------------------
    def _step_broadcast(self, ctx, parent, children, count_claim) -> List[str]:
        alarms: List[str] = []
        bseq = ctx.nat(self.h_bseq, cap=SEQ_MOD) or 0

        # children must catch up before this node's slot may change
        for c in children:
            if ctx.read(c, self.h_bseq) != bseq:
                return alarms

        new_slot = None
        if parent is None:
            out = ctx.get_decoded(self.h_out, _decode_car)
            if out is not None:
                piece = out[1]
                flag = self.membership_flag(ctx, piece, parent_flag=False)
                new_slot = (piece, flag)
                ctx.set(self.h_out, None)  # the broadcast consumed the car
        else:
            pseq = ctx.read_nat(parent, self.h_bseq, cap=SEQ_MOD)
            pobs = ctx.read_decoded(parent, self.h_bbuf, decode_observation)
            if pseq is not None and pseq != bseq and pobs is not None:
                piece = pobs.piece
                flag = self.membership_flag(ctx, piece, pobs.flag)
                new_slot = (piece, flag)
                bseq = (pseq - 1) % SEQ_MOD  # will advance to pseq below

        if new_slot is None:
            return alarms

        piece, flag = new_slot
        ctx.set(self.h_bbuf, (piece, flag))
        ctx.set(self.h_bseq, (bseq + 1) % SEQ_MOD)
        alarms.extend(self._account_piece(ctx, piece, flag, count_claim))
        return alarms

    # -- rotation accounting (cycle-set checks of Section 8) ---------------
    def _account_piece(self, ctx, piece, flag, count_claim) -> List[str]:
        alarms: List[str] = []
        key = piece_key(piece)
        last = ctx.get(self.h_last)
        boundary = (isinstance(last, tuple) and key <= tuple(last)) \
            if last is not None else False

        roots = ctx.get(self.h_roots)
        level = piece[1]
        if flag and isinstance(roots, str) and level < len(roots):
            if roots[level] == "1" and piece[0] != ctx.node:
                alarms.append(f"{self.kind}-train: fragment root id mismatch")
            if roots[level] == "0" and piece[0] == ctx.node:
                alarms.append(f"{self.kind}-train: member claims to be "
                              "the fragment root")

        if boundary:
            # A rotation only placates the watchdog when it is *good*:
            # correct piece count and full coverage of this node's levels.
            # Transient corruption of the pipeline produces bad rotations
            # for at most O(root_reset) rounds before the part root's
            # epoch reset repairs it (Observation 8.1); persistently bad
            # rotations — wrong labels — starve the watchdog until the
            # node_alarm budget fires (Claim 8.2's detection).
            good = True
            if ctx.get(self.h_sync):
                needed = self._cur_needed if self._cur_needed is not None \
                    else self.needed_mask(ctx)
                seen = ctx.nat(self.h_seen) or 0
                if needed & ~seen:
                    good = False
                cnt = ctx.nat(self.h_cnt, cap=1 << 20) or 0
                if count_claim is not None and cnt != count_claim:
                    good = False
            ctx.set(self.h_sync, True)
            ctx.set(self.h_seen, (1 << level) if flag else 0)
            ctx.set(self.h_cnt, 1)
            if good:
                ctx.set(self.h_wd, 0)
        else:
            if flag:
                ctx.set(self.h_seen, (ctx.nat(self.h_seen) or 0) | (1 << level))
            ctx.set(self.h_cnt, (ctx.nat(self.h_cnt, cap=1 << 20) or 0) + 1)
        ctx.set(self.h_last, key)
        return alarms

    # -- what neighbours see (Show) ----------------------------------------
    def observe(self, ctx, neighbor: int) -> Optional[TrainObservation]:
        """The neighbour's current broadcast slot, if well-formed."""
        return ctx.read_decoded(neighbor, self.h_bbuf, decode_observation)

    def own_show(self, ctx) -> Optional[TrainObservation]:
        """This node's own broadcast slot (its train's current piece)."""
        return ctx.get_decoded(self.h_bbuf, decode_observation)

    # -- the bulk-activation plane (repro.sim.bulk) ------------------------
    def make_bulk_step(self, ops):
        """A column-fused variant of :meth:`step` for the bulk plane.

        Returns a closure ``fused(ctx, budgets, hold_broadcast,
        sentinel) -> List[str]`` that executes the exact scalar step —
        same control flow, same junk coercions, same writes in the same
        order — with every context accessor inlined to direct column
        indexing against ``ops.store``/``ops.snap``.  Licensed only by
        fused ops (synchronous batches: neighbour reads hit the
        snapshot, no mid-batch aborts); returns None when the layout is
        not the expected columnar one, so callers fall back to the
        scalar :meth:`step`.

        Write tracking: fused writes mark columns dirty but skip the
        per-context ``wrote`` flag — the calling protocol's bulk sweep
        declares ``batch.wrote_all`` instead (every batch node's step
        counter advances, so the scalar path marks every node too).
        Equivalence is proven by ``tests/test_bulk_plane.py`` (full
        register traces, including planted junk in nat/tuple columns).
        """
        if not getattr(ops, "fused", False) or type(self.h_out) is not int:
            return None
        store = ops.store
        snap = ops.snap
        data = store.data
        sdata = snap.data
        h_out, h_src, h_cyc = self.h_out, self.h_src, self.h_cyc
        h_done, h_act, h_tak, h_seq = (self.h_done, self.h_act,
                                       self.h_tak, self.h_seq)
        h_bseq, h_bbuf, h_seen = self.h_bseq, self.h_bbuf, self.h_seen
        h_last, h_cnt, h_sync = self.h_last, self.h_cnt, self.h_sync
        h_wd, h_ep, h_roots = self.h_wd, self.h_ep, self.h_roots
        nat_slots = (h_src, h_cyc, h_done, h_seq, h_bseq, h_seen, h_cnt,
                     h_wd, h_ep)
        pool_slots = (h_out, h_act, h_tak, h_bbuf, h_last, h_roots)
        stable = store.schema.stable_mask
        if any(type(data[h]) is not array for h in nat_slots) or \
                any(type(data[h]) is not PoolColumn for h in pool_slots) \
                or type(data[h_sync]) is not list or \
                any(stable[h] for h in nat_slots + pool_slots[:-1]) or \
                stable[h_sync]:
            return None
        out_col, src_col, cyc_col = data[h_out], data[h_src], data[h_cyc]
        done_col, act_col, tak_col = data[h_done], data[h_act], data[h_tak]
        seq_col, bseq_col, bbuf_col = (data[h_seq], data[h_bseq],
                                       data[h_bbuf])
        seen_col, last_col, cnt_col = (data[h_seen], data[h_last],
                                       data[h_cnt])
        sync_col, wd_col, ep_col = data[h_sync], data[h_wd], data[h_ep]
        roots_col = data[h_roots]
        s_ep, s_act, s_tak = sdata[h_ep], sdata[h_act], sdata[h_tak]
        s_done, s_out, s_bseq = sdata[h_done], sdata[h_out], sdata[h_bseq]
        s_bbuf = sdata[h_bbuf]
        index = store.index
        pool = store.pool_values
        overflow = store.overflow
        soverflow = snap.overflow
        decoded = store.decoded
        none_decode = store.none_decode  # shared with the snapshot
        memos = store.decode_memo        # shared with the snapshot
        memo_for = store.memo_for
        intern = store.intern
        box = store._box
        dc = store.dirty_cols
        cache = self._label_cache
        kind = self.kind

        # fused writes: per-column nat writers from the store (the one
        # source of truth for the array-write encoding) plus the pooled
        # branch of ctx.set, minus handle dispatch and per-context
        # wrote flags (see the write-tracking note above)
        w_cyc = store.make_nat_writer(h_cyc)
        w_src = store.make_nat_writer(h_src)
        w_done = store.make_nat_writer(h_done)
        w_seq = store.make_nat_writer(h_seq)
        w_bseq = store.make_nat_writer(h_bseq)
        w_seen = store.make_nat_writer(h_seen)
        w_cnt = store.make_nat_writer(h_cnt)
        w_wd = store.make_nat_writer(h_wd)

        def _wpool(col, h, i, val):
            ovf = overflow[h]
            if ovf:
                ovf.pop(i, None)
            if val is None:
                col[i] = NONE_S
            else:
                try:
                    col[i] = intern(val)
                except TypeError:       # unhashable adversarial junk
                    col[i] = box(h, i, val)
            dc[h] = 1

        def conv(ctx, i, parent, children, own):
            # _step_convergecast with inlined column access
            me = ctx.node
            v = cyc_col[i]
            cyc = v if 0 <= v <= SEQ_MOD else 0
            if parent is not None:
                pj = index[parent]
                v = s_act[pj]
                pact = pool[v] if v > SENT_CEIL else (
                    soverflow[h_act][pj] if v == BOX_S else None)
                if not (isinstance(pact, tuple) and len(pact) == 2
                        and pact[0] == me):
                    return
                new_cyc = _nat(pact[1], cap=SEQ_MOD)
                if new_cyc is None:
                    return
                if new_cyc != cyc:
                    w_cyc(i, new_cyc)
                    w_src(i, 0)
                    w_done(i, None)
                    _wpool(act_col, h_act, i, None)
                    cyc = new_cyc
                v = done_col[i]
                done = v if v > SENT_CEIL else (
                    overflow[h_done][i] if v == BOX_S else None)
                if done == cyc:
                    return
            v = out_col[i]
            out = pool[v] if v > SENT_CEIL else (
                overflow[h_out][i] if v == BOX_S else None)
            if out is not None:
                if v >= 0:
                    m = memos[h_out]
                    try:
                        d = m[v]
                    except (TypeError, IndexError):
                        d = NO_DECODE
                    if d is NO_DECODE:
                        d = _decode_car(pool[v])
                        memo_for(h_out, v)[v] = d
                else:
                    d = _decode_car(out)
                if d is None:
                    _wpool(out_col, h_out, i, None)
                    out = None
            if out is not None and parent is not None:
                v = s_tak[pj]
                ptak = pool[v] if v > SENT_CEIL else (
                    soverflow[h_tak][pj] if v == BOX_S else None)
                if isinstance(ptak, tuple) and len(ptak) == 2 and \
                        ptak[0] == me and ptak[1] == out[0]:
                    _wpool(out_col, h_out, i, None)
                    out = None
            if out is not None:
                return
            v = src_col[i]
            src = v if 0 <= v <= 4096 else 0
            v = seq_col[i]
            seq = ((v if 0 <= v <= SEQ_MOD else 0) + 1) % SEQ_MOD
            if src < len(own):
                _wpool(out_col, h_out, i, (seq, own[src]))
                w_seq(i, seq)
                w_src(i, src + 1)
                return
            child_idx = src - len(own)
            while child_idx < len(children):
                child = children[child_idx]
                _wpool(act_col, h_act, i, (child, cyc))
                cj = index[child]
                v = s_done[cj]
                cdone = v if v > SENT_CEIL else (
                    soverflow[h_done][cj] if v == BOX_S else None)
                v = s_out[cj]
                if v >= 0:
                    m = memos[h_out]
                    try:
                        cout = m[v]
                    except (TypeError, IndexError):
                        cout = NO_DECODE
                    if cout is NO_DECODE:
                        cout = _decode_car(pool[v])
                        memo_for(h_out, v)[v] = cout
                elif v == BOX_S:
                    cout = _decode_car(soverflow[h_out][cj])
                else:
                    cout = none_decode[h_out]
                    if cout is NO_DECODE:
                        cout = none_decode[h_out] = _decode_car(None)
                if cout is not None:
                    v = tak_col[i]
                    tak = pool[v] if v > SENT_CEIL else (
                        overflow[h_tak][i] if v == BOX_S else None)
                    if tak != (child, cout[0]):
                        _wpool(out_col, h_out, i, (seq, cout[1]))
                        w_seq(i, seq)
                        _wpool(tak_col, h_tak, i, (child, cout[0]))
                        return
                if cdone == cyc:
                    child_idx += 1
                    w_src(i, len(own) + child_idx)
                    continue
                return
            _wpool(act_col, h_act, i, None)
            if parent is not None:
                w_done(i, cyc)
            else:
                w_cyc(i, (cyc + 1) % SEQ_MOD)
                w_src(i, 0)

        def account(ctx, i, piece, flag, count_claim):
            # _account_piece with inlined column access
            alarms = []
            level = piece[1]
            key = (level, piece[0])
            v = last_col[i]
            last = pool[v] if v > SENT_CEIL else (
                overflow[h_last][i] if v == BOX_S else None)
            boundary = (isinstance(last, tuple) and key <= tuple(last)) \
                if last is not None else False
            v = roots_col[i]
            roots = pool[v] if v > SENT_CEIL else (
                overflow[h_roots][i] if v == BOX_S else None)
            if flag and isinstance(roots, str) and level < len(roots):
                if roots[level] == "1" and piece[0] != ctx.node:
                    alarms.append(f"{kind}-train: fragment root id "
                                  "mismatch")
                if roots[level] == "0" and piece[0] == ctx.node:
                    alarms.append(f"{kind}-train: member claims to be "
                                  "the fragment root")
            if boundary:
                good = True
                v = sync_col[i]
                if v is not UNSET and v:
                    needed = self._cur_needed \
                        if self._cur_needed is not None \
                        else self.needed_mask(ctx)
                    v = seen_col[i]
                    seen = v if 0 <= v <= _NAT_CAP else 0
                    if needed & ~seen:
                        good = False
                    v = cnt_col[i]
                    cnt = v if 0 <= v <= (1 << 20) else 0
                    if count_claim is not None and cnt != count_claim:
                        good = False
                sync_col[i] = True
                dec = decoded[h_sync]
                if dec is not None:
                    dec[i] = NO_DECODE
                dc[h_sync] = 1
                w_seen(i, (1 << level) if flag else 0)
                w_cnt(i, 1)
                if good:
                    w_wd(i, 0)
            else:
                if flag:
                    v = seen_col[i]
                    seen = v if 0 <= v <= _NAT_CAP else 0
                    w_seen(i, seen | (1 << level))
                v = cnt_col[i]
                cnt = v if 0 <= v <= (1 << 20) else 0
                w_cnt(i, cnt + 1)
            _wpool(last_col, h_last, i, key)
            return alarms

        def broadcast(ctx, i, parent, children, count_claim):
            # _step_broadcast with inlined column access
            alarms = []
            v = bseq_col[i]
            bseq = v if 0 <= v <= SEQ_MOD else 0
            for child in children:
                cj = index[child]
                v = s_bseq[cj]
                cbseq = v if v > SENT_CEIL else (
                    soverflow[h_bseq][cj] if v == BOX_S else None)
                if cbseq != bseq:
                    return alarms
            new_slot = None
            if parent is None:
                v = out_col[i]
                if v >= 0:
                    m = memos[h_out]
                    try:
                        out = m[v]
                    except (TypeError, IndexError):
                        out = NO_DECODE
                    if out is NO_DECODE:
                        out = _decode_car(pool[v])
                        memo_for(h_out, v)[v] = out
                elif v == BOX_S:
                    out = _decode_car(overflow[h_out][i])
                else:
                    out = none_decode[h_out]
                    if out is NO_DECODE:
                        out = none_decode[h_out] = _decode_car(None)
                if out is not None:
                    piece = out[1]
                    flag = self.membership_flag(ctx, piece,
                                                parent_flag=False)
                    new_slot = (piece, flag)
                    _wpool(out_col, h_out, i, None)
            else:
                pj = index[parent]
                v = s_bseq[pj]
                pseq = v if 0 <= v <= SEQ_MOD else None
                v = s_bbuf[pj]
                if v >= 0:
                    m = memos[h_bbuf]
                    try:
                        pobs = m[v]
                    except (TypeError, IndexError):
                        pobs = NO_DECODE
                    if pobs is NO_DECODE:
                        pobs = decode_observation(pool[v])
                        memo_for(h_bbuf, v)[v] = pobs
                elif v == BOX_S:
                    pobs = decode_observation(soverflow[h_bbuf][pj])
                else:
                    pobs = none_decode[h_bbuf]
                    if pobs is NO_DECODE:
                        pobs = none_decode[h_bbuf] = \
                            decode_observation(None)
                if pseq is not None and pseq != bseq and pobs is not None:
                    piece = pobs.piece
                    flag = self.membership_flag(ctx, piece, pobs.flag)
                    new_slot = (piece, flag)
                    bseq = (pseq - 1) % SEQ_MOD
            if new_slot is None:
                return alarms
            piece, flag = new_slot
            _wpool(bbuf_col, h_bbuf, i, (piece, flag))
            w_bseq(i, (bseq + 1) % SEQ_MOD)
            alarms.extend(account(ctx, i, piece, flag, count_claim))
            return alarms

        def fused(ctx, budgets, hold_broadcast, sentinel):
            # step() with the prologue (label row, epoch adoption,
            # watchdogs) on direct column reads
            alarms: List[str] = []
            i = ctx._i
            ent = cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                parent, children, own, count_claim, needed = ent[1]
            else:
                parent = self.part_parent(ctx)
                children = self.part_children(ctx)
                own = self.own_pieces(ctx)
                count_claim = ctx.nat(self.h_count, cap=4096)
                needed = self.needed_mask(ctx)
                cache[ctx.node] = (
                    sentinel, (parent, children, own, count_claim, needed))
            self._cur_needed = needed
            if parent is not None:
                v = s_ep[index[parent]]
                pep = v if 0 <= v <= SEQ_MOD else None
                if pep is not None:
                    v = ep_col[i]
                    own_ep = v if v > SENT_CEIL else (
                        overflow[h_ep][i] if v == BOX_S else None)
                    if pep != own_ep:
                        self._reset_dynamic(ctx, pep)
                        return alarms
            if not (count_claim == 0 and needed == 0):
                v = wd_col[i]
                wd = (v if 0 <= v <= _NAT_CAP else 0) + 1
                w_wd(i, wd)
                if parent is None and wd % budgets.root_reset == 0:
                    v = ep_col[i]
                    new_ep = ((v if 0 <= v <= SEQ_MOD else 0) + 1) \
                        % SEQ_MOD
                    self._reset_dynamic(ctx, new_ep)
                    w_wd(i, wd)
                    return alarms
                if wd > budgets.node_alarm:
                    alarms.append(
                        f"{kind}-train: no good rotation within budget "
                        "(missing levels, wrong piece count, or a "
                        "starved train)")
                    w_wd(i, 0)
            conv(ctx, i, parent, children, own)
            if not hold_broadcast:
                alarms.extend(
                    broadcast(ctx, i, parent, children, count_claim))
            return alarms

        return fused
