"""The train mechanism (Section 7.1) as a per-node protocol component.

One :class:`TrainComponent` instance drives one partition's train at every
node (the verifier composes two: Top and Bottom, multiplexed).  Per node
the component keeps O(log n) bits:

Convergecast (the two-car pipeline of the Train Convergecast Protocol):

* ``<p>out``  — the outgoing car: ``(seq, piece)`` or None;
* ``<p>src``  — DFS source pointer: own stored pieces first, then the
  part children in port order;
* ``<p>cyc``  — the convergecast cycle the node is serving (mod 64);
* ``<p>done`` — set to the cycle id when the node's subtree finished;
* ``<p>act``  — which child is currently active, ``(child, cyc)``;
* ``<p>tak``  — ack register: the ``(child, seq)`` last consumed.

Broadcast (pipelined flooding with membership flags, Section 7.1):

* ``<p>bseq`` / ``<p>bbuf`` — the broadcast slot: current ``(piece, flag)``
  and its sequence number; a node adopts its part parent's slot when all
  of its own part children caught up — the neighbours' *Show* of
  Section 7.2 is exactly this slot;
* ``<p>seen`` — levels of flagged pieces seen in the current rotation;
* ``<p>last`` / ``<p>cnt`` / ``<p>sync`` — rotation-boundary detection
  ((level, root) must increase lexicographically within a rotation),
  piece count, and the synced-once latch;
* ``<p>wd`` / ``<p>ep`` — watchdog counter and reset epoch.

Self-stabilization: the part root resets the train (epoch bump, adopted
downward) when a rotation exceeds its budget — corrupted *dynamic* state
heals silently; corrupted *labels* keep starving the nodes whose larger
alarm budgets then fire (Section 8's detection).

Register handles: every register the component touches is resolved once
by :meth:`TrainComponent.bind_registers` — to its name string under the
legacy dict storage, or to its integer slot index under a compiled
register schema — so the per-step code performs no string concatenation
or repeated name hashing, and numeric reads go through the context's
write-time-cached ``nat`` coercion.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..labels.registers import (REG_DELIM, REG_JMASK, REG_PARENT_ID,
                                REG_ROOTS)
from ..labels.wellforming import level_is_bottom, sorted_levels
from ..sim.columnar import BOX_S, NONE_S, PoolColumn, SENT_CEIL
from ..sim.npcolumnar import (IDX_NOT, IDX_ODD, PoolIdCache, csr_take,
                              idx_of, seg_any, view64)
from ..sim.registers import NO_DECODE, UNSET, handle_resolver
from .budgets import Budgets, compute_budgets

SEQ_MOD = 64
_NAT_CAP = 1 << 30


def _nat(x: Any, cap: int = 1 << 30) -> Optional[int]:
    """x as a bounded non-negative int, else None."""
    if isinstance(x, int) and not isinstance(x, bool) and 0 <= x <= cap:
        return x
    return None


def valid_piece(piece: Any) -> bool:
    """Shape check for a piece (root, level, weight)."""
    return (isinstance(piece, tuple) and len(piece) == 3
            and isinstance(piece[0], int) and not isinstance(piece[0], bool)
            and isinstance(piece[1], int) and not isinstance(piece[1], bool)
            and 0 <= piece[1] <= 256)


def piece_key(piece: Tuple) -> Tuple[int, int]:
    """The cyclic ordering key (level, root) of a piece."""
    return (piece[1], piece[0])


@dataclass
class TrainObservation:
    """What the comparison layer reads off a neighbour's broadcast slot.

    Instances may be shared across reads (the register file caches the
    decoded observation per broadcast-slot write): treat as read-only.
    """

    piece: Tuple
    flag: bool


def decode_observation(buf: Any) -> Optional[TrainObservation]:
    """Validate and parse a broadcast slot; the slot's decode function
    (run once per write under register files)."""
    if isinstance(buf, tuple) and len(buf) == 2 and valid_piece(buf[0]):
        return TrainObservation(piece=buf[0], flag=bool(buf[1]))
    return None


def _decode_car(out: Any) -> Optional[Tuple]:
    """Validate a convergecast car ``(seq, piece)``; None when malformed."""
    if isinstance(out, tuple) and len(out) == 2 and valid_piece(out[1]):
        return out
    return None


#: the component's dynamic registers: (suffix, kind, init-default).
#: ``seq`` is declared but deliberately *not* initialized by
#: ``init_node`` (the convergecast writes it on first use) — keeping the
#: mapping contents identical to the historical dict behaviour.
#: The pipeline's tuple-valued registers (cars, broadcast slots, acks,
#: rotation keys) are declared ``tuple``: a columnar store then interns
#: them — a piece circulating a part is one pool entry plus int ids,
#: and its validated decode is memoized per value instead of per node.
_DYNAMIC_DECLS = (
    ("out", "tuple", None),
    ("src", "nat", 0),
    ("cyc", "nat", 0),
    ("done", "nat", None),
    ("act", "tuple", None),
    ("tak", "tuple", None),
    ("bseq", "nat", 0),
    ("bbuf", "tuple", None),
    ("seen", "nat", 0),
    ("last", "tuple", None),
    ("cnt", "nat", 0),
    ("sync", "opaque", False),
    ("wd", "nat", 0),
    ("ep", "nat", 0),
)

_SEQ_DECL = ("seq", "nat", 0)


class TrainComponent:
    """One partition's train at every node.  ``kind`` is 'top'/'bottom'."""

    def __init__(self, kind: str, reg_root: str, reg_count: str,
                 reg_pieces: str, synchronous: bool) -> None:
        self.kind = kind
        self.p = "tt_" if kind == "top" else "bt_"
        self.reg_root = reg_root
        self.reg_count = reg_count
        self.reg_pieces = reg_pieces
        self.synchronous = synchronous
        self.bind_registers(None)

    # -- register helpers ------------------------------------------------
    def r(self, name: str) -> str:
        return self.p + name

    def declare_registers(self, schema) -> None:
        """Declare this train's dynamic registers (labels are declared
        by the owning protocol)."""
        for suffix, kind, default in _DYNAMIC_DECLS + (_SEQ_DECL,):
            schema.declare(self.p + suffix, kind, default)

    def bind_registers(self, compiled) -> None:
        """Resolve register handles: names (``compiled=None``) or slots."""
        resolve = handle_resolver(compiled)
        p = self.p
        self.h_out = resolve(p + "out")
        self.h_src = resolve(p + "src")
        self.h_cyc = resolve(p + "cyc")
        self.h_done = resolve(p + "done")
        self.h_act = resolve(p + "act")
        self.h_tak = resolve(p + "tak")
        self.h_seq = resolve(p + "seq")
        self.h_bseq = resolve(p + "bseq")
        self.h_bbuf = resolve(p + "bbuf")
        self.h_seen = resolve(p + "seen")
        self.h_last = resolve(p + "last")
        self.h_cnt = resolve(p + "cnt")
        self.h_sync = resolve(p + "sync")
        self.h_wd = resolve(p + "wd")
        self.h_ep = resolve(p + "ep")
        self.h_root = resolve(self.reg_root)
        self.h_count = resolve(self.reg_count)
        self.h_pieces = resolve(self.reg_pieces)
        self.h_pid = resolve(REG_PARENT_ID)
        self.h_roots = resolve(REG_ROOTS)
        self.h_jmask = resolve(REG_JMASK)
        self.h_delim = resolve(REG_DELIM)
        # init_node's write sequence, in the historical order
        self._init_pairs = tuple(
            (resolve(p + suffix), default)
            for suffix, _kind, default in _DYNAMIC_DECLS)
        # label-derived cache: node -> (stable sentinel, (parent,
        # children, own pieces, count claim, needed mask)).  Only used
        # under register files, where the sentinel detects label writes.
        self._label_cache = {}
        self._cur_needed: Optional[int] = None

    def init_node(self, ctx) -> None:
        for handle, default in self._init_pairs:
            ctx.set(handle, default)

    # -- topology inside the part ----------------------------------------
    def part_root_id(self, ctx) -> Optional[int]:
        root = ctx.get(self.h_root)
        return root if isinstance(root, int) else None

    def part_parent(self, ctx) -> Optional[int]:
        pid = ctx.get(self.h_pid)
        if pid is None or pid not in ctx.neighbors:
            return None
        if ctx.read(pid, self.h_root) == ctx.get(self.h_root):
            return pid
        return None

    def part_children(self, ctx) -> List[int]:
        me = ctx.node
        mine = ctx.get(self.h_root)
        h_pid = self.h_pid
        h_root = self.h_root
        read = ctx.read
        return [c for c in ctx.neighbors
                if read(c, h_pid) == me and read(c, h_root) == mine]

    def own_pieces(self, ctx) -> Tuple:
        pieces = ctx.get(self.h_pieces)
        if not isinstance(pieces, tuple):
            return ()
        return tuple(pc for pc in pieces if valid_piece(pc))

    def is_part_root(self, ctx) -> bool:
        return self.part_parent(ctx) is None

    # -- membership flags (Section 7.1) -----------------------------------
    def membership_flag(self, ctx, piece: Tuple, parent_flag: bool) -> bool:
        """Whether this node belongs to the fragment the piece describes."""
        z, level, _w = piece
        roots = ctx.get(self.h_roots)
        jmask = ctx.nat(self.h_jmask) or 0
        delim = ctx.nat(self.h_delim) or 0
        if not isinstance(roots, str) or level >= len(roots):
            return False
        want_bottom = (self.kind == "bottom")
        cls = level_is_bottom(jmask, delim, level)
        if cls is None or cls != want_bottom:
            return False
        if self.kind == "top":
            # Claim 6.3: at most one top fragment per level crosses a part.
            return True
        if roots[level] == "1":
            return z == ctx.node
        if roots[level] == "0":
            return bool(parent_flag)
        return False

    def needed_mask(self, ctx) -> int:
        """Levels this node must see flagged in this train's rotations."""
        jmask = ctx.nat(self.h_jmask) or 0
        delim = ctx.nat(self.h_delim) or 0
        levels = sorted_levels(jmask)
        mask = 0
        for i, j in enumerate(levels):
            if (i < delim) == (self.kind == "bottom"):
                mask |= 1 << j
        return mask

    # -- epochs / reset ----------------------------------------------------
    def _reset_dynamic(self, ctx, epoch: int) -> None:
        self.init_node(ctx)
        ctx.set(self.h_ep, epoch % SEQ_MOD)

    # -- the per-activation step -------------------------------------------
    def step(self, ctx, budgets: Budgets,
             hold_broadcast: bool = False,
             sentinel: Optional[int] = None) -> List[str]:
        """Advance the train by one atomic step; returns alarm reasons.

        ``hold_broadcast`` freezes this node's broadcast slot for one step
        (the Want-mode server delaying the train, Section 7.2.2); the
        convergecast keeps flowing.

        ``sentinel`` (register files only) is the closed neighbourhood's
        stable-register version: the part topology, own pieces, count
        claim, and needed mask are pure functions of labels, so they are
        recomputed only when the sentinel moves — never per step.
        """
        alarms: List[str] = []
        if sentinel is not None:
            ent = self._label_cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                parent, children, own, count_claim, needed = ent[1]
            else:
                parent = self.part_parent(ctx)
                children = self.part_children(ctx)
                own = self.own_pieces(ctx)
                count_claim = ctx.nat(self.h_count, cap=4096)
                needed = self.needed_mask(ctx)
                self._label_cache[ctx.node] = (
                    sentinel, (parent, children, own, count_claim, needed))
            self._cur_needed = needed
        else:
            parent = self.part_parent(ctx)
            children = self.part_children(ctx)
            own = self.own_pieces(ctx)
            count_claim = ctx.nat(self.h_count, cap=4096)
            needed = None
            self._cur_needed = None

        # --- epoch adoption (train self-stabilization) --------------------
        if parent is not None:
            pep = ctx.read_nat(parent, self.h_ep, cap=SEQ_MOD)
            if pep is not None and pep != ctx.get(self.h_ep):
                self._reset_dynamic(ctx, pep)
                return alarms

        # --- watchdogs -----------------------------------------------------
        idle = (count_claim == 0 and
                (needed if needed is not None
                 else self.needed_mask(ctx)) == 0)
        if not idle:
            wd = (ctx.nat(self.h_wd) or 0) + 1
            ctx.set(self.h_wd, wd)
            if parent is None and wd > 0 and wd % budgets.root_reset == 0:
                # the part root restarts a wedged train
                new_ep = ((ctx.nat(self.h_ep, cap=SEQ_MOD) or 0) + 1) % SEQ_MOD
                self._reset_dynamic(ctx, new_ep)
                ctx.set(self.h_wd, wd)  # keep counting toward the alarm
                return alarms
            if wd > budgets.node_alarm:
                alarms.append(f"{self.kind}-train: no good rotation within "
                              "budget (missing levels, wrong piece count, "
                              "or a starved train)")
                ctx.set(self.h_wd, 0)

        self._step_convergecast(ctx, parent, children, own)
        if not hold_broadcast:
            alarms.extend(
                self._step_broadcast(ctx, parent, children, count_claim))
        return alarms

    # -- convergecast -----------------------------------------------------
    def _step_convergecast(self, ctx, parent, children, own) -> None:
        me = ctx.node
        cyc = ctx.nat(self.h_cyc, cap=SEQ_MOD) or 0

        if parent is not None:
            pact = ctx.read(parent, self.h_act)
            if not (isinstance(pact, tuple) and len(pact) == 2
                    and pact[0] == me):
                return  # not my turn in the parent's DFS
            new_cyc = _nat(pact[1], cap=SEQ_MOD)
            if new_cyc is None:
                return
            if new_cyc != cyc:
                # a fresh DFS visit: restart my subtree's delivery
                ctx.set(self.h_cyc, new_cyc)
                ctx.set(self.h_src, 0)
                ctx.set(self.h_done, None)
                ctx.set(self.h_act, None)
                cyc = new_cyc
            if ctx.get(self.h_done) == cyc:
                return  # finished; wait for the next visit

        out = ctx.get(self.h_out)
        if out is not None and ctx.get_decoded(self.h_out, _decode_car) \
                is None:
            ctx.set(self.h_out, None)
            out = None

        # ack: the parent consumed my outgoing car
        if out is not None and parent is not None:
            ptak = ctx.read(parent, self.h_tak)
            if isinstance(ptak, tuple) and len(ptak) == 2 and \
                    ptak[0] == me and ptak[1] == out[0]:
                ctx.set(self.h_out, None)
                out = None

        if out is not None:
            return  # still waiting for the car to be consumed

        src = ctx.nat(self.h_src, cap=4096)
        if src is None:
            src = 0
        seq = ((ctx.nat(self.h_seq, cap=SEQ_MOD) or 0) + 1) % SEQ_MOD

        if src < len(own):
            ctx.set(self.h_out, (seq, own[src]))
            ctx.set(self.h_seq, seq)
            ctx.set(self.h_src, src + 1)
            return

        child_idx = src - len(own)
        while child_idx < len(children):
            child = children[child_idx]
            ctx.set(self.h_act, (child, cyc))
            cdone = ctx.read(child, self.h_done)
            cout = ctx.read_decoded(child, self.h_out, _decode_car)
            if cout is not None:
                tak = ctx.get(self.h_tak)
                if tak != (child, cout[0]):
                    # take the child's piece into my outgoing car
                    ctx.set(self.h_out, (seq, cout[1]))
                    ctx.set(self.h_seq, seq)
                    ctx.set(self.h_tak, (child, cout[0]))
                    return
            if cdone == cyc:
                child_idx += 1
                ctx.set(self.h_src, len(own) + child_idx)
                continue
            return  # wait for this child

        # all sources exhausted: subtree finished for this cycle
        ctx.set(self.h_act, None)
        if parent is not None:
            ctx.set(self.h_done, cyc)
        else:
            ctx.set(self.h_cyc, (cyc + 1) % SEQ_MOD)
            ctx.set(self.h_src, 0)

    # -- broadcast ----------------------------------------------------------
    def _step_broadcast(self, ctx, parent, children, count_claim) -> List[str]:
        alarms: List[str] = []
        bseq = ctx.nat(self.h_bseq, cap=SEQ_MOD) or 0

        # children must catch up before this node's slot may change
        for c in children:
            if ctx.read(c, self.h_bseq) != bseq:
                return alarms

        new_slot = None
        if parent is None:
            out = ctx.get_decoded(self.h_out, _decode_car)
            if out is not None:
                piece = out[1]
                flag = self.membership_flag(ctx, piece, parent_flag=False)
                new_slot = (piece, flag)
                ctx.set(self.h_out, None)  # the broadcast consumed the car
        else:
            pseq = ctx.read_nat(parent, self.h_bseq, cap=SEQ_MOD)
            pobs = ctx.read_decoded(parent, self.h_bbuf, decode_observation)
            if pseq is not None and pseq != bseq and pobs is not None:
                piece = pobs.piece
                flag = self.membership_flag(ctx, piece, pobs.flag)
                new_slot = (piece, flag)
                bseq = (pseq - 1) % SEQ_MOD  # will advance to pseq below

        if new_slot is None:
            return alarms

        piece, flag = new_slot
        ctx.set(self.h_bbuf, (piece, flag))
        ctx.set(self.h_bseq, (bseq + 1) % SEQ_MOD)
        alarms.extend(self._account_piece(ctx, piece, flag, count_claim))
        return alarms

    # -- rotation accounting (cycle-set checks of Section 8) ---------------
    def _account_piece(self, ctx, piece, flag, count_claim) -> List[str]:
        alarms: List[str] = []
        key = piece_key(piece)
        last = ctx.get(self.h_last)
        boundary = (isinstance(last, tuple) and key <= tuple(last)) \
            if last is not None else False

        roots = ctx.get(self.h_roots)
        level = piece[1]
        if flag and isinstance(roots, str) and level < len(roots):
            if roots[level] == "1" and piece[0] != ctx.node:
                alarms.append(f"{self.kind}-train: fragment root id mismatch")
            if roots[level] == "0" and piece[0] == ctx.node:
                alarms.append(f"{self.kind}-train: member claims to be "
                              "the fragment root")

        if boundary:
            # A rotation only placates the watchdog when it is *good*:
            # correct piece count and full coverage of this node's levels.
            # Transient corruption of the pipeline produces bad rotations
            # for at most O(root_reset) rounds before the part root's
            # epoch reset repairs it (Observation 8.1); persistently bad
            # rotations — wrong labels — starve the watchdog until the
            # node_alarm budget fires (Claim 8.2's detection).
            good = True
            if ctx.get(self.h_sync):
                needed = self._cur_needed if self._cur_needed is not None \
                    else self.needed_mask(ctx)
                seen = ctx.nat(self.h_seen) or 0
                if needed & ~seen:
                    good = False
                cnt = ctx.nat(self.h_cnt, cap=1 << 20) or 0
                if count_claim is not None and cnt != count_claim:
                    good = False
            ctx.set(self.h_sync, True)
            ctx.set(self.h_seen, (1 << level) if flag else 0)
            ctx.set(self.h_cnt, 1)
            if good:
                ctx.set(self.h_wd, 0)
        else:
            if flag:
                ctx.set(self.h_seen, (ctx.nat(self.h_seen) or 0) | (1 << level))
            ctx.set(self.h_cnt, (ctx.nat(self.h_cnt, cap=1 << 20) or 0) + 1)
        ctx.set(self.h_last, key)
        return alarms

    # -- what neighbours see (Show) ----------------------------------------
    def observe(self, ctx, neighbor: int) -> Optional[TrainObservation]:
        """The neighbour's current broadcast slot, if well-formed."""
        return ctx.read_decoded(neighbor, self.h_bbuf, decode_observation)

    def own_show(self, ctx) -> Optional[TrainObservation]:
        """This node's own broadcast slot (its train's current piece)."""
        return ctx.get_decoded(self.h_bbuf, decode_observation)

    # -- the bulk-activation plane (repro.sim.bulk) ------------------------
    def make_bulk_step(self, ops):
        """A column-fused variant of :meth:`step` for the bulk plane.

        Returns a closure ``fused(ctx, budgets, hold_broadcast,
        sentinel) -> List[str]`` that executes the exact scalar step —
        same control flow, same junk coercions, same writes in the same
        order — with every context accessor inlined to direct column
        indexing against ``ops.store``/``ops.snap``.  Licensed only by
        fused ops (synchronous batches: neighbour reads hit the
        snapshot, no mid-batch aborts); returns None when the layout is
        not the expected columnar one, so callers fall back to the
        scalar :meth:`step`.

        Write tracking: fused writes mark columns dirty but skip the
        per-context ``wrote`` flag — the calling protocol's bulk sweep
        declares ``batch.wrote_all`` instead (every batch node's step
        counter advances, so the scalar path marks every node too).
        Equivalence is proven by ``tests/test_bulk_plane.py`` (full
        register traces, including planted junk in nat/tuple columns).
        """
        if not getattr(ops, "fused", False) or type(self.h_out) is not int:
            return None
        store = ops.store
        snap = ops.snap
        data = store.data
        sdata = snap.data
        h_out, h_src, h_cyc = self.h_out, self.h_src, self.h_cyc
        h_done, h_act, h_tak, h_seq = (self.h_done, self.h_act,
                                       self.h_tak, self.h_seq)
        h_bseq, h_bbuf, h_seen = self.h_bseq, self.h_bbuf, self.h_seen
        h_last, h_cnt, h_sync = self.h_last, self.h_cnt, self.h_sync
        h_wd, h_ep, h_roots = self.h_wd, self.h_ep, self.h_roots
        nat_slots = (h_src, h_cyc, h_done, h_seq, h_bseq, h_seen, h_cnt,
                     h_wd, h_ep)
        pool_slots = (h_out, h_act, h_tak, h_bbuf, h_last, h_roots)
        stable = store.schema.stable_mask
        if any(type(data[h]) is not array for h in nat_slots) or \
                any(type(data[h]) is not PoolColumn for h in pool_slots) \
                or type(data[h_sync]) is not list or \
                any(stable[h] for h in nat_slots + pool_slots[:-1]) or \
                stable[h_sync]:
            return None
        out_col, src_col, cyc_col = data[h_out], data[h_src], data[h_cyc]
        done_col, act_col, tak_col = data[h_done], data[h_act], data[h_tak]
        seq_col, bseq_col, bbuf_col = (data[h_seq], data[h_bseq],
                                       data[h_bbuf])
        seen_col, last_col, cnt_col = (data[h_seen], data[h_last],
                                       data[h_cnt])
        sync_col, wd_col, ep_col = data[h_sync], data[h_wd], data[h_ep]
        roots_col = data[h_roots]
        s_ep, s_act, s_tak = sdata[h_ep], sdata[h_act], sdata[h_tak]
        s_done, s_out, s_bseq = sdata[h_done], sdata[h_out], sdata[h_bseq]
        s_bbuf = sdata[h_bbuf]
        index = store.index
        pool = store.pool_values
        overflow = store.overflow
        soverflow = snap.overflow
        decoded = store.decoded
        none_decode = store.none_decode  # shared with the snapshot
        memos = store.decode_memo        # shared with the snapshot
        memo_for = store.memo_for
        intern = store.intern
        box = store._box
        dc = store.dirty_cols
        cache = self._label_cache
        kind = self.kind

        # fused writes: per-column nat writers from the store (the one
        # source of truth for the array-write encoding) plus the pooled
        # branch of ctx.set, minus handle dispatch and per-context
        # wrote flags (see the write-tracking note above)
        w_cyc = store.make_nat_writer(h_cyc)
        w_src = store.make_nat_writer(h_src)
        w_done = store.make_nat_writer(h_done)
        w_seq = store.make_nat_writer(h_seq)
        w_bseq = store.make_nat_writer(h_bseq)
        w_seen = store.make_nat_writer(h_seen)
        w_cnt = store.make_nat_writer(h_cnt)
        w_wd = store.make_nat_writer(h_wd)

        def _wpool(col, h, i, val):
            ovf = overflow[h]
            if ovf:
                ovf.pop(i, None)
            if val is None:
                col[i] = NONE_S
            else:
                try:
                    col[i] = intern(val)
                except TypeError:       # unhashable adversarial junk
                    col[i] = box(h, i, val)
            dc[h] = 1

        def conv(ctx, i, parent, children, own):
            # _step_convergecast with inlined column access
            me = ctx.node
            v = cyc_col[i]
            cyc = v if 0 <= v <= SEQ_MOD else 0
            if parent is not None:
                pj = index[parent]
                v = s_act[pj]
                pact = pool[v] if v > SENT_CEIL else (
                    soverflow[h_act][pj] if v == BOX_S else None)
                if not (isinstance(pact, tuple) and len(pact) == 2
                        and pact[0] == me):
                    return
                new_cyc = _nat(pact[1], cap=SEQ_MOD)
                if new_cyc is None:
                    return
                if new_cyc != cyc:
                    w_cyc(i, new_cyc)
                    w_src(i, 0)
                    w_done(i, None)
                    _wpool(act_col, h_act, i, None)
                    cyc = new_cyc
                v = done_col[i]
                done = v if v > SENT_CEIL else (
                    overflow[h_done][i] if v == BOX_S else None)
                if done == cyc:
                    return
            v = out_col[i]
            out = pool[v] if v > SENT_CEIL else (
                overflow[h_out][i] if v == BOX_S else None)
            if out is not None:
                if v >= 0:
                    m = memos[h_out]
                    try:
                        d = m[v]
                    except (TypeError, IndexError):
                        d = NO_DECODE
                    if d is NO_DECODE:
                        d = _decode_car(pool[v])
                        memo_for(h_out, v)[v] = d
                else:
                    d = _decode_car(out)
                if d is None:
                    _wpool(out_col, h_out, i, None)
                    out = None
            if out is not None and parent is not None:
                v = s_tak[pj]
                ptak = pool[v] if v > SENT_CEIL else (
                    soverflow[h_tak][pj] if v == BOX_S else None)
                if isinstance(ptak, tuple) and len(ptak) == 2 and \
                        ptak[0] == me and ptak[1] == out[0]:
                    _wpool(out_col, h_out, i, None)
                    out = None
            if out is not None:
                return
            v = src_col[i]
            src = v if 0 <= v <= 4096 else 0
            v = seq_col[i]
            seq = ((v if 0 <= v <= SEQ_MOD else 0) + 1) % SEQ_MOD
            if src < len(own):
                _wpool(out_col, h_out, i, (seq, own[src]))
                w_seq(i, seq)
                w_src(i, src + 1)
                return
            child_idx = src - len(own)
            while child_idx < len(children):
                child = children[child_idx]
                _wpool(act_col, h_act, i, (child, cyc))
                cj = index[child]
                v = s_done[cj]
                cdone = v if v > SENT_CEIL else (
                    soverflow[h_done][cj] if v == BOX_S else None)
                v = s_out[cj]
                if v >= 0:
                    m = memos[h_out]
                    try:
                        cout = m[v]
                    except (TypeError, IndexError):
                        cout = NO_DECODE
                    if cout is NO_DECODE:
                        cout = _decode_car(pool[v])
                        memo_for(h_out, v)[v] = cout
                elif v == BOX_S:
                    cout = _decode_car(soverflow[h_out][cj])
                else:
                    cout = none_decode[h_out]
                    if cout is NO_DECODE:
                        cout = none_decode[h_out] = _decode_car(None)
                if cout is not None:
                    v = tak_col[i]
                    tak = pool[v] if v > SENT_CEIL else (
                        overflow[h_tak][i] if v == BOX_S else None)
                    if tak != (child, cout[0]):
                        _wpool(out_col, h_out, i, (seq, cout[1]))
                        w_seq(i, seq)
                        _wpool(tak_col, h_tak, i, (child, cout[0]))
                        return
                if cdone == cyc:
                    child_idx += 1
                    w_src(i, len(own) + child_idx)
                    continue
                return
            _wpool(act_col, h_act, i, None)
            if parent is not None:
                w_done(i, cyc)
            else:
                w_cyc(i, (cyc + 1) % SEQ_MOD)
                w_src(i, 0)

        def account(ctx, i, piece, flag, count_claim):
            # _account_piece with inlined column access
            alarms = []
            level = piece[1]
            key = (level, piece[0])
            v = last_col[i]
            last = pool[v] if v > SENT_CEIL else (
                overflow[h_last][i] if v == BOX_S else None)
            boundary = (isinstance(last, tuple) and key <= tuple(last)) \
                if last is not None else False
            v = roots_col[i]
            roots = pool[v] if v > SENT_CEIL else (
                overflow[h_roots][i] if v == BOX_S else None)
            if flag and isinstance(roots, str) and level < len(roots):
                if roots[level] == "1" and piece[0] != ctx.node:
                    alarms.append(f"{kind}-train: fragment root id "
                                  "mismatch")
                if roots[level] == "0" and piece[0] == ctx.node:
                    alarms.append(f"{kind}-train: member claims to be "
                                  "the fragment root")
            if boundary:
                good = True
                v = sync_col[i]
                if v is not UNSET and v:
                    needed = self._cur_needed \
                        if self._cur_needed is not None \
                        else self.needed_mask(ctx)
                    v = seen_col[i]
                    seen = v if 0 <= v <= _NAT_CAP else 0
                    if needed & ~seen:
                        good = False
                    v = cnt_col[i]
                    cnt = v if 0 <= v <= (1 << 20) else 0
                    if count_claim is not None and cnt != count_claim:
                        good = False
                sync_col[i] = True
                dec = decoded[h_sync]
                if dec is not None:
                    dec[i] = NO_DECODE
                dc[h_sync] = 1
                w_seen(i, (1 << level) if flag else 0)
                w_cnt(i, 1)
                if good:
                    w_wd(i, 0)
            else:
                if flag:
                    v = seen_col[i]
                    seen = v if 0 <= v <= _NAT_CAP else 0
                    w_seen(i, seen | (1 << level))
                v = cnt_col[i]
                cnt = v if 0 <= v <= (1 << 20) else 0
                w_cnt(i, cnt + 1)
            _wpool(last_col, h_last, i, key)
            return alarms

        def broadcast(ctx, i, parent, children, count_claim):
            # _step_broadcast with inlined column access
            alarms = []
            v = bseq_col[i]
            bseq = v if 0 <= v <= SEQ_MOD else 0
            for child in children:
                cj = index[child]
                v = s_bseq[cj]
                cbseq = v if v > SENT_CEIL else (
                    soverflow[h_bseq][cj] if v == BOX_S else None)
                if cbseq != bseq:
                    return alarms
            new_slot = None
            if parent is None:
                v = out_col[i]
                if v >= 0:
                    m = memos[h_out]
                    try:
                        out = m[v]
                    except (TypeError, IndexError):
                        out = NO_DECODE
                    if out is NO_DECODE:
                        out = _decode_car(pool[v])
                        memo_for(h_out, v)[v] = out
                elif v == BOX_S:
                    out = _decode_car(overflow[h_out][i])
                else:
                    out = none_decode[h_out]
                    if out is NO_DECODE:
                        out = none_decode[h_out] = _decode_car(None)
                if out is not None:
                    piece = out[1]
                    flag = self.membership_flag(ctx, piece,
                                                parent_flag=False)
                    new_slot = (piece, flag)
                    _wpool(out_col, h_out, i, None)
            else:
                pj = index[parent]
                v = s_bseq[pj]
                pseq = v if 0 <= v <= SEQ_MOD else None
                v = s_bbuf[pj]
                if v >= 0:
                    m = memos[h_bbuf]
                    try:
                        pobs = m[v]
                    except (TypeError, IndexError):
                        pobs = NO_DECODE
                    if pobs is NO_DECODE:
                        pobs = decode_observation(pool[v])
                        memo_for(h_bbuf, v)[v] = pobs
                elif v == BOX_S:
                    pobs = decode_observation(soverflow[h_bbuf][pj])
                else:
                    pobs = none_decode[h_bbuf]
                    if pobs is NO_DECODE:
                        pobs = none_decode[h_bbuf] = \
                            decode_observation(None)
                if pseq is not None and pseq != bseq and pobs is not None:
                    piece = pobs.piece
                    flag = self.membership_flag(ctx, piece, pobs.flag)
                    new_slot = (piece, flag)
                    bseq = (pseq - 1) % SEQ_MOD
            if new_slot is None:
                return alarms
            piece, flag = new_slot
            _wpool(bbuf_col, h_bbuf, i, (piece, flag))
            w_bseq(i, (bseq + 1) % SEQ_MOD)
            alarms.extend(account(ctx, i, piece, flag, count_claim))
            return alarms

        def fused(ctx, budgets, hold_broadcast, sentinel):
            # step() with the prologue (label row, epoch adoption,
            # watchdogs) on direct column reads
            alarms: List[str] = []
            i = ctx._i
            ent = cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                parent, children, own, count_claim, needed = ent[1]
            else:
                parent = self.part_parent(ctx)
                children = self.part_children(ctx)
                own = self.own_pieces(ctx)
                count_claim = ctx.nat(self.h_count, cap=4096)
                needed = self.needed_mask(ctx)
                cache[ctx.node] = (
                    sentinel, (parent, children, own, count_claim, needed))
            self._cur_needed = needed
            if parent is not None:
                v = s_ep[index[parent]]
                pep = v if 0 <= v <= SEQ_MOD else None
                if pep is not None:
                    v = ep_col[i]
                    own_ep = v if v > SENT_CEIL else (
                        overflow[h_ep][i] if v == BOX_S else None)
                    if pep != own_ep:
                        self._reset_dynamic(ctx, pep)
                        return alarms
            if not (count_claim == 0 and needed == 0):
                v = wd_col[i]
                wd = (v if 0 <= v <= _NAT_CAP else 0) + 1
                w_wd(i, wd)
                if parent is None and wd % budgets.root_reset == 0:
                    v = ep_col[i]
                    new_ep = ((v if 0 <= v <= SEQ_MOD else 0) + 1) \
                        % SEQ_MOD
                    self._reset_dynamic(ctx, new_ep)
                    w_wd(i, wd)
                    return alarms
                if wd > budgets.node_alarm:
                    alarms.append(
                        f"{kind}-train: no good rotation within budget "
                        "(missing levels, wrong piece count, or a "
                        "starved train)")
                    w_wd(i, 0)
            conv(ctx, i, parent, children, own)
            if not hold_broadcast:
                alarms.extend(
                    broadcast(ctx, i, parent, children, count_claim))
            return alarms

        return fused

    def make_vector_kernel(self, ops, topo):
        """The whole-column classifier behind the numpy-tier vector
        sweep (:func:`repro.verification.verifier.fused_verifier_sweep`
        on a :class:`~repro.sim.npcolumnar.NumpyColumnStore`).

        The fused step of most nodes on most activations is *trivial*:
        it bumps the watchdog and returns without any other write or
        alarm — the parent's activation car names another child (or is
        absent), the subtree is done for the cycle, the broadcast is
        blocked on a lagging child or has nothing to adopt.  Those exit
        conditions are plain int64 comparisons over the train's nat
        columns plus pool-id-indexed attribute lookups, so one ndarray
        pass classifies every batch node; provably-trivial nodes get
        their single watchdog write applied as one masked slice-store,
        everything else (roots, adoption, car movement, boxed junk,
        alarms — anything the masks cannot prove writes nothing more)
        replays the exact scalar fused body.  Equivalence is therefore
        by construction: the vector path only ever *skips* per-node
        code whose effect it proved to be exactly the one masked write.

        Returns an object with ``rebuild``/``classify`` (see
        ``_VectorSweep``); call only when :meth:`make_bulk_step`
        returned a closure (same layout preconditions) and numpy is
        available.
        """
        return _VectorTrainKernel(self, ops, topo)


class _VectorTrainKernel:
    """Whole-column trivial-step classifier for one train component.

    ``rebuild`` (per stability epoch) fills the component's label cache
    eagerly with the exact fill code of the fused prologue and freezes
    the part topology into flat arrays; ``classify`` (per sweep) proves,
    with pure reads only, which batch rows' fused step would be exactly
    "bump the watchdog and return".  Roots, rows under epoch adoption,
    rows whose reads hit boxed overflow, and anything the masks cannot
    decide stay non-trivial and replay the scalar fused body verbatim.
    """

    __slots__ = ("comp", "store", "snap", "act_cache", "obs_cache",
                 "pidx", "idle", "bad", "coff", "cflat", "n_own",
                 "ooff", "oflat", "ohash", "ctxs", "ccs", "needs",
                 "w_src",
                 "w_seq", "w_done", "w_bseq", "w_seen", "w_cnt",
                 "w_wd", "_adopt_memo", "pub_extra")

    def __init__(self, comp, ops, topo):
        self.comp = comp
        self.store = ops.store
        self.snap = ops.snap
        store = ops.store
        self.w_src = store.make_nat_writer(comp.h_src)
        self.w_seq = store.make_nat_writer(comp.h_seq)
        self.w_done = store.make_nat_writer(comp.h_done)
        self.w_bseq = store.make_nat_writer(comp.h_bseq)
        self.w_seen = store.make_nat_writer(comp.h_seen)
        self.w_cnt = store.make_nat_writer(comp.h_cnt)
        self.w_wd = store.make_nat_writer(comp.h_wd)

        def act_attrs(val):
            # mirrors conv()'s activation-car check: (who is named,
            # which cycle); IDX_ODD routes custom-__eq__ junk scalar
            if isinstance(val, tuple) and len(val) == 2:
                c = _nat(val[1], cap=SEQ_MOD)
                return (idx_of(store, val[0]), -1 if c is None else c)
            return (IDX_NOT, -1)

        def obs_attrs(val):
            return (1 if decode_observation(val) is not None else 0,)

        self.act_cache = PoolIdCache(store, 2, act_attrs)
        self.obs_cache = PoolIdCache(store, 1, obs_attrs)
        self.pidx = None
        self.idle = None
        self.bad = None
        self.coff = None
        self.cflat = None
        self.n_own = None
        self.ooff = None
        self.oflat = None
        self.ohash = None
        self.ctxs = None
        self.ccs = None
        self.needs = None
        self._adopt_memo = {}
        self.pub_extra = None

    def rebuild(self, np, topo) -> None:
        """Refresh label-derived row attributes (called when the joint
        stable epoch moved; label registers are stable, so between
        rebuilds every cached entry's sentinel still matches)."""
        comp = self.comp
        cache = comp._label_cache
        index = self.store.index
        n = topo.n
        pidx = np.full(n, -1, np.int64)
        idle = np.zeros(n, bool)
        bad = np.zeros(n, bool)
        n_own = np.zeros(n, np.int64)
        ooff = np.zeros(n + 1, np.int64)
        oflat = []
        ohash = []
        ccs = [None] * n
        needs = [0] * n
        child_rows = []
        for i in range(n):
            ctx = topo.ctxs[i]
            sentinel = ctx.stable_sentinel()
            ent = cache.get(ctx.node)
            if ent is not None and ent[0] == sentinel:
                parent, children, own, count_claim, needed = ent[1]
            else:
                parent = comp.part_parent(ctx)
                children = comp.part_children(ctx)
                own = comp.own_pieces(ctx)
                count_claim = ctx.nat(comp.h_count, cap=4096)
                needed = comp.needed_mask(ctx)
                cache[ctx.node] = (
                    sentinel,
                    (parent, children, own, count_claim, needed))
            idle[i] = count_claim == 0 and needed == 0
            n_own[i] = len(own)
            ooff[i + 1] = ooff[i] + len(own)
            for pc in own:
                oflat.append(pc)
                try:
                    hash(pc)        # a planned emission must intern
                    ohash.append(True)
                except Exception:
                    ohash.append(False)
            ccs[i] = count_claim
            needs[i] = needed
            crow = []
            try:
                if parent is not None:
                    pidx[i] = index[parent]
                for child in children:
                    crow.append(index[child])
            except (KeyError, TypeError, IndexError):
                bad[i] = True   # unmappable label: the scalar body owns
                crow = []       # whatever happens (including the raise)
            child_rows.append(crow)
        coff = np.zeros(n + 1, np.int64)
        np.cumsum(np.fromiter((len(r) for r in child_rows), np.int64,
                              count=n), out=coff[1:])
        cflat = np.empty(int(coff[-1]), np.int64)
        for i, r in enumerate(child_rows):
            cflat[int(coff[i]):int(coff[i + 1])] = r
        self.pidx, self.idle, self.bad = pidx, idle, bad
        self.coff, self.cflat = coff, cflat
        self.n_own = n_own
        self.ooff = ooff
        self.oflat = oflat
        self.ohash = np.array(ohash, bool) if ohash \
            else np.zeros(0, bool)
        self.ctxs = topo.ctxs
        self.ccs, self.needs = ccs, needs
        # the adopt-vetting memo reads stable labels (roots, jmask);
        # a stable-epoch move may change any of them
        self._adopt_memo = {}

    def classify(self, np, ia, row_of, na, hold):
        """(trivial-mask, broadcast-done-mask, apply, adopt-plans) for
        the batch rows ``ia``.

        ``na`` is the per-row node-alarm budget (-1 where unknown, which
        simply fails the watchdog bound), ``hold`` the sweep's
        hold_broadcast flag.  ``apply(rows)`` performs the one masked
        watchdog write (plus any planned adopts) for the row *positions*
        the orchestrator kept — an int64 index array into ``ia``, so
        the cost is O(|rows|) however wide the classification was (the
        persistent sweep plans replay tiny conflict-free segments
        against a full-width classification).

        The broadcast-done mask marks rows whose *broadcast half* is
        proven silent (writes nothing, raises no alarm) or fully
        planned as an adopt, even though the row as a whole is not
        trivial — the replay loop steps those rows with
        ``hold_broadcast=True``, skipping the child scan and adopt
        logic the scalar body would re-derive, and then executes the
        row's adopt plan (if any) so the writes land in scalar order.
        Epoch adoption and the root-reset branch return before the
        broadcast, so the flag is vacuous (and harmless) there; roots
        never set it (their broadcast half drains ``out``)."""
        comp = self.comp
        store, snap = self.store, self.snap
        data, sdata = store.data, snap.data
        m = len(ia)
        pidx = self.pidx[ia]
        parented = (pidx >= 0) & ~self.bad[ia]
        pj = np.where(pidx >= 0, pidx, 0)

        # epoch adoption would reset before the watchdog ever bumps
        ep_v = view64(data[comp.h_ep])[ia]
        pe = view64(sdata[comp.h_ep])[pj]
        pep_valid = (pe >= 0) & (pe <= SEQ_MOD)
        epoch_ok = ~pep_valid | ((ep_v > SENT_CEIL) & (ep_v == pe))

        # watchdog: idle rows skip it; others must stay under budget
        # (over-budget rows alarm and reset — scalar's job)
        idle = self.idle[ia]
        wd_v = view64(data[comp.h_wd])[ia]
        wd_new = np.where((wd_v >= 0) & (wd_v <= _NAT_CAP), wd_v, 0) + 1
        wd_ok = idle | (wd_new <= na)

        # convergecast exits without writing iff the parent's activation
        # car is absent / names someone else / is malformed, or names us
        # for the cycle our subtree already finished
        acts = self.act_cache.sync()
        ar = view64(sdata[comp.h_act])[pj]
        a_pool = (ar >= 0) & (ar < self.act_cache.filled)
        api = np.where(a_pool, ar, 0)
        af = acts[0][api]
        ac = acts[1][api]
        a_none = (ar <= SENT_CEIL) & (ar != BOX_S)
        mine = a_pool & (af == ia)
        odd = a_pool & (af == IDX_ODD)
        not_mine = a_none | (a_pool & ~mine & ~odd)
        cyc_v = view64(data[comp.h_cyc])[ia]
        cyc = np.where((cyc_v >= 0) & (cyc_v <= SEQ_MOD), cyc_v, 0)
        done_v = view64(data[comp.h_done])[ia]
        done_eq = (done_v > SENT_CEIL) & (done_v == cyc)
        conv_triv = not_mine | (mine & ((ac == -1)
                                        | ((ac == cyc) & done_eq)))

        # planned delivery: it IS my turn (named in the parent's car,
        # matching cycle, subtree unfinished), no car is pending, and
        # the transition is an *emission* (the next source is an own
        # piece: write the car, bump seq and src) or a *completion*
        # (sources exhausted: clear the activation, post done).  Both
        # write only own registers plus the activation car the sweep
        # plans already watch (chk_tr), so the verdicts are as durable
        # as the plain trivial ones — unlike ack- and child-waits,
        # whose proofs would have to watch the cars and acks themselves
        # and go stale on every delivery in the subtree.
        emit = exh = src = seq_new = None
        deliver = (parented & mine & (ac == cyc) & ~done_eq
                   & (done_v != BOX_S))
        if deliver.any():
            out_v = view64(data[comp.h_out])[ia]
            o_none = deliver & (out_v == NONE_S)
            if o_none.any():
                src_v = view64(data[comp.h_src])[ia]
                src = np.where((src_v >= 0) & (src_v <= 4096),
                               src_v, 0)
                no = self.n_own[ia]
                emit = o_none & (src < no)
                if emit.any():
                    # an unhashable own piece could not intern: scalar
                    apos = np.where(emit, self.ooff[ia] + src, 0)
                    emit &= self.ohash[apos]
                    sq_v = view64(data[comp.h_seq])[ia]
                    seq_new = (np.where(
                        (sq_v >= 0) & (sq_v <= SEQ_MOD), sq_v, 0)
                        + 1) % SEQ_MOD
                    conv_triv = conv_triv | emit
                else:
                    emit = None
                exh = (o_none & (src >= no)
                       & (src - no >= (self.coff[ia + 1]
                                       - self.coff[ia])))
                if exh.any():
                    conv_triv = conv_triv | exh
                else:
                    exh = None
        # completions clear the activation car — a register the
        # neighbouring classifications read; the plan's publication
        # mask must cover them (emissions touch no watched column)
        self.pub_extra = np.flatnonzero(exh) if exh is not None \
            else None

        pending = {}
        if hold is True:
            bc_triv = np.ones(m, bool)
            bc_done = np.zeros(m, bool)
        else:
            # broadcast exits without writing iff a child's slot lags
            # (first-mismatch return) or there is nothing to adopt; any
            # boxed read in the gate makes the row scalar
            bseq_v = view64(data[comp.h_bseq])[ia]
            bseq = np.where((bseq_v >= 0) & (bseq_v <= SEQ_MOD),
                            bseq_v, 0)
            e_node, e_pos = csr_take(self.coff, ia)
            cb = view64(sdata[comp.h_bseq])[self.cflat[e_pos]]
            any_box = seg_any(cb == BOX_S, e_node, m)
            any_mism = seg_any((cb <= SENT_CEIL)
                               | (cb != bseq[e_node]), e_node, m)
            obs_ok = self.obs_cache.sync()[0]
            pb = view64(sdata[comp.h_bbuf])[pj]
            b_pool = (pb >= 0) & (pb < self.obs_cache.filled)
            pobs_valid = b_pool & (obs_ok[np.where(b_pool, pb, 0)] == 1)
            psr = view64(sdata[comp.h_bseq])[pj]
            advance = ((psr >= 0) & (psr <= SEQ_MOD) & (psr != bseq)
                       & pobs_valid)
            bc_triv = ~any_box & (any_mism
                                  | (~advance & (pb != BOX_S)))
            # the broadcast-adopt fast path: every child in step, the
            # parent's slot holds a decodable observation one sequence
            # ahead — the scalar body would adopt it and account the
            # piece.  Rows whose adopt is provably alarm-free and free
            # of junk comparisons get the exact write sequence planned
            # here and executed after the prologue (masked wd write or
            # scalar replay with the broadcast held); the rest replay.
            adopt = (parented & epoch_ok & ~any_box & ~any_mism
                     & advance)
            if hold is not False:    # per-row hold mask (Want mode)
                adopt &= ~hold
            if adopt.any():
                pending = self._plan_adopts(np.flatnonzero(adopt),
                                            ia, pb, psr)
                if pending:
                    planned = np.zeros(m, bool)
                    planned[list(pending)] = True
                    bc_triv = bc_triv | planned
            # proven-handled broadcast for parented rows, regardless of
            # what the prologue or convergecast do (they touch none of
            # the gate's reads before the broadcast would run)
            bc_done = parented & bc_triv
            if hold is not False:
                bc_triv = hold | bc_triv

        triv = parented & epoch_ok & wd_ok & conv_triv & bc_triv
        ovf = store.overflow[comp.h_wd]
        if ovf:
            # the nat writer pops a row's boxed entry; keep those scalar
            for node_i in ovf:
                r = row_of[node_i]
                if r >= 0:
                    triv[r] = False

        h_wd = comp.h_wd
        dc = store.dirty_cols

        exec_adopt = self._exec_adopt
        conv_exec = None
        if emit is not None or exh is not None:
            oflat, ooff = self.oflat, self.ooff
            overflow = store.overflow
            intern = store.intern
            h_out, h_act = comp.h_out, comp.h_act
            out_col, act_col = data[h_out], data[h_act]
            w_seq, w_src, w_done = self.w_seq, self.w_src, self.w_done

            def conv_exec(rows):
                if emit is not None:
                    e = rows[emit[rows]]
                    if len(e):
                        ovf = overflow[h_out]
                        for k in e.tolist():
                            i = int(ia[k])
                            if ovf:
                                ovf.pop(i, None)
                            sq = int(seq_new[k])
                            out_col[i] = intern(
                                (sq,
                                 oflat[int(ooff[i]) + int(src[k])]))
                            w_seq(i, sq)
                            w_src(i, int(src[k]) + 1)
                        dc[h_out] = 1
                if exh is not None:
                    g = rows[exh[rows]]
                    if len(g):
                        ovf = overflow[h_act]
                        for k in g.tolist():
                            i = int(ia[k])
                            if ovf:
                                ovf.pop(i, None)
                            act_col[i] = NONE_S
                            w_done(i, int(cyc[k]))
                        dc[h_act] = 1

        def apply(rows):
            sel = rows[~idle[rows]]
            if len(sel):
                view64(data[h_wd])[ia[sel]] = wd_new[sel]
                dc[h_wd] = 1
            if conv_exec is not None:
                # scalar order inside the step: the convergecast's
                # writes land after the watchdog bump ...
                conv_exec(rows)
            if pending:
                kept = set(rows.tolist())
                for k, ent in pending.items():
                    # ... and before the broadcast's adopt (whose
                    # accounting may reset the freshly bumped watchdog)
                    if k in kept:
                        exec_adopt(ent)

        return triv, bc_done, apply, pending

    def _plan_adopts(self, rows, ia, pb, psr):
        """Vet the adopt-candidate rows for the exact-write fast path.

        A row qualifies only when the full adopt — membership flag,
        root-consistency checks, boundary comparison, and the interning
        of the new slot values — is provably alarm-free and touches no
        value whose comparison or hash the masks cannot trust (boxed
        overflow, junk tuples, unhashable weights); everything else is
        left for the scalar replay.  Returns ``{row: plan}`` for
        :meth:`_exec_adopt`."""
        comp = self.comp
        store = self.store
        pool = store.pool_values
        overflow = store.overflow
        memos = store.decode_memo
        memo_for = store.memo_for
        data = store.data
        h_bbuf, h_roots = comp.h_bbuf, comp.h_roots
        roots_col = data[h_roots]
        last_col = data[comp.h_last]
        membership = comp.membership_flag
        ctxs = self.ctxs
        ccs, needs = self.ccs, self.needs
        ia_l = ia
        # the static half of the vetting — decode, membership flag,
        # root-consistency, hashability — is a pure function of the
        # row's stable labels and the slot's pool id, so it memoizes
        # on (row, id) until the stable epoch moves (rebuild clears);
        # only the boundary compare and sequence math are per call
        amemo = self._adopt_memo
        pending = {}
        for k in rows.tolist():
            i = int(ia_l[k])
            v = int(pb[k])
            mkey = (i, v)
            ent = amemo.get(mkey, NO_DECODE)
            if ent is NO_DECODE:
                memo = memos[h_bbuf]
                try:
                    pobs = memo[v]
                except (TypeError, IndexError):
                    pobs = NO_DECODE
                if pobs is NO_DECODE:
                    pobs = decode_observation(pool[v])
                    memo_for(h_bbuf, v)[v] = pobs
                piece = pobs.piece
                level, root = piece[1], piece[0]
                ctx = ctxs[i]
                flag = membership(ctx, piece, pobs.flag)
                ent = (piece, flag, level, root)
                rv = roots_col[i]
                roots = pool[rv] if rv > SENT_CEIL else (
                    overflow[h_roots][i] if rv == BOX_S else None)
                if flag and isinstance(roots, str) and \
                        level < len(roots):
                    rc = roots[level]
                    if (rc == "1" and root != ctx.node) or \
                            (rc == "0" and root == ctx.node):
                        ent = None  # would alarm: the scalar body owns it
                if ent is not None:
                    try:
                        hash(piece)  # the new slot must intern cleanly
                    except Exception:
                        ent = None
                amemo[mkey] = ent
            if ent is None:
                continue
            piece, flag, level, root = ent
            lv = last_col[i]
            if lv == BOX_S:
                continue            # boxed junk comparison stays scalar
            last = pool[lv] if lv > SENT_CEIL else None
            if last is None:
                boundary = False
            elif type(last) is tuple and len(last) == 2 and \
                    type(last[0]) is int and type(last[1]) is int:
                boundary = (level, root) <= last
            else:
                continue            # junk tuple comparison stays scalar
            nbseq = ((int(psr[k]) - 1) % SEQ_MOD + 1) % SEQ_MOD
            pending[k] = (i, piece, flag, level, root, boundary, nbseq,
                          ccs[i], needs[i])
        return pending

    def _exec_adopt(self, ent):
        """Apply one planned adopt: the exact write sequence of the
        scalar broadcast's adopt branch plus ``account`` (alarm-free by
        :meth:`_plan_adopts`), via the store's own writers."""
        i, piece, flag, level, root, boundary, nbseq, cc, nd = ent
        comp = self.comp
        store = self.store
        data = store.data
        h_bbuf, h_last, h_sync = comp.h_bbuf, comp.h_last, comp.h_sync
        overflow = store.overflow
        dc = store.dirty_cols
        ovf = overflow[h_bbuf]
        if ovf:
            ovf.pop(i, None)
        data[h_bbuf][i] = store.intern((piece, flag))
        dc[h_bbuf] = 1
        self.w_bseq(i, nbseq)
        if boundary:
            good = True
            sync_col = data[h_sync]
            v = sync_col[i]
            if v is not UNSET and v:
                v = data[comp.h_seen][i]
                seen = v if 0 <= v <= _NAT_CAP else 0
                if nd & ~seen:
                    good = False
                v = data[comp.h_cnt][i]
                cnt = v if 0 <= v <= (1 << 20) else 0
                if cc is not None and cnt != cc:
                    good = False
            sync_col[i] = True
            dec = store.decoded[h_sync]
            if dec is not None:
                dec[i] = NO_DECODE
            dc[h_sync] = 1
            self.w_seen(i, (1 << level) if flag else 0)
            self.w_cnt(i, 1)
            if good:
                self.w_wd(i, 0)
        else:
            if flag:
                v = data[comp.h_seen][i]
                seen = v if 0 <= v <= _NAT_CAP else 0
                self.w_seen(i, seen | (1 << level))
            v = data[comp.h_cnt][i]
            cnt = v if 0 <= v <= (1 << 20) else 0
            self.w_cnt(i, cnt + 1)
        ovf = overflow[h_last]
        if ovf:
            ovf.pop(i, None)
        data[h_last][i] = store.intern((level, root))
        dc[h_last] = 1
