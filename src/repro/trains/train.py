"""The train mechanism (Section 7.1) as a per-node protocol component.

One :class:`TrainComponent` instance drives one partition's train at every
node (the verifier composes two: Top and Bottom, multiplexed).  Per node
the component keeps O(log n) bits:

Convergecast (the two-car pipeline of the Train Convergecast Protocol):

* ``<p>out``  — the outgoing car: ``(seq, piece)`` or None;
* ``<p>src``  — DFS source pointer: own stored pieces first, then the
  part children in port order;
* ``<p>cyc``  — the convergecast cycle the node is serving (mod 64);
* ``<p>done`` — set to the cycle id when the node's subtree finished;
* ``<p>act``  — which child is currently active, ``(child, cyc)``;
* ``<p>tak``  — ack register: the ``(child, seq)`` last consumed.

Broadcast (pipelined flooding with membership flags, Section 7.1):

* ``<p>bseq`` / ``<p>bbuf`` — the broadcast slot: current ``(piece, flag)``
  and its sequence number; a node adopts its part parent's slot when all
  of its own part children caught up — the neighbours' *Show* of
  Section 7.2 is exactly this slot;
* ``<p>seen`` — levels of flagged pieces seen in the current rotation;
* ``<p>last`` / ``<p>cnt`` / ``<p>sync`` — rotation-boundary detection
  ((level, root) must increase lexicographically within a rotation),
  piece count, and the synced-once latch;
* ``<p>wd`` / ``<p>ep`` — watchdog counter and reset epoch.

Self-stabilization: the part root resets the train (epoch bump, adopted
downward) when a rotation exceeds its budget — corrupted *dynamic* state
heals silently; corrupted *labels* keep starving the nodes whose larger
alarm budgets then fire (Section 8's detection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..labels.registers import (REG_ELL, REG_JMASK, REG_N, REG_PARENT_ID,
                                REG_ROOTS)
from ..labels.wellforming import level_is_bottom, sorted_levels
from .budgets import Budgets, compute_budgets

SEQ_MOD = 64


def _nat(x: Any, cap: int = 1 << 30) -> Optional[int]:
    """x as a bounded non-negative int, else None."""
    if isinstance(x, int) and not isinstance(x, bool) and 0 <= x <= cap:
        return x
    return None


def valid_piece(piece: Any) -> bool:
    """Shape check for a piece (root, level, weight)."""
    return (isinstance(piece, tuple) and len(piece) == 3
            and isinstance(piece[0], int) and not isinstance(piece[0], bool)
            and _nat(piece[1], cap=256) is not None)


def piece_key(piece: Tuple) -> Tuple[int, int]:
    """The cyclic ordering key (level, root) of a piece."""
    return (piece[1], piece[0])


@dataclass
class TrainObservation:
    """What the comparison layer reads off a neighbour's broadcast slot."""

    piece: Tuple
    flag: bool


class TrainComponent:
    """One partition's train at every node.  ``kind`` is 'top'/'bottom'."""

    def __init__(self, kind: str, reg_root: str, reg_count: str,
                 reg_pieces: str, synchronous: bool) -> None:
        self.kind = kind
        self.p = "tt_" if kind == "top" else "bt_"
        self.reg_root = reg_root
        self.reg_count = reg_count
        self.reg_pieces = reg_pieces
        self.synchronous = synchronous

    # -- register helpers ------------------------------------------------
    def r(self, name: str) -> str:
        return self.p + name

    def init_node(self, ctx) -> None:
        p = self.r
        ctx.set(p("out"), None)
        ctx.set(p("src"), 0)
        ctx.set(p("cyc"), 0)
        ctx.set(p("done"), None)
        ctx.set(p("act"), None)
        ctx.set(p("tak"), None)
        ctx.set(p("bseq"), 0)
        ctx.set(p("bbuf"), None)
        ctx.set(p("seen"), 0)
        ctx.set(p("last"), None)
        ctx.set(p("cnt"), 0)
        ctx.set(p("sync"), False)
        ctx.set(p("wd"), 0)
        ctx.set(p("ep"), 0)

    # -- topology inside the part ----------------------------------------
    def part_root_id(self, ctx) -> Optional[int]:
        root = ctx.get(self.reg_root)
        return root if isinstance(root, int) else None

    def part_parent(self, ctx) -> Optional[int]:
        pid = ctx.get(REG_PARENT_ID)
        if pid is None or pid not in ctx.neighbors:
            return None
        if ctx.read(pid, self.reg_root) == ctx.get(self.reg_root):
            return pid
        return None

    def part_children(self, ctx) -> List[int]:
        me = ctx.node
        mine = ctx.get(self.reg_root)
        return [c for c in ctx.neighbors
                if ctx.read(c, REG_PARENT_ID) == me
                and ctx.read(c, self.reg_root) == mine]

    def own_pieces(self, ctx) -> Tuple:
        pieces = ctx.get(self.reg_pieces)
        if not isinstance(pieces, tuple):
            return ()
        return tuple(pc for pc in pieces if valid_piece(pc))

    def is_part_root(self, ctx) -> bool:
        return self.part_parent(ctx) is None

    # -- membership flags (Section 7.1) -----------------------------------
    def membership_flag(self, ctx, piece: Tuple, parent_flag: bool) -> bool:
        """Whether this node belongs to the fragment the piece describes."""
        z, level, _w = piece
        roots = ctx.get(REG_ROOTS)
        jmask = _nat(ctx.get(REG_JMASK)) or 0
        delim = _nat(ctx.get("delim")) or 0
        if not isinstance(roots, str) or level >= len(roots):
            return False
        want_bottom = (self.kind == "bottom")
        cls = level_is_bottom(jmask, delim, level)
        if cls is None or cls != want_bottom:
            return False
        if self.kind == "top":
            # Claim 6.3: at most one top fragment per level crosses a part.
            return True
        if roots[level] == "1":
            return z == ctx.node
        if roots[level] == "0":
            return bool(parent_flag)
        return False

    def needed_mask(self, ctx) -> int:
        """Levels this node must see flagged in this train's rotations."""
        jmask = _nat(ctx.get(REG_JMASK)) or 0
        delim = _nat(ctx.get("delim")) or 0
        levels = sorted_levels(jmask)
        mask = 0
        for i, j in enumerate(levels):
            if (i < delim) == (self.kind == "bottom"):
                mask |= 1 << j
        return mask

    # -- epochs / reset ----------------------------------------------------
    def _reset_dynamic(self, ctx, epoch: int) -> None:
        self.init_node(ctx)
        ctx.set(self.r("ep"), epoch % SEQ_MOD)

    # -- the per-activation step -------------------------------------------
    def step(self, ctx, budgets: Budgets,
             hold_broadcast: bool = False) -> List[str]:
        """Advance the train by one atomic step; returns alarm reasons.

        ``hold_broadcast`` freezes this node's broadcast slot for one step
        (the Want-mode server delaying the train, Section 7.2.2); the
        convergecast keeps flowing.
        """
        p = self.r
        alarms: List[str] = []
        parent = self.part_parent(ctx)
        children = self.part_children(ctx)
        own = self.own_pieces(ctx)
        count_claim = _nat(ctx.get(self.reg_count), cap=4096)

        # --- epoch adoption (train self-stabilization) --------------------
        if parent is not None:
            pep = _nat(ctx.read(parent, p("ep")), cap=SEQ_MOD)
            if pep is not None and pep != ctx.get(p("ep")):
                self._reset_dynamic(ctx, pep)
                return alarms

        # --- watchdogs -----------------------------------------------------
        idle = (count_claim == 0 and self.needed_mask(ctx) == 0)
        if not idle:
            wd = (_nat(ctx.get(p("wd"))) or 0) + 1
            ctx.set(p("wd"), wd)
            if parent is None and wd > 0 and wd % budgets.root_reset == 0:
                # the part root restarts a wedged train
                new_ep = ((_nat(ctx.get(p("ep")), cap=SEQ_MOD) or 0) + 1) % SEQ_MOD
                self._reset_dynamic(ctx, new_ep)
                ctx.set(p("wd"), wd)  # keep counting toward the alarm
                return alarms
            if wd > budgets.node_alarm:
                alarms.append(f"{self.kind}-train: no good rotation within "
                              "budget (missing levels, wrong piece count, "
                              "or a starved train)")
                ctx.set(p("wd"), 0)

        self._step_convergecast(ctx, parent, children, own)
        if not hold_broadcast:
            alarms.extend(
                self._step_broadcast(ctx, parent, children, count_claim))
        return alarms

    # -- convergecast -----------------------------------------------------
    def _step_convergecast(self, ctx, parent, children, own) -> None:
        p = self.r
        me = ctx.node
        cyc = _nat(ctx.get(p("cyc")), cap=SEQ_MOD) or 0

        if parent is not None:
            pact = ctx.read(parent, p("act"))
            if not (isinstance(pact, tuple) and len(pact) == 2
                    and pact[0] == me):
                return  # not my turn in the parent's DFS
            new_cyc = _nat(pact[1], cap=SEQ_MOD)
            if new_cyc is None:
                return
            if new_cyc != cyc:
                # a fresh DFS visit: restart my subtree's delivery
                ctx.set(p("cyc"), new_cyc)
                ctx.set(p("src"), 0)
                ctx.set(p("done"), None)
                ctx.set(p("act"), None)
                cyc = new_cyc
            if ctx.get(p("done")) == cyc:
                return  # finished; wait for the next visit

        out = ctx.get(p("out"))
        if out is not None and not (isinstance(out, tuple) and len(out) == 2
                                    and valid_piece(out[1])):
            ctx.set(p("out"), None)
            out = None

        # ack: the parent consumed my outgoing car
        if out is not None and parent is not None:
            ptak = ctx.read(parent, p("tak"))
            if isinstance(ptak, tuple) and len(ptak) == 2 and \
                    ptak[0] == me and ptak[1] == out[0]:
                ctx.set(p("out"), None)
                out = None

        if out is not None:
            return  # still waiting for the car to be consumed

        src = _nat(ctx.get(p("src")), cap=4096)
        if src is None:
            src = 0
        seq = ((_nat(ctx.get(p("seq")), cap=SEQ_MOD) or 0) + 1) % SEQ_MOD

        if src < len(own):
            ctx.set(p("out"), (seq, own[src]))
            ctx.set(p("seq"), seq)
            ctx.set(p("src"), src + 1)
            return

        child_idx = src - len(own)
        while child_idx < len(children):
            child = children[child_idx]
            ctx.set(p("act"), (child, cyc))
            cdone = ctx.read(child, p("done"))
            cout = ctx.read(child, p("out"))
            if isinstance(cout, tuple) and len(cout) == 2 and \
                    valid_piece(cout[1]):
                tak = ctx.get(p("tak"))
                if tak != (child, cout[0]):
                    # take the child's piece into my outgoing car
                    ctx.set(p("out"), (seq, cout[1]))
                    ctx.set(p("seq"), seq)
                    ctx.set(p("tak"), (child, cout[0]))
                    return
            if cdone == cyc:
                child_idx += 1
                ctx.set(p("src"), len(own) + child_idx)
                continue
            return  # wait for this child

        # all sources exhausted: subtree finished for this cycle
        ctx.set(p("act"), None)
        if parent is not None:
            ctx.set(p("done"), cyc)
        else:
            ctx.set(p("cyc"), (cyc + 1) % SEQ_MOD)
            ctx.set(p("src"), 0)

    # -- broadcast ----------------------------------------------------------
    def _step_broadcast(self, ctx, parent, children, count_claim) -> List[str]:
        p = self.r
        alarms: List[str] = []
        bseq = _nat(ctx.get(p("bseq")), cap=SEQ_MOD) or 0

        # children must catch up before this node's slot may change
        for c in children:
            if ctx.read(c, p("bseq")) != bseq:
                return alarms

        new_slot = None
        if parent is None:
            out = ctx.get(p("out"))
            if isinstance(out, tuple) and len(out) == 2 and valid_piece(out[1]):
                piece = out[1]
                flag = self.membership_flag(ctx, piece, parent_flag=False)
                new_slot = (piece, flag)
                ctx.set(p("out"), None)  # the broadcast consumed the car
        else:
            pseq = _nat(ctx.read(parent, p("bseq")), cap=SEQ_MOD)
            pbuf = ctx.read(parent, p("bbuf"))
            if pseq is not None and pseq != bseq and \
                    isinstance(pbuf, tuple) and len(pbuf) == 2 and \
                    valid_piece(pbuf[0]):
                piece, pflag = pbuf
                flag = self.membership_flag(ctx, piece, bool(pflag))
                new_slot = (piece, flag)
                bseq = (pseq - 1) % SEQ_MOD  # will advance to pseq below

        if new_slot is None:
            return alarms

        piece, flag = new_slot
        ctx.set(p("bbuf"), (piece, flag))
        ctx.set(p("bseq"), (bseq + 1) % SEQ_MOD)
        alarms.extend(self._account_piece(ctx, piece, flag, count_claim))
        return alarms

    # -- rotation accounting (cycle-set checks of Section 8) ---------------
    def _account_piece(self, ctx, piece, flag, count_claim) -> List[str]:
        p = self.r
        alarms: List[str] = []
        key = piece_key(piece)
        last = ctx.get(p("last"))
        boundary = (isinstance(last, tuple) and key <= tuple(last)) \
            if last is not None else False

        roots = ctx.get(REG_ROOTS)
        level = piece[1]
        if flag and isinstance(roots, str) and level < len(roots):
            if roots[level] == "1" and piece[0] != ctx.node:
                alarms.append(f"{self.kind}-train: fragment root id mismatch")
            if roots[level] == "0" and piece[0] == ctx.node:
                alarms.append(f"{self.kind}-train: member claims to be "
                              "the fragment root")

        if boundary:
            # A rotation only placates the watchdog when it is *good*:
            # correct piece count and full coverage of this node's levels.
            # Transient corruption of the pipeline produces bad rotations
            # for at most O(root_reset) rounds before the part root's
            # epoch reset repairs it (Observation 8.1); persistently bad
            # rotations — wrong labels — starve the watchdog until the
            # node_alarm budget fires (Claim 8.2's detection).
            good = True
            if ctx.get(p("sync")):
                needed = self.needed_mask(ctx)
                seen = _nat(ctx.get(p("seen"))) or 0
                if needed & ~seen:
                    good = False
                cnt = _nat(ctx.get(p("cnt")), cap=1 << 20) or 0
                if count_claim is not None and cnt != count_claim:
                    good = False
            ctx.set(p("sync"), True)
            ctx.set(p("seen"), (1 << level) if flag else 0)
            ctx.set(p("cnt"), 1)
            if good:
                ctx.set(p("wd"), 0)
        else:
            if flag:
                ctx.set(p("seen"), (_nat(ctx.get(p("seen"))) or 0) | (1 << level))
            ctx.set(p("cnt"), (_nat(ctx.get(p("cnt")), cap=1 << 20) or 0) + 1)
        ctx.set(p("last"), key)
        return alarms

    # -- what neighbours see (Show) ----------------------------------------
    def observe(self, ctx, neighbor: int) -> Optional[TrainObservation]:
        """The neighbour's current broadcast slot, if well-formed."""
        buf = ctx.read(neighbor, self.r("bbuf"))
        if isinstance(buf, tuple) and len(buf) == 2 and valid_piece(buf[0]):
            return TrainObservation(piece=buf[0], flag=bool(buf[1]))
        return None

    def own_show(self, ctx) -> Optional[TrainObservation]:
        """This node's own broadcast slot (its train's current piece)."""
        buf = ctx.get(self.r("bbuf"))
        if isinstance(buf, tuple) and len(buf) == 2 and valid_piece(buf[0]):
            return TrainObservation(piece=buf[0], flag=bool(buf[1]))
        return None
