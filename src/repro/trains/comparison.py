"""The Ask/Show/Want comparison mechanism (Sections 7.2 and 8).

A node ``v`` rotates through the levels of J(v).  For the current level
``j`` it samples its own train for the flagged piece I(F_j(v)), stores it
in ``Ask``, and compares it against what each neighbour ``u`` *shows* —
the broadcast slots of u's two trains:

* **synchronous mode** (Lemma 7.5): v holds the level for a full
  ask-window (one train-cycle budget); every neighbour's train is
  guaranteed to have displayed its matching piece within the window, so
  the sampling is stateless and all neighbours are compared in parallel.
* **asynchronous Want mode** (Lemma 7.6): v serves neighbours one at a
  time, filing a request in its ``Want`` register; the server delays its
  train while a displayed piece is wanted (a constant delay per node), so
  a slow reader never misses a piece.  An intentionally serialized
  variant ("simple") reproduces the O(Delta^2 log^3 n) handshake the
  paper describes first.

When the events E(v, u, j) occur the verifier applies the minimality
checks of Section 8:

* **C1** — if v is the endpoint of the candidate edge (v, u0) of F_j(v):
  u0 must lie outside F_j(v) and the candidate's weight must equal the
  claimed minimum omega(F_j(v));
* **C2** — for every outgoing edge (v, u): omega(F_j(v)) <= w(v, u);
* **piece agreement** (Claim 8.3) — neighbours inside the same fragment
  must show the identical piece.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..labels.registers import (REG_DELIM, REG_ENDP, REG_JMASK, REG_N,
                                REG_PARENT_ID, REG_PARENTS, REG_ROOTS)
from ..labels.strings import ENDP_DOWN, ENDP_UP
from ..labels.wellforming import sorted_levels
from .budgets import Budgets
from .train import TrainComponent, TrainObservation, valid_piece, _nat

#: comparison modes
MODE_SYNC_WINDOW = "sync-window"
MODE_WANT = "want"
MODE_WANT_SIMPLE = "want-simple"


def rotation_settled(network, min_rotations: int = 1,
                     base: Optional[dict] = None) -> bool:
    """Steady-state predicate over the ``_rot`` ghost instrumentation
    written by :meth:`ComparisonComponent._advance`: every node has
    completed ``min_rotations`` full Ask rotations (beyond its ``base``
    count, when given), or some node already raised an alarm.

    The single definition of "the verifier has settled" — the detection
    harness, the campaign engine, and the self-stabilization transformer
    all key off it.
    """
    if network.alarms():
        return True
    if base is None:
        return all((regs.get("_rot") or 0) >= min_rotations
                   for regs in network.registers.values())
    return all((regs.get("_rot") or 0) >= base.get(v, 0) + min_rotations
               for v, regs in network.registers.items())

REG_ASK = "cmp_ask"          # the piece currently exposed for comparison
REG_ASK_IDX = "cmp_idx"      # index into J(v) of the current level
REG_ASK_WAIT = "cmp_wait"    # synchronous hold-down counter
REG_ASK_WD = "cmp_wd"        # progress watchdog
REG_WANT = "cmp_want"        # (server, level) request (asynchronous)
REG_ASK_NBR = "cmp_nbr"      # which neighbour is being served (async)
REG_SVC_WD = "cmp_svc"       # per-service watchdog (async)
REG_TURN = "cmp_turn"        # server round-robin pointer ("simple" mode)


class ComparisonComponent:
    """Per-node comparison logic over two train components.

    ``only_top`` restricts the Ask rotation to the node's top levels —
    used by the hybrid scheme of :mod:`repro.verification.hybrid`, which
    verifies bottom levels locally from replicated pieces.
    """

    def __init__(self, top: TrainComponent, bottom: TrainComponent,
                 mode: str, only_top: bool = False) -> None:
        if mode not in (MODE_SYNC_WINDOW, MODE_WANT, MODE_WANT_SIMPLE):
            raise ValueError(f"unknown comparison mode {mode!r}")
        self.top = top
        self.bottom = bottom
        self.mode = mode
        self.only_top = only_top

    def _levels(self, ctx) -> List[int]:
        levels = sorted_levels(_nat(ctx.get(REG_JMASK)) or 0)
        if self.only_top:
            delim = _nat(ctx.get(REG_DELIM)) or 0
            levels = levels[delim:]
        return levels

    # ------------------------------------------------------------------
    def init_node(self, ctx) -> None:
        ctx.set(REG_ASK, None)
        ctx.set(REG_ASK_IDX, 0)
        ctx.set(REG_ASK_WAIT, 0)
        ctx.set(REG_ASK_WD, 0)
        ctx.set(REG_WANT, None)
        ctx.set(REG_ASK_NBR, 0)
        ctx.set(REG_SVC_WD, 0)
        ctx.set(REG_TURN, 0)

    # ------------------------------------------------------------------
    # what the servers must hold (queried by the verifier before the
    # trains' broadcast steps)
    # ------------------------------------------------------------------
    def held_levels(self, ctx) -> Tuple[Optional[int], Optional[int]]:
        """(top_level, bottom_level) this node must keep displayed."""
        if self.mode == MODE_SYNC_WINDOW:
            return (None, None)
        me = ctx.node
        serve_only = None
        if self.mode == MODE_WANT_SIMPLE:
            nbrs = ctx.neighbors
            if nbrs:
                turn = (_nat(ctx.get(REG_TURN)) or 0) % len(nbrs)
                serve_only = nbrs[turn]
        held_top = held_bot = None
        for train, attr in ((self.top, 0), (self.bottom, 1)):
            show = train.own_show(ctx)
            if show is None or not show.flag:
                continue
            lvl = show.piece[1]
            for u in ctx.neighbors:
                if serve_only is not None and u != serve_only:
                    continue
                want = ctx.read(u, REG_WANT)
                if isinstance(want, tuple) and len(want) == 2 and \
                        want[0] == me and want[1] == lvl:
                    if attr == 0:
                        held_top = lvl
                    else:
                        held_bot = lvl
        return (held_top, held_bot)

    def serve_turn(self, ctx) -> None:
        """Advance the round-robin pointer ("simple" server side)."""
        if self.mode != MODE_WANT_SIMPLE:
            return
        nbrs = ctx.neighbors
        if not nbrs:
            return
        turn = (_nat(ctx.get(REG_TURN)) or 0) % len(nbrs)
        current = nbrs[turn]
        want = ctx.read(current, REG_WANT)
        if not (isinstance(want, tuple) and len(want) == 2
                and want[0] == ctx.node):
            ctx.set(REG_TURN, (turn + 1) % len(nbrs))

    # ------------------------------------------------------------------
    # main step
    # ------------------------------------------------------------------
    def step(self, ctx, budgets: Budgets) -> List[str]:
        alarms: List[str] = []
        levels = self._levels(ctx)
        if not levels:
            return alarms

        wd = (_nat(ctx.get(REG_ASK_WD)) or 0) + 1
        ctx.set(REG_ASK_WD, wd)
        if wd > budgets.ask_alarm:
            alarms.append("ask: no comparison progress within budget")
            ctx.set(REG_ASK_WD, 0)

        ask = ctx.get(REG_ASK)
        if ask is not None and not valid_piece(ask):
            ctx.set(REG_ASK, None)
            ask = None

        if ask is None:
            self._try_acquire(ctx, levels, budgets, alarms)
            return alarms

        if self.mode == MODE_SYNC_WINDOW:
            self._sync_compare_all(ctx, ask, alarms)
            wait = _nat(ctx.get(REG_ASK_WAIT)) or 0
            if wait <= 1:
                self._advance(ctx, levels)
            else:
                ctx.set(REG_ASK_WAIT, wait - 1)
        else:
            self._async_serve_one(ctx, ask, budgets, alarms)
        return alarms

    # ------------------------------------------------------------------
    def _target_level(self, ctx, levels: List[int]) -> int:
        idx = (_nat(ctx.get(REG_ASK_IDX)) or 0) % len(levels)
        return levels[idx]

    def _advance(self, ctx, levels: List[int]) -> None:
        idx = (_nat(ctx.get(REG_ASK_IDX)) or 0) % len(levels)
        if idx + 1 >= len(levels):
            # ghost instrumentation: completed full Ask rotations
            ctx.set("_rot", (ctx.get("_rot") or 0) + 1)
        ctx.set(REG_ASK_IDX, (idx + 1) % len(levels))
        ctx.set(REG_ASK, None)
        ctx.set(REG_ASK_WAIT, 0)
        ctx.set(REG_WANT, None)
        ctx.set(REG_ASK_NBR, 0)
        ctx.set(REG_SVC_WD, 0)
        ctx.set(REG_ASK_WD, 0)

    def _try_acquire(self, ctx, levels: List[int], budgets: Budgets,
                     alarms: List[str]) -> None:
        """Sample the node's own trains for the target level's piece."""
        target = self._target_level(ctx, levels)
        for train in (self.top, self.bottom):
            show = train.own_show(ctx)
            if show is not None and show.flag and show.piece[1] == target:
                ctx.set(REG_ASK, show.piece)
                ctx.set(REG_ASK_WAIT, budgets.ask_window)
                ctx.set(REG_ASK_NBR, 0)
                ctx.set(REG_SVC_WD, 0)
                alarms.extend(self._on_acquire_checks(ctx, show.piece))
                return

    # ------------------------------------------------------------------
    # checks at acquisition time (no neighbour info needed)
    # ------------------------------------------------------------------
    def _candidate_neighbor(self, ctx, level: int) -> Optional[int]:
        """The other endpoint of the candidate edge of F_level(v), when v
        is the endpoint; None otherwise."""
        endp = ctx.get(REG_ENDP)
        if not isinstance(endp, str) or level >= len(endp):
            return None
        if endp[level] == ENDP_UP:
            pid = ctx.get(REG_PARENT_ID)
            return pid if pid in ctx.neighbors else None
        if endp[level] == ENDP_DOWN:
            for c in ctx.neighbors:
                if ctx.read(c, REG_PARENT_ID) != ctx.node:
                    continue
                cp = ctx.read(c, REG_PARENTS)
                if isinstance(cp, str) and level < len(cp) and cp[level] == "1":
                    return c
        return None

    def _on_acquire_checks(self, ctx, piece) -> List[str]:
        alarms: List[str] = []
        z, level, weight = piece
        roots = ctx.get(REG_ROOTS)
        if isinstance(roots, str) and level < len(roots):
            if roots[level] == "1" and z != ctx.node:
                alarms.append("ask: fragment root id differs from the piece")
        u0 = self._candidate_neighbor(ctx, level)
        if u0 is not None:
            # C1 (weight half): the claimed minimum must be the candidate's
            # actual weight.
            if weight is None or weight != ctx.weight(u0):
                alarms.append("C1: claimed minimum differs from the "
                              "candidate edge weight")
        return alarms

    # ------------------------------------------------------------------
    # the event E(v, u, j): compare my piece against what u shows
    # ------------------------------------------------------------------
    def _neighbor_piece(self, ctx, u, level) -> Optional[TrainObservation]:
        for train in (self.top, self.bottom):
            obs = train.observe(ctx, u)
            if obs is not None and obs.flag and obs.piece[1] == level:
                return obs
        return None

    def _compare_with(self, ctx, ask, u, obs: Optional[TrainObservation],
                      u_has_level: bool, alarms: List[str]) -> bool:
        """Run C1/C2/agreement for one neighbour; True when the event
        happened (info was available)."""
        z, level, weight = ask
        u0 = self._candidate_neighbor(ctx, level)
        if not u_has_level:
            # u is in no level-j fragment: the edge is outgoing.
            self._outgoing_checks(ctx, ask, u, u0, alarms)
            return True
        if obs is None:
            return False
        if obs.piece[0] == z:
            # same claimed fragment: members must agree on the piece
            if tuple(obs.piece) != tuple(ask):
                alarms.append("AGREE: same fragment, different piece "
                              "(Claim 8.3)")
            if u0 == u:
                alarms.append("C1: candidate edge is internal to its "
                              "fragment")
        else:
            self._outgoing_checks(ctx, ask, u, u0, alarms)
        return True

    def _outgoing_checks(self, ctx, ask, u, u0, alarms: List[str]) -> None:
        _z, _level, weight = ask
        edge_w = ctx.weight(u)
        if weight is None:
            alarms.append("C2: the whole-tree fragment has an outgoing edge")
            return
        try:
            violated = edge_w < weight
        except TypeError:
            alarms.append("C2: incomparable weights in piece")
            return
        if violated:
            alarms.append("C2: outgoing edge lighter than the claimed "
                          "minimum")

    # ------------------------------------------------------------------
    # synchronous window sampling (Section 7.2.1)
    # ------------------------------------------------------------------
    def _sync_compare_all(self, ctx, ask, alarms: List[str]) -> None:
        level = ask[1]
        for u in ctx.neighbors:
            jmask_u = _nat(ctx.read(u, REG_JMASK))
            u_has = jmask_u is not None and bool(jmask_u & (1 << level))
            obs = self._neighbor_piece(ctx, u, level) if u_has else None
            self._compare_with(ctx, ask, u, obs, u_has, alarms)

    # ------------------------------------------------------------------
    # asynchronous Want mode (Section 7.2.2)
    # ------------------------------------------------------------------
    def _async_serve_one(self, ctx, ask, budgets: Budgets,
                         alarms: List[str]) -> None:
        level = ask[1]
        nbrs = ctx.neighbors
        levels = self._levels(ctx)
        idx = _nat(ctx.get(REG_ASK_NBR)) or 0
        if idx >= len(nbrs):
            self._advance(ctx, levels)
            return
        u = nbrs[idx]
        jmask_u = _nat(ctx.read(u, REG_JMASK))
        u_has = jmask_u is not None and bool(jmask_u & (1 << level))
        if not u_has:
            self._compare_with(ctx, ask, u, None, False, alarms)
            self._next_neighbor(ctx, idx)
            return
        # In the "simple" variant the client files its request just the
        # same, but the server honours one client at a time (round robin),
        # which is what makes that variant Delta^2.
        obs = self._neighbor_piece(ctx, u, level)
        if obs is not None:
            self._compare_with(ctx, ask, u, obs, True, alarms)
            ctx.set(REG_WANT, None)
            self._next_neighbor(ctx, idx)
            return
        ctx.set(REG_WANT, (u, level))
        svc = (_nat(ctx.get(REG_SVC_WD)) or 0) + 1
        ctx.set(REG_SVC_WD, svc)
        scale = max(1, ctx.degree) if self.mode == MODE_WANT_SIMPLE else 1
        if svc > budgets.service * scale:
            alarms.append("WANT: server never displayed the requested piece")
            ctx.set(REG_WANT, None)
            self._next_neighbor(ctx, idx)

    def _next_neighbor(self, ctx, idx: int) -> None:
        ctx.set(REG_ASK_NBR, idx + 1)
        ctx.set(REG_SVC_WD, 0)
